"""Tests for the design-space exploration utilities."""

from itertools import islice

import numpy as np
import pytest

from repro.harness import dse as dse_module
from repro.harness.dse import (
    DesignPoint,
    ParetoFront,
    iter_design_space,
    pareto_frontier,
    sensitivity,
    sweep_design_space,
)
from repro.hw import model_workload
from repro.models import get_config


@pytest.fixture(scope="module")
def small_workload():
    return model_workload(get_config("deit-tiny"), sparsity=0.9)


class TestSweep:
    def test_grid_cross_product(self, small_workload):
        points = sweep_design_space(
            small_workload,
            {"mac_lines": [32, 64], "ae_compression": [None, 0.5]},
        )
        assert len(points) == 4
        params = {p.parameters for p in points}
        assert len(params) == 4

    def test_more_macs_never_slower(self, small_workload):
        points = sweep_design_space(small_workload,
                                    {"mac_lines": [16, 64, 256]})
        seconds = [p.seconds for p in points]
        assert seconds == sorted(seconds, reverse=True)

    def test_more_bandwidth_never_slower(self, small_workload):
        points = sweep_design_space(small_workload,
                                    {"bandwidth_gbps": [19.2, 76.8, 307.2]})
        seconds = [p.seconds for p in points]
        assert seconds[0] >= seconds[1] >= seconds[2]

    def test_buffer_size_helps_big_models(self):
        wl = model_workload(get_config("deit-base"), sparsity=0.9)
        points = sweep_design_space(wl, {"act_buffer_kb": [32, 128, 512]})
        seconds = [p.seconds for p in points]
        # Bigger act buffer -> fewer Q re-streams -> never slower.
        assert seconds[0] >= seconds[1] >= seconds[2]

    def test_unknown_parameter(self, small_workload):
        with pytest.raises(KeyError):
            sweep_design_space(small_workload, {"voltage": [0.9]})

    def test_empty_grid(self, small_workload):
        with pytest.raises(ValueError):
            sweep_design_space(small_workload, {})

    def test_area_proxy_tracks_macs(self, small_workload):
        points = sweep_design_space(small_workload, {"mac_lines": [32, 64]})
        assert points[0].area_proxy == 32 * 8
        assert points[1].area_proxy == 64 * 8


class TestParallelSweep:
    GRID = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}

    def test_parallel_equals_serial(self, small_workload):
        serial = sweep_design_space(small_workload, self.GRID)
        parallel = sweep_design_space(small_workload, self.GRID, n_jobs=3)
        assert parallel == serial  # same points, same (grid) order

    def test_n_jobs_clamped_to_grid(self, small_workload):
        points = sweep_design_space(small_workload, {"mac_lines": [32]},
                                    n_jobs=8)
        assert len(points) == 1

    def test_n_jobs_none_uses_cpus(self, small_workload):
        points = sweep_design_space(small_workload, self.GRID, n_jobs=None)
        assert points == sweep_design_space(small_workload, self.GRID)

    def test_sensitivity_parallel(self, small_workload):
        serial = sensitivity(small_workload, "mac_lines", [32, 64])
        parallel = sensitivity(small_workload, "mac_lines", [32, 64], n_jobs=2)
        assert parallel == serial


class TestPareto:
    def test_dominated_points_removed(self):
        a = DesignPoint((("x", 1),), seconds=1.0, energy_joules=1.0,
                        area_proxy=1)
        b = DesignPoint((("x", 2),), seconds=2.0, energy_joules=2.0,
                        area_proxy=1)  # dominated by a
        c = DesignPoint((("x", 3),), seconds=0.5, energy_joules=3.0,
                        area_proxy=1)  # trade-off
        frontier = pareto_frontier([a, b, c])
        assert a in frontier and c in frontier and b not in frontier

    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_all_identical_kept(self):
        p = DesignPoint((), 1.0, 1.0, 1)
        assert len(pareto_frontier([p, p, p])) == 3

    @staticmethod
    def _brute_force(points, objectives):
        values = np.array(
            [[getattr(p, o) for o in objectives] for p in points]
        )
        keep = []
        for i, row in enumerate(values):
            dominated = any(
                np.all(q <= row) and np.any(q < row) for q in values
            )
            if not dominated:
                keep.append(points[i])
        return keep

    @pytest.mark.parametrize("n_objectives", [2, 3])
    def test_matches_brute_force_with_ties(self, n_objectives):
        """The sort-based frontier equals the O(n²) dominance scan,
        including duplicated and tied coordinates."""
        rng = np.random.default_rng(42)
        objectives = ("seconds", "energy_joules", "area_proxy")[:n_objectives]
        for _ in range(50):
            n = int(rng.integers(1, 30))
            vals = rng.integers(0, 5, size=(n, 3)).astype(float)
            points = [
                DesignPoint((("i", i),), seconds=v[0], energy_joules=v[1],
                            area_proxy=v[2])
                for i, v in enumerate(vals)
            ]
            assert (pareto_frontier(points, objectives=objectives)
                    == self._brute_force(points, objectives))

    def test_preserves_input_order(self):
        points = [
            DesignPoint((("i", 0),), 3.0, 1.0, 1),
            DesignPoint((("i", 1),), 1.0, 3.0, 1),
            DesignPoint((("i", 2),), 2.0, 2.0, 1),
        ]
        assert pareto_frontier(points) == points

    def test_frontier_on_real_sweep(self, small_workload):
        points = sweep_design_space(
            small_workload,
            {"mac_lines": [16, 64, 256], "ae_compression": [None, 0.5]},
        )
        frontier = pareto_frontier(points)
        assert 1 <= len(frontier) <= len(points)
        # The fastest point always survives.
        fastest = min(points, key=lambda p: p.seconds)
        assert fastest in frontier


def _params_key(point):
    return repr(point.parameters)


class TestStreaming:
    GRID = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}

    def test_serial_stream_equals_eager_sweep(self, small_workload):
        eager = sweep_design_space(small_workload, self.GRID)
        streamed = list(iter_design_space(small_workload, self.GRID))
        assert streamed == eager  # same points, same (grid) order

    def test_parallel_stream_same_multiset(self, small_workload):
        eager = sweep_design_space(small_workload, self.GRID)
        streamed = list(iter_design_space(small_workload, self.GRID,
                                          n_jobs=3))
        assert sorted(streamed, key=_params_key) == \
            sorted(eager, key=_params_key)

    def test_lazy_never_materialises_grid(self, small_workload, monkeypatch):
        """Taking 5 points from an 864-point grid evaluates exactly 5
        with a per-point evaluator, and at most one batch chunk with the
        batch-capable default — never the whole grid."""
        from repro.sim import AnalyticalEvaluator

        calls = []
        real = dse_module._evaluate_design_point

        def counting(*args):
            calls.append(1)
            return real(*args)

        monkeypatch.setattr(dse_module, "_evaluate_design_point", counting)
        grid = {"mac_lines": list(range(8, 520, 6)),
                "bandwidth_gbps": [19.2, 76.8],
                "ae_compression": [None, 0.25, 0.3, 0.5, 0.75]}
        taken = list(islice(iter_design_space(
            small_workload, grid, evaluator=AnalyticalEvaluator()), 5))
        assert len(taken) == 5
        assert len(calls) == 5

        batched = []
        real_chunk = dse_module._evaluate_chunk

        def counting_chunk(workload, base_config, names, chunk, evaluator):
            batched.append(len(chunk))
            return real_chunk(workload, base_config, names, chunk, evaluator)

        monkeypatch.setattr(dse_module, "_evaluate_chunk", counting_chunk)
        taken = list(islice(iter_design_space(small_workload, grid), 5))
        assert len(taken) == 5
        assert sum(batched) <= dse_module._BATCH_CHUNK  # one chunk, not 864

    def test_incremental_frontier_matches_eager(self, small_workload):
        eager = sweep_design_space(small_workload, self.GRID)
        front = ParetoFront()
        yielded = list(iter_design_space(small_workload, self.GRID,
                                         frontier=front))
        assert front.points == pareto_frontier(eager)
        assert front.offered == len(eager)
        # Every yielded point was non-dominated when it arrived, and the
        # final frontier is a subset of what was yielded.
        assert all(p in eager for p in yielded)
        assert all(p in yielded for p in front.points)

    def test_parallel_frontier_matches_eager(self, small_workload):
        eager = sweep_design_space(small_workload, self.GRID)
        front = ParetoFront()
        list(iter_design_space(small_workload, self.GRID, n_jobs=2,
                               frontier=front))
        assert (sorted(front.points, key=_params_key)
                == sorted(pareto_frontier(eager), key=_params_key))

    def test_empty_grid_raises(self, small_workload):
        with pytest.raises(ValueError):
            next(iter_design_space(small_workload, {}))

    def test_one_shot_iterable_grid_values(self, small_workload):
        """Grid values that can only be consumed once still sweep fully."""
        eager = sweep_design_space(small_workload, {"mac_lines": [16, 32]})
        from_iter = sweep_design_space(small_workload,
                                       {"mac_lines": iter([16, 32])})
        assert from_iter == eager


class TestParetoFront:
    def _point(self, i, seconds, energy):
        return DesignPoint((("i", i),), seconds=seconds,
                           energy_joules=energy, area_proxy=1)

    def test_dominated_offer_rejected(self):
        front = ParetoFront()
        assert front.offer(self._point(0, 1.0, 1.0))
        assert not front.offer(self._point(1, 2.0, 2.0))
        assert len(front) == 1

    def test_new_point_evicts_dominated(self):
        front = ParetoFront()
        front.offer(self._point(0, 2.0, 2.0))
        front.offer(self._point(1, 3.0, 1.0))
        assert front.offer(self._point(2, 1.0, 1.0))  # dominates both
        assert [p.parameter("i") for p in front] == [2]

    def test_duplicates_all_kept(self):
        front = ParetoFront()
        p = self._point(0, 1.0, 1.0)
        assert front.offer(p) and front.offer(p) and front.offer(p)
        assert len(front) == 3  # equal points never dominate each other

    def test_matches_eager_on_random_streams(self):
        rng = np.random.default_rng(7)
        for _ in range(30):
            n = int(rng.integers(1, 40))
            vals = rng.integers(0, 5, size=(n, 2)).astype(float)
            points = [self._point(i, v[0], v[1]) for i, v in enumerate(vals)]
            front = ParetoFront().update(points)
            assert front.points == pareto_frontier(points)

    def test_three_objectives(self):
        points = [
            DesignPoint((("i", 0),), 1.0, 2.0, 3.0),
            DesignPoint((("i", 1),), 2.0, 1.0, 3.0),
            DesignPoint((("i", 2),), 2.0, 2.0, 4.0),  # dominated by 0 and 1
        ]
        objectives = ("seconds", "energy_joules", "area_proxy")
        front = ParetoFront(objectives=objectives).update(points)
        assert front.points == pareto_frontier(points, objectives=objectives)


class TestSensitivity:
    def test_rows_carry_parameter(self, small_workload):
        rows = sensitivity(small_workload, "mac_lines", [32, 64])
        assert [r["mac_lines"] for r in rows] == [32, 64]
        assert all(r["seconds"] > 0 and r["edp"] > 0 for r in rows)

    def test_ae_compression_sweep(self):
        wl = model_workload(get_config("deit-base"), sparsity=0.9)
        rows = sensitivity(wl, "ae_compression", [None, 0.75, 0.5, 0.25])
        # Stronger compression never increases latency for this
        # memory-pressured model.
        seconds = [r["seconds"] for r in rows]
        assert seconds[0] >= seconds[-1]


class TestGridIndexing:
    """The deterministic grid index is the dist partition key."""

    GRID = {"mac_lines": [16, 32, 64], "bandwidth_gbps": [19.2, 76.8],
            "ae_compression": [None, 0.25, 0.5]}

    def test_size_and_decode_match_product(self):
        from itertools import product

        from repro.harness.dse import grid_point, grid_size

        names = sorted(self.GRID)
        combos = list(product(*(self.GRID[n] for n in names)))
        assert grid_size(self.GRID) == len(combos) == 18
        for index, combo in enumerate(combos):
            assert grid_point(self.GRID, index) == combo

    def test_out_of_range_raises(self):
        from repro.harness.dse import grid_point

        with pytest.raises(IndexError):
            grid_point(self.GRID, 18)
        with pytest.raises(IndexError):
            grid_point(self.GRID, -1)

    def test_empty_values_raise(self):
        from repro.harness.dse import grid_size

        with pytest.raises(ValueError):
            grid_size({"mac_lines": []})

    def test_indexed_iteration_matches_sweep(self, small_workload):
        from repro.harness.dse import iter_indexed_design_points

        grid = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}
        serial = sweep_design_space(small_workload, grid)
        subset = dict(iter_indexed_design_points(small_workload, grid,
                                                 [5, 1, 3]))
        assert subset == {1: serial[1], 3: serial[3], 5: serial[5]}
        everything = dict(iter_indexed_design_points(small_workload, grid))
        assert [everything[i] for i in range(len(serial))] == serial

    def test_indexed_iteration_parallel_same_pairs(self, small_workload):
        from repro.harness.dse import iter_indexed_design_points

        grid = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}
        serial = dict(iter_indexed_design_points(small_workload, grid))
        parallel = dict(iter_indexed_design_points(small_workload, grid,
                                                   n_jobs=2))
        assert parallel == serial

    def test_hybrid_rejected(self, small_workload):
        from repro.harness.dse import iter_indexed_design_points

        with pytest.raises(ValueError, match="hybrid"):
            next(iter_indexed_design_points(small_workload,
                                            {"mac_lines": [16]},
                                            evaluator="hybrid"))

    def test_keep_failures_yields_them(self, small_workload):
        from repro.harness.dse import PointFailure, \
            iter_indexed_design_points

        def explode(workload, config, accel_kwargs):
            raise RuntimeError("nope")

        explode.name = "explode"
        pairs = list(iter_indexed_design_points(
            small_workload, {"mac_lines": [16, 32]}, evaluator=explode,
            keep_failures=True,
        ))
        assert [index for index, _ in pairs] == [0, 1]
        assert all(isinstance(res, PointFailure) for _, res in pairs)
        assert all("nope" in res.error for _, res in pairs)


class TestAdaptiveSweep:
    """Cheap sweeps stay serial; forced pools still match bit for bit."""

    GRID = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}

    def test_cheap_grid_never_spawns_pool(self, small_workload, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool spawned for a trivially cheap sweep")

        monkeypatch.setattr(dse_module, "ProcessPoolExecutor", forbidden)
        monkeypatch.setattr(dse_module, "ThreadPoolExecutor", forbidden)
        serial = sweep_design_space(small_workload, self.GRID)
        adaptive = sweep_design_space(small_workload, self.GRID, n_jobs=3)
        assert adaptive == serial

    def test_forced_pool_matches_serial(self, small_workload):
        serial = sweep_design_space(small_workload, self.GRID)
        forced = sweep_design_space(small_workload, self.GRID, n_jobs=3,
                                    min_parallel_s=0.0)
        assert forced == serial

    def test_plan_parallel_math(self):
        from repro.harness.dse import _plan_parallel

        # Remaining work cheaper than the pool: serial.
        assert _plan_parallel(0.001, 46, 4, 0.25) == (1, 46)
        # Expensive points: one point per chunk for balance.
        assert _plan_parallel(0.2, 46, 4, 0.25) == (4, 1)
        # Cheap points, big grid: chunks target ~50 ms of work.
        n_jobs, chunk = _plan_parallel(0.002, 1000, 4, 0.25)
        assert n_jobs == 4 and chunk == 25
        # Never exceeds the one-chunk-per-worker split.
        n_jobs, chunk = _plan_parallel(0.001, 400, 4, 0.25)
        assert chunk <= -(-400 // 4)
        # Nothing left: serial, floor chunk of 1.
        assert _plan_parallel(0.5, 0, 4, 0.25) == (1, 1)

    def test_pilot_failures_still_warn_and_drop(self, small_workload):
        calls = []

        def flaky(workload, config, accel_kwargs):
            calls.append(config.num_mac_lines)
            if config.num_mac_lines == 16:
                raise RuntimeError("pilot boom")
            from repro.sim import AnalyticalEvaluator

            return AnalyticalEvaluator()(workload, config, accel_kwargs)

        flaky.name = "flaky"
        with pytest.warns(RuntimeWarning, match="pilot boom"):
            points = sweep_design_space(small_workload, self.GRID,
                                        n_jobs=2, evaluator=flaky)
        # Both poisoned points (one of them a pilot) dropped, rest kept.
        assert len(points) == 4
        assert all(p.parameter("mac_lines") != 16 for p in points)

    def test_cheap_hybrid_grid_never_spawns_pool(self, small_workload,
                                                 monkeypatch):
        """The adaptive pilot covers the hybrid coarse phase too."""

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool spawned for a cheap hybrid sweep")

        monkeypatch.setattr(dse_module, "ProcessPoolExecutor", forbidden)
        monkeypatch.setattr(dse_module, "ThreadPoolExecutor", forbidden)
        serial = sweep_design_space(small_workload, self.GRID,
                                    evaluator="hybrid")
        adaptive = sweep_design_space(small_workload, self.GRID, n_jobs=3,
                                      evaluator="hybrid")
        assert adaptive == serial

    def test_forced_hybrid_pool_matches_serial(self, small_workload):
        serial = sweep_design_space(small_workload, self.GRID,
                                    evaluator="hybrid")
        forced = sweep_design_space(small_workload, self.GRID, n_jobs=3,
                                    evaluator="hybrid", min_parallel_s=0.0)
        assert forced == serial
