"""Tests for the performance layer: workload cache and timing helpers."""

import pytest

from repro.hw import model_workload
from repro.hw.accelerator import ViTCoDAccelerator
from repro.models import get_config
from repro.perf import (
    KeyedCache,
    Timer,
    benchit,
    cached_model_workload,
    cached_synthetic_attention_workload,
)


class TestKeyedCache:
    def test_builds_once(self):
        cache = KeyedCache()
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert cache.get_or_build("k", build) == "value"
        assert cache.get_or_build("k", build) == "value"
        assert len(calls) == 1

    def test_stats(self):
        cache = KeyedCache()
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        s = cache.stats()
        assert (s.hits, s.misses, s.size) == (1, 2, 2)
        assert s.hit_rate == pytest.approx(1 / 3)

    def test_clear(self):
        cache = KeyedCache()
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 0

    def test_lru_eviction(self):
        cache = KeyedCache(maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)  # refresh a
        cache.get_or_build("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            KeyedCache(maxsize=0)


class TestCachedWorkloads:
    def test_same_object_on_hit(self):
        cache = KeyedCache()
        wl1 = cached_synthetic_attention_workload(32, 2, 16, sparsity=0.8,
                                                  seed=3, cache=cache)
        wl2 = cached_synthetic_attention_workload(32, 2, 16, sparsity=0.8,
                                                  seed=3, cache=cache)
        assert wl1 is wl2
        assert cache.stats().hits == 1

    def test_distinct_parameters_distinct_entries(self):
        cache = KeyedCache()
        a = cached_synthetic_attention_workload(32, 2, 16, sparsity=0.8,
                                                seed=3, cache=cache)
        b = cached_synthetic_attention_workload(32, 2, 16, sparsity=0.9,
                                                seed=3, cache=cache)
        assert a is not b
        assert len(cache) == 2

    def test_model_workload_by_name_and_config_share_entry(self):
        cache = KeyedCache()
        by_name = cached_model_workload("deit-tiny", sparsity=0.9, cache=cache)
        by_cfg = cached_model_workload(get_config("deit-tiny"), sparsity=0.9,
                                       cache=cache)
        assert by_name is by_cfg

    def test_cached_equals_fresh_build(self):
        """A cache hit must be indistinguishable from a fresh construction."""
        cache = KeyedCache()
        cached = cached_model_workload("deit-tiny", sparsity=0.9, seed=0,
                                       cache=cache)
        fresh = model_workload(get_config("deit-tiny"), sparsity=0.9, seed=0)
        assert cached.name == fresh.name
        assert cached.attention_macs == fresh.attention_macs
        assert cached.linear_macs == fresh.linear_macs
        assert cached.mean_sparsity == pytest.approx(fresh.mean_sparsity)
        acc = ViTCoDAccelerator()
        assert (acc.simulate_attention(cached).seconds
                == acc.simulate_attention(fresh).seconds)


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.seconds >= 0.0

    def test_benchit_counts_calls(self):
        calls = []
        result = benchit(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(result.times) == 3
        assert result.best <= result.mean

    def test_benchit_validates(self):
        with pytest.raises(ValueError):
            benchit(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            benchit(lambda: None, warmup=-1)

    def test_benchit_to_dict(self):
        d = benchit(lambda: None, name="noop", repeats=2, warmup=0).to_dict()
        assert d["name"] == "noop"
        assert d["repeats"] == 2
        assert d["best_s"] <= d["mean_s"] or d["best_s"] == pytest.approx(d["mean_s"])


class TestInstanceMemo:
    class _Frozen:
        """Stand-in for a frozen dataclass (plain object with __dict__)."""

    def test_builds_once_per_key(self):
        from repro.perf import instance_memo

        obj = self._Frozen()
        calls = []

        def build():
            calls.append(1)
            return len(calls)

        assert instance_memo(obj, "_t", ("a", 1), build) == 1
        assert instance_memo(obj, "_t", ("a", 1), build) == 1
        assert instance_memo(obj, "_t", ("a", 2), build) == 2
        assert len(calls) == 2
        assert set(obj.__dict__["_t"]) == {("a", 1), ("a", 2)}


class TestCycleGeometryMemo:
    """Per-(workload, config) geometry memoized on the workload instance."""

    @pytest.fixture()
    def workload(self):
        # A private copy: memo assertions must not see other tests' entries.
        return model_workload(get_config("deit-tiny"), sparsity=0.9)

    def _simulate(self, workload, **config_fields):
        from dataclasses import replace

        from repro.hw.cycle_sim import CycleAccurateSimulator
        from repro.hw.params import VITCOD_DEFAULT

        config = replace(VITCOD_DEFAULT, **config_fields)
        return CycleAccurateSimulator(config=config).simulate_attention(
            workload
        )

    def test_keys_track_only_relevant_config_fields(self, workload):
        self._simulate(workload)
        layer = workload.attention_layers[0]
        table = layer.__dict__["_cycle_geometry"]
        baseline = len(table)
        self._simulate(workload)  # same config: no new entries
        assert len(table) == baseline
        # A bandwidth change invalidates service times but not the
        # MAC-line allocation; a mac_lines change does the reverse.
        self._simulate(workload, dram_bandwidth_bytes_per_s=30e9)
        assert len(table) == baseline + 1
        self._simulate(workload, num_mac_lines=32)
        assert len(table) == baseline + 2

    def test_memoized_results_bit_exact_vs_fresh_workload(self, workload):
        warm = self._simulate(workload)  # populates the memo
        warm2 = self._simulate(workload)  # served from the memo
        cold = self._simulate(
            model_workload(get_config("deit-tiny"), sparsity=0.9)
        )
        assert warm == warm2 == cold

    def test_pickle_strips_geometry_tables(self, workload):
        import pickle

        self._simulate(workload)
        clone = pickle.loads(pickle.dumps(workload))
        assert all("_cycle_geometry" not in layer.__dict__
                   for layer in clone.attention_layers)

    def test_custom_dram_model_bypasses_service_memo(self, workload):
        from repro.hw.cycle_sim import CycleAccurateSimulator
        from repro.hw.dram import DramModel

        class TweakedDram(DramModel):
            def service_cycles(self, request):
                return 2.0 * super().service_cycles(request)

        sim = CycleAccurateSimulator(dram=TweakedDram())
        sim.simulate_attention(workload)
        layer = workload.attention_layers[0]
        table = layer.__dict__.get("_cycle_geometry", {})
        # Allocation (DRAM-independent) may be memoized; service times of
        # an unrecognised DRAM model must not be.
        assert not any(key[0] == "services" for key in table)
