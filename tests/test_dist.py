"""Tests for the sharded, resumable DSE pipeline (:mod:`repro.dist`)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist import (
    IncompleteStoreError,
    ResultStore,
    ShardSpec,
    StoreCorruptError,
    StoreMismatchError,
    build_manifest,
    config_from_dict,
    config_to_dict,
    decode_record,
    encode_record,
    merge_store,
    model_workload_spec,
    run_shard,
    shard_indices,
    store_status,
    workload_from_spec,
)
from repro.dist.store import load_jsonl
from repro.harness.dse import (
    DesignPoint,
    PointFailure,
    pareto_frontier,
    sweep_design_space,
)
from repro.hw.params import VITCOD_DEFAULT, HardwareConfig
from repro.perf import cached_model_workload
from repro.sim.evaluator import AnalyticalEvaluator

GRID = {"mac_lines": (16, 32, 64), "ae_compression": (None, 0.5)}
SPEC = model_workload_spec("deit-tiny", sparsity=0.9)


@pytest.fixture(scope="module")
def workload():
    return cached_model_workload("deit-tiny", sparsity=0.9)


class TestShardSpec:
    def test_parse(self):
        assert ShardSpec.parse("2/3") == ShardSpec(2, 3)
        assert str(ShardSpec(2, 3)) == "2/3"
        assert ShardSpec.parse(ShardSpec(1, 1)) == ShardSpec(1, 1)

    @pytest.mark.parametrize("bad", ["", "3", "0/3", "4/3", "a/3", "1/0",
                                     "-1/3", "1/-2"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            ShardSpec.parse(bad)

    @pytest.mark.parametrize("size", [0, 1, 2, 5, 6, 7, 48, 97])
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 7])
    def test_partition_tiles_grid_exactly_once(self, size, count):
        """The K/N shards cover range(size) completely and disjointly."""
        chunks = [list(ShardSpec(k, count).indices(size))
                  for k in range(1, count + 1)]
        merged = sorted(i for chunk in chunks for i in chunk)
        assert merged == list(range(size))

    def test_shard_indices_convenience(self):
        assert list(shard_indices(7, "2/3")) == [1, 4]


#: Arbitrary weight vectors: 1-6 shards, weights 0-5, at least one positive.
weight_vectors = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=6
).filter(lambda weights: sum(weights) > 0)


class TestWeightedShardSpec:
    def test_parse_full_vector(self):
        spec = ShardSpec.parse("2/3@4,1,1")
        assert spec == ShardSpec(2, 3, weights=(4, 1, 1))
        assert spec.weight == 1
        assert str(spec) == "2/3@4,1,1"
        assert ShardSpec.parse(str(spec)) == spec

    def test_parse_single_weight_shorthand(self):
        """``K/N@W`` means "this shard weighs W, the others 1"."""
        assert ShardSpec.parse("2/3@4") == ShardSpec(2, 3, weights=(1, 4, 1))
        assert ShardSpec.parse("2/3@4").weight == 4

    def test_all_equal_weights_normalise_to_uniform(self):
        assert ShardSpec(2, 3, weights=(2, 2, 2)) == ShardSpec(2, 3)
        assert str(ShardSpec.parse("2/3@1,1,1")) == "2/3"
        assert ShardSpec.parse("1/1@5") == ShardSpec(1, 1)

    @pytest.mark.parametrize("bad", [
        "1/2@0,0",       # no positive weight
        "1/2@1,2,3",     # wrong vector length
        "1/2@-1,2",      # negative weight
        "1/2@a,b",       # not integers
        "1/2@1.5,2",     # not integers
        "1/2@",          # empty weight spec
    ])
    def test_parse_rejects_bad_weights(self, bad):
        with pytest.raises(ValueError):
            ShardSpec.parse(bad)

    def test_zero_weight_shard_owns_nothing(self):
        assert ShardSpec(1, 2, weights=(0, 1)).indices(6) == []
        assert list(ShardSpec(2, 2, weights=(0, 1)).indices(6)) == \
            list(range(6))

    def test_weighted_ownership_is_proportional(self):
        """When sum(weights) divides size, shares are exact."""
        weights = (3, 1)
        size = 12
        counts = [len(ShardSpec(k, 2, weights=weights).indices(size))
                  for k in (1, 2)]
        assert counts == [9, 3]

    @given(size=st.integers(min_value=0, max_value=60),
           weights=weight_vectors)
    @settings(max_examples=60, deadline=None)
    def test_weighted_partition_tiles_grid_exactly_once(self, size, weights):
        """Weighted shards cover range(size) completely and disjointly."""
        count = len(weights)
        chunks = [list(ShardSpec(k, count, weights=tuple(weights)).indices(size))
                  for k in range(1, count + 1)]
        merged = sorted(i for chunk in chunks for i in chunk)
        assert merged == list(range(size))

    @given(size=st.integers(min_value=0, max_value=40),
           weights=weight_vectors, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_owed_indices_never_overlap_own(self, size, weights, data):
        """Steal candidates exclude the shard's own slice by construction."""
        from repro.dist.runner import _owed_indices

        count = len(weights)
        index = data.draw(st.integers(min_value=1, max_value=count))
        recorded = data.draw(st.sets(st.integers(min_value=0, max_value=60)))
        shard = ShardSpec(index, count, weights=tuple(weights))
        owed = _owed_indices(size, shard, recorded)
        own = set(shard.indices(size))
        assert not own.intersection(owed)
        assert not recorded.intersection(owed)
        assert set(owed) | own | (recorded & set(range(size))) == \
            set(range(size))


class TestStoreFiles:
    def _records(self, tmp_path, lines):
        path = tmp_path / "f.jsonl"
        path.write_bytes(b"".join(lines))
        return path

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = self._records(tmp_path, [b'{"i":0,"x":1}\n', b'{"i":1,"x'])
        assert load_jsonl(path) == [{"i": 0, "x": 1}]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = self._records(
            tmp_path, [b'{"i":0}\n', b'{"i":1,"x\n', b'{"i":2}\n']
        )
        with pytest.raises(StoreCorruptError):
            load_jsonl(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_jsonl(tmp_path / "absent.jsonl") == []

    def test_record_round_trip_bit_exact(self):
        point = DesignPoint(
            parameters=(("ae_compression", None), ("mac_lines", 32)),
            seconds=1.2345678901234567e-4,
            energy_joules=9.87654321e-2,
            area_proxy=256,
        )
        encoded = json.loads(json.dumps(encode_record(7, point)))
        index, decoded = decode_record(encoded)
        assert index == 7
        assert decoded == point  # dataclass eq: every field bit-equal

    def test_failure_record_round_trip(self):
        failure = PointFailure(parameters=(("mac_lines", 16),),
                               error="RuntimeError: boom")
        index, decoded = decode_record(encode_record(3, failure))
        assert index == 3 and decoded == failure

    def test_config_round_trip(self):
        config = HardwareConfig(num_mac_lines=32, frequency_hz=1e9)
        assert config_from_dict(config_to_dict(config)) == config

    def test_manifest_mismatch_detected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        manifest = build_manifest(GRID, 2, AnalyticalEvaluator(),
                                  VITCOD_DEFAULT, SPEC)
        store.ensure_manifest(manifest)
        other = build_manifest({"mac_lines": (16,)}, 2,
                               AnalyticalEvaluator(), VITCOD_DEFAULT, SPEC)
        with pytest.raises(StoreMismatchError):
            store.ensure_manifest(other)
        # The identical manifest is accepted (another host joining in).
        assert store.ensure_manifest(manifest)["num_shards"] == 2


class _RecordingEvaluator:
    """Analytical scoring that counts calls and can poison one value.

    Serial in-process use only (call lists do not cross pools).  One class
    for counting and failing so every run against one store carries the
    same custom-evaluator spec in its manifest.
    """

    name = "recording"

    def __init__(self, poison=None):
        self.inner = AnalyticalEvaluator()
        self.poison = poison
        self.calls = []

    def __call__(self, workload, config, accel_kwargs):
        self.calls.append(config.num_mac_lines)
        if config.num_mac_lines == self.poison:
            raise RuntimeError("poisoned point")
        return self.inner(workload, config, accel_kwargs)


class TestShardMergeBitExact:
    @pytest.mark.parametrize("evaluator", ["analytical", "cycle", "hybrid"])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_merge_equals_single_process_sweep(self, tmp_path, workload,
                                               evaluator, num_shards):
        """K-sharded stores reproduce sweep_design_space bit for bit."""
        serial = sweep_design_space(workload, GRID, evaluator=evaluator)
        store = tmp_path / "store"
        for k in range(1, num_shards + 1):
            result = run_shard(workload, GRID, f"{k}/{num_shards}", store,
                               evaluator=evaluator, workload_spec=SPEC)
            assert result.complete
        merged = merge_store(store)
        assert list(merged.points) == serial
        assert list(merged.frontier) == pareto_frontier(serial)
        assert merged.dropped == 0

    def test_hybrid_merge_is_resumable(self, tmp_path, workload):
        """A second merge of a hybrid store re-scores nothing."""
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/1", store, evaluator="hybrid",
                  workload_spec=SPEC)
        first = merge_store(store)
        fine_file = ResultStore(store).fine_path
        stamp = fine_file.read_bytes()
        again = merge_store(store)
        assert again.points == first.points
        assert fine_file.read_bytes() == stamp  # no new records appended

    def test_merge_without_workload_spec_needs_workload(self, tmp_path,
                                                        workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/1", store, evaluator="hybrid")
        with pytest.raises(ValueError, match="workload"):
            merge_store(store)
        merged = merge_store(store, workload=workload)
        serial = sweep_design_space(workload, GRID, evaluator="hybrid")
        assert list(merged.points) == serial


class TestResume:
    def test_rerun_skips_completed_indices(self, tmp_path, workload):
        store = tmp_path / "store"
        first = _RecordingEvaluator()
        run_shard(workload, GRID, "1/2", store, evaluator=first,
                  workload_spec=SPEC)
        assert len(first.calls) == 3  # shard 1/2 owns indices 0, 2, 4
        second = _RecordingEvaluator()
        result = run_shard(workload, GRID, "1/2", store, evaluator=second,
                           workload_spec=SPEC)
        assert second.calls == []  # nothing re-evaluated
        assert result.evaluated == 0 and result.skipped == 3

    def test_resume_after_kill_truncated_line(self, tmp_path, workload):
        """A writer killed mid-append loses only the point in flight."""
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2", store,
                  evaluator=_RecordingEvaluator(), workload_spec=SPEC)
        path = ResultStore(store).shard_path(ShardSpec(1, 2))
        whole = path.read_bytes()
        lines = whole.strip().split(b"\n")
        # Simulate the kill: drop the last record's tail mid-line.
        path.write_bytes(b"\n".join(lines[:-1]) + b"\n" + lines[-1][:7])
        counting = _RecordingEvaluator()
        result = run_shard(workload, GRID, "1/2", store, evaluator=counting,
                           workload_spec=SPEC)
        assert len(counting.calls) == 1  # only the truncated point
        assert result.evaluated == 1 and result.skipped == 2
        run_shard(workload, GRID, "2/2", store,
                  evaluator=_RecordingEvaluator(), workload_spec=SPEC)
        merged = merge_store(store)
        # The recording wrapper scores exactly like the analytical default.
        assert list(merged.points) == sweep_design_space(workload, GRID)

    def test_failures_are_completion_records(self, tmp_path, workload):
        """A deterministically failing point is not retried on resume."""
        store = tmp_path / "store"
        result = run_shard(workload, GRID, "1/1", store,
                           evaluator=_RecordingEvaluator(poison=32),
                           workload_spec=SPEC)
        assert result.failed == 2  # mac_lines=32 under both ae settings
        counting = _RecordingEvaluator()
        rerun = run_shard(workload, GRID, "1/1", store, evaluator=counting,
                          workload_spec=SPEC)
        assert counting.calls == [] and rerun.failed == 2
        status = store_status(store)
        assert status.complete and status.failed == 2
        with pytest.warns(RuntimeWarning, match="poisoned point"):
            merged = merge_store(store)
        with pytest.warns(RuntimeWarning):
            serial = sweep_design_space(
                workload, GRID, evaluator=_RecordingEvaluator(poison=32)
            )
        assert list(merged.points) == serial
        assert merged.dropped == 2


class TestMergeGuards:
    def test_incomplete_store_raises(self, tmp_path, workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/3", store, workload_spec=SPEC)
        with pytest.raises(IncompleteStoreError, match="4 missing"):
            merge_store(store)

    def test_foreign_partition_file_raises(self, tmp_path, workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2", store, workload_spec=SPEC)
        run_shard(workload, GRID, "2/2", store, workload_spec=SPEC)
        foreign = Path(store) / "shard-0001-of-0004.jsonl"
        foreign.write_text("")
        with pytest.raises(StoreMismatchError, match="partition"):
            merge_store(store)

    def test_unmerged_store_without_manifest(self, tmp_path):
        with pytest.raises(Exception, match="not a result store"):
            merge_store(tmp_path / "nowhere")


class TestStatus:
    def test_partial_progress(self, tmp_path, workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "2/3", store, workload_spec=SPEC)
        status = store_status(store)
        assert status.grid_size == 6 and not status.complete
        per_shard = {str(s.shard): (s.done, s.total) for s in status.shards}
        assert per_shard == {"1/3": (0, 2), "2/3": (2, 2), "3/3": (0, 2)}
        assert status.done == 2 and status.failed == 0
        assert status.fraction_done == pytest.approx(2 / 6)

    def test_records_carry_timestamps(self, tmp_path, workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/1", store, workload_spec=SPEC)
        shard_file = ResultStore(store).shard_path(ShardSpec(1, 1))
        records = load_jsonl(shard_file)
        assert len(records) == 6
        assert all(isinstance(r.get("t"), float) for r in records)
        stamps = [r["t"] for r in records]
        assert stamps == sorted(stamps)  # appended in completion order

    def _seed_store(self, tmp_path, workload, shard, timestamps,
                    num_shards=2):
        """A store whose shard holds records with the given timestamps."""
        from repro.dist.store import JsonlAppender
        from repro.harness.dse import iter_indexed_design_points

        store = ResultStore(tmp_path / "store")
        store.ensure_manifest(build_manifest(
            GRID, num_shards, AnalyticalEvaluator(), VITCOD_DEFAULT, SPEC
        ))
        spec = ShardSpec.parse(shard)
        owned = list(spec.indices(6))
        pairs = list(iter_indexed_design_points(
            workload, GRID, owned[:len(timestamps)]
        ))
        with JsonlAppender(store.shard_path(spec)) as out:
            for (index, point), stamp in zip(pairs, timestamps):
                out.append(encode_record(index, point, timestamp=stamp))
        return store.root

    def test_shard_eta_from_timestamps(self, tmp_path, workload):
        """2 records 10 s apart -> 0.1 points/s -> 1 pending = 10 s."""
        store = self._seed_store(tmp_path, workload, "1/2",
                                 [100.0, 110.0])
        status = store_status(store)
        by_shard = {str(s.shard): s for s in status.shards}
        assert by_shard["1/2"].eta_seconds == pytest.approx(10.0)
        # The other shard has no records at all: rate unknown.
        assert by_shard["2/2"].eta_seconds is None
        # Study-level ETA is unknown while any shard's rate is.
        assert status.eta_seconds is None

    def test_complete_shard_eta_zero(self, tmp_path, workload):
        store = self._seed_store(tmp_path, workload, "1/1",
                                 [10.0, 11.0, 12.0, 13.0, 14.0, 15.0],
                                 num_shards=1)
        status = store_status(store)
        assert status.complete
        assert status.shards[0].eta_seconds == 0.0
        assert status.eta_seconds == 0.0

    def test_single_record_eta_unknown(self, tmp_path, workload):
        store = self._seed_store(tmp_path, workload, "1/2", [42.0])
        status = store_status(store)
        by_shard = {str(s.shard): s for s in status.shards}
        assert by_shard["1/2"].eta_seconds is None

    def test_untimestamped_legacy_records_tolerated(self, tmp_path,
                                                    workload):
        """Stores written before records carried ``t`` still report."""
        from repro.dist.store import JsonlAppender
        from repro.harness.dse import iter_indexed_design_points

        store = ResultStore(tmp_path / "store")
        store.ensure_manifest(build_manifest(
            GRID, 1, AnalyticalEvaluator(), VITCOD_DEFAULT, SPEC
        ))
        pairs = list(iter_indexed_design_points(workload, GRID, [0, 1]))
        with JsonlAppender(store.shard_path(ShardSpec(1, 1))) as out:
            for index, point in pairs:
                record = encode_record(index, point)
                del record["t"]
                out.append(record)
        status = store_status(store.root)
        assert status.done == 2
        assert status.shards[0].eta_seconds is None

    def test_status_cli_prints_percent_and_eta(self, tmp_path, workload,
                                               capsys):
        from repro.cli import main

        store = self._seed_store(tmp_path, workload, "1/2", [100.0, 110.0])
        assert main(["dse-status", str(store)]) == 0
        captured = capsys.readouterr().out
        assert "done%" in captured and "eta" in captured
        assert "67%" in captured  # shard 1/2 holds 2 of its 3 points
        assert "10s" in captured  # shard 1/2's pending point at 0.1 pt/s
        assert "2/6 grid points done (33%)" in captured
        assert "ETA ?" in captured  # shard 2/2's rate is unknown


class TestWorkloadSpec:
    def test_spec_reconstructs_cached_workload(self, workload):
        assert workload_from_spec(SPEC) is workload  # same cache entry

    def test_opaque_spec_rejected(self):
        with pytest.raises(ValueError):
            workload_from_spec({"kind": "opaque"})


class TestCli:
    GRID_ARGS = ["--grid", "mac_lines=16,32", "--grid",
                 "ae_compression=none,0.5"]

    def test_shard_status_merge_in_process(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        for k in (1, 2):
            assert main(["dse-shard", "--shard", f"{k}/2", "--out", store,
                         "--models", "deit-tiny"] + self.GRID_ARGS) == 0
        assert main(["dse-status", store]) == 0
        out_json = str(tmp_path / "merged.json")
        assert main(["dse-merge", store, "--json", out_json]) == 0
        captured = capsys.readouterr().out
        assert "4/4 grid points done" in captured
        assert "4 points (analytical evaluator)" in captured
        merged = json.loads(Path(out_json).read_text())
        assert len(merged["points"]) == 4

    def test_shard_requires_arguments(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["dse-shard", "--out", "somewhere"])
        with pytest.raises(SystemExit):
            main(["dse-shard", "--shard", "1/2"])
        with pytest.raises(SystemExit):
            main(["dse-merge"])

    def test_separate_processes_match_serial(self, tmp_path):
        """Two real CLI processes shard one store; merge == serial sweep."""
        store = str(tmp_path / "store")
        base = [sys.executable, "-m", "repro"]
        env = dict(os.environ)
        # The harness may run with a relative PYTHONPATH=src; the child
        # processes run from tmp_path, so pin the package root absolutely.
        import repro
        package_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root] + ([env["PYTHONPATH"]] if "PYTHONPATH" in env
                              else [])
        )
        for k in (1, 2):
            subprocess.run(
                base + ["dse-shard", "--shard", f"{k}/2", "--out", store,
                        "--models", "deit-tiny"] + self.GRID_ARGS,
                check=True, capture_output=True, cwd=str(tmp_path), env=env,
            )
        workload = cached_model_workload("deit-tiny", sparsity=0.9)
        grid = {"mac_lines": (16, 32), "ae_compression": (None, 0.5)}
        serial = sweep_design_space(workload, grid)
        merged = merge_store(store)
        assert list(merged.points) == serial


class TestOpaqueWorkloadGuard:
    """Opaque stores pin the workload by structural fingerprint."""

    def test_different_workloads_cannot_mix(self, tmp_path, workload):
        other = cached_model_workload("deit-small", sparsity=0.9)
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2", store)  # no workload_spec
        with pytest.raises(StoreMismatchError):
            run_shard(other, GRID, "2/2", store)

    def test_same_workload_structure_accepted(self, tmp_path, workload):
        from repro.hw import model_workload
        from repro.models import get_config

        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2", store)
        # A freshly built (different object, equal structure) workload
        # fingerprints identically — hosts don't share Python identity.
        rebuilt = model_workload(get_config("deit-tiny"), sparsity=0.9)
        result = run_shard(rebuilt, GRID, "2/2", store)
        assert result.complete
        merged = merge_store(store)
        assert list(merged.points) == sweep_design_space(workload, GRID)

    def test_hybrid_merge_rejects_wrong_workload(self, tmp_path, workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/1", store, evaluator="hybrid")
        wrong = cached_model_workload("deit-small", sparsity=0.9)
        with pytest.raises(StoreMismatchError, match="fingerprint"):
            merge_store(store, workload=wrong)

    def test_unterminated_complete_record_survives_resume(self, tmp_path,
                                                          workload):
        """A final record missing only its newline is terminated, not
        truncated — the loader counted it as done, so the repair must
        keep it or the store would silently lose that grid point."""
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2", store,
                  evaluator=_RecordingEvaluator(), workload_spec=SPEC)
        path = ResultStore(store).shard_path(ShardSpec(1, 2))
        data = path.read_bytes()
        assert data.endswith(b"\n")
        path.write_bytes(data[:-1])  # killed between record and newline
        counting = _RecordingEvaluator()
        result = run_shard(workload, GRID, "1/2", store, evaluator=counting,
                           workload_spec=SPEC)
        assert counting.calls == [] and result.skipped == 3
        assert path.read_bytes() == data  # newline restored, nothing lost
        run_shard(workload, GRID, "2/2", store,
                  evaluator=_RecordingEvaluator(), workload_spec=SPEC)
        assert list(merge_store(store).points) == \
            sweep_design_space(workload, GRID)

    def test_recipe_spec_is_fingerprint_checked(self, tmp_path):
        """A workload_spec that does not describe the evaluated workload
        cannot mix with shards that honour the recipe."""
        wrong = cached_model_workload("deit-small", sparsity=0.9)
        right = cached_model_workload("deit-tiny", sparsity=0.9)
        store = tmp_path / "store"
        run_shard(wrong, GRID, "1/2", store, workload_spec=SPEC)
        with pytest.raises(StoreMismatchError):
            run_shard(right, GRID, "2/2", store, workload_spec=SPEC)


class TestWeightedShards:
    @pytest.mark.parametrize("evaluator", ["analytical", "cycle", "hybrid"])
    def test_weighted_merge_equals_serial_sweep(self, tmp_path, workload,
                                                evaluator):
        serial = sweep_design_space(workload, GRID, evaluator=evaluator)
        store = tmp_path / "store"
        for k in (1, 2):
            result = run_shard(workload, GRID, f"{k}/2@2,1", store,
                               evaluator=evaluator, workload_spec=SPEC)
            assert result.complete
        merged = merge_store(store)
        assert list(merged.points) == serial
        assert list(merged.frontier) == pareto_frontier(serial)
        assert merged.duplicates == 0

    def test_weighted_ownership_recorded_in_shard_files(self, tmp_path,
                                                        workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2@2,1", store, workload_spec=SPEC)
        records = load_jsonl(ResultStore(store).shard_path(ShardSpec(1, 2)))
        # sum(weights)=3: shard 1 owns residues {0,1} -> 0,1,3,4 of 6.
        assert sorted(r["i"] for r in records) == [0, 1, 3, 4]

    def test_manifest_pins_weights_for_later_shards(self, tmp_path,
                                                    workload):
        """A shard launched without weights adopts the store's vector."""
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2@2,1", store, workload_spec=SPEC)
        result = run_shard(workload, GRID, "2/2", store, workload_spec=SPEC)
        assert result.shard == ShardSpec(2, 2, weights=(2, 1))
        assert result.total == 2  # residue {2} of 6 -> indices 2, 5
        assert list(merge_store(store).points) == \
            sweep_design_space(workload, GRID)

    def test_conflicting_weights_rejected(self, tmp_path, workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2@2,1", store, workload_spec=SPEC)
        with pytest.raises(StoreMismatchError):
            run_shard(workload, GRID, "2/2@1,2", store, workload_spec=SPEC)
        # A weighted shard cannot join a store created uniform either.
        uniform = tmp_path / "uniform"
        run_shard(workload, GRID, "1/2", uniform, workload_spec=SPEC)
        with pytest.raises(StoreMismatchError):
            run_shard(workload, GRID, "2/2@2,1", uniform, workload_spec=SPEC)


class TestWorkStealing:
    def test_stealing_completes_missing_shard(self, tmp_path, workload):
        """One stealing shard finishes an absent peer's slice."""
        serial = sweep_design_space(workload, GRID)
        store = tmp_path / "store"
        result = run_shard(workload, GRID, "2/2", store, workload_spec=SPEC,
                           steal=True)
        assert result.evaluated == 3 and result.stolen == 3
        merged = merge_store(store)
        assert list(merged.points) == serial
        assert merged.duplicates == 0
        status = store_status(store)
        assert status.complete
        by_shard = {str(s.shard): s for s in status.shards}
        assert by_shard["1/2"].stolen == 3 and by_shard["1/2"].done == 3
        assert by_shard["2/2"].steals == 3 and by_shard["2/2"].stolen == 0
        assert status.stolen == 3 and status.steals == 3

    def test_victim_skips_stolen_work(self, tmp_path, workload):
        """A late victim re-evaluates nothing a stealer already recorded."""
        store = tmp_path / "store"
        run_shard(workload, GRID, "2/2", store, workload_spec=SPEC,
                  evaluator=_RecordingEvaluator(), steal=True)
        counting = _RecordingEvaluator()
        result = run_shard(workload, GRID, "1/2", store, workload_spec=SPEC,
                           evaluator=counting)
        assert counting.calls == []
        assert result.evaluated == 0 and result.skipped == 3
        assert list(merge_store(store).points) == \
            sweep_design_space(workload, GRID)

    def test_stolen_failures_are_completion_records(self, tmp_path,
                                                    workload):
        """A poisoned point stays a durable failure when stolen."""
        store = tmp_path / "store"
        run_shard(workload, GRID, "2/2", store, workload_spec=SPEC,
                  evaluator=_RecordingEvaluator(poison=32), steal=True)
        status = store_status(store)
        assert status.complete and status.failed == 2
        by_shard = {str(s.shard): s for s in status.shards}
        # mac_lines=32 sits at grid indices 1 (own) and 4 (stolen).
        assert by_shard["2/2"].failed == 1
        assert by_shard["1/2"].failed == 1 and by_shard["1/2"].stolen == 3
        with pytest.warns(RuntimeWarning, match="poisoned point"):
            merged = merge_store(store)
        assert merged.dropped == 2

    def test_zero_weight_shard_is_pure_stealer(self, tmp_path, workload):
        store = tmp_path / "store"
        result = run_shard(workload, GRID, "1/2@0,1", store,
                           workload_spec=SPEC, steal=True)
        assert result.total == 0 and result.evaluated == 0
        assert result.stolen == 6
        late = run_shard(workload, GRID, "2/2", store, workload_spec=SPEC,
                         evaluator=None)
        assert late.evaluated == 0 and late.skipped == 6
        assert list(merge_store(store).points) == \
            sweep_design_space(workload, GRID)

    def test_steal_claims_are_released_on_success(self, tmp_path, workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "2/2", store, workload_spec=SPEC,
                  steal=True)
        claims = ResultStore(store).claims_dir
        assert not claims.is_dir() or list(claims.glob("*.claim")) == []

    def test_live_claim_blocks_stealing(self, tmp_path, workload):
        """A fresh claim by another stealer is honoured (no busy-wait)."""
        from repro.dist.runner import _claim_path, _owed_indices

        store_path = tmp_path / "store"
        run_shard(workload, GRID, "2/2", store_path, workload_spec=SPEC)
        store = ResultStore(store_path)
        owed = _owed_indices(6, ShardSpec(2, 2), {1, 3, 5})
        claim = _claim_path(store, owed)
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.write_text("held by a live peer")
        result = run_shard(workload, GRID, "2/2", store_path,
                           workload_spec=SPEC, steal=True)
        assert result.stolen == 0
        with pytest.raises(IncompleteStoreError):
            merge_store(store_path)

    def test_expired_claim_is_taken_over(self, tmp_path, workload):
        from repro.dist.runner import _claim_path, _owed_indices

        store_path = tmp_path / "store"
        run_shard(workload, GRID, "2/2", store_path, workload_spec=SPEC)
        store = ResultStore(store_path)
        owed = _owed_indices(6, ShardSpec(2, 2), {1, 3, 5})
        claim = _claim_path(store, owed)
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.write_text("abandoned by a dead peer")
        stale = time.time() - 3600.0
        os.utime(claim, (stale, stale))
        result = run_shard(workload, GRID, "2/2", store_path,
                           workload_spec=SPEC, steal=True, claim_ttl=600.0)
        assert result.stolen == 3
        assert list(merge_store(store_path).points) == \
            sweep_design_space(workload, GRID)


class TestClaimPrimitives:
    def test_exclusive_creation(self, tmp_path):
        from repro.dist.runner import _release_claim, _try_claim

        claim = tmp_path / "claims" / "steal-00000000-00000004.claim"
        shard = ShardSpec(2, 2)
        assert _try_claim(claim, shard, ttl=600.0)
        assert claim.exists()
        assert not _try_claim(claim, shard, ttl=600.0)  # fresh -> blocked
        _release_claim(claim)
        assert not claim.exists()
        _release_claim(claim)  # idempotent

    def test_ttl_zero_ignores_existing_claims(self, tmp_path):
        from repro.dist.runner import _try_claim

        claim = tmp_path / "claims" / "steal-00000000-00000004.claim"
        assert _try_claim(claim, ShardSpec(1, 2), ttl=600.0)
        assert _try_claim(claim, ShardSpec(2, 2), ttl=0)

    def test_stale_claim_taken_over(self, tmp_path):
        from repro.dist.runner import _try_claim

        claim = tmp_path / "claims" / "steal-00000000-00000004.claim"
        assert _try_claim(claim, ShardSpec(1, 2), ttl=600.0)
        stale = time.time() - 3600.0
        os.utime(claim, (stale, stale))
        assert _try_claim(claim, ShardSpec(2, 2), ttl=600.0)


class TestDuplicateTolerantMerge:
    def _complete_store(self, tmp_path, workload):
        store = tmp_path / "store"
        for k in (1, 2):
            run_shard(workload, GRID, f"{k}/2", store, workload_spec=SPEC)
        return ResultStore(store)

    def test_bit_identical_duplicate_tolerated(self, tmp_path, workload):
        store = self._complete_store(tmp_path, workload)
        record = dict(load_jsonl(store.shard_path(ShardSpec(1, 2)))[0])
        record["t"] = 9.9e9  # timestamps may differ between copies
        steal_file = store.steal_path(ShardSpec(2, 2))
        steal_file.write_text(json.dumps(record) + "\n")
        merged = merge_store(store.root)
        assert merged.duplicates == 1
        assert list(merged.points) == sweep_design_space(workload, GRID)

    def test_conflicting_duplicate_raises(self, tmp_path, workload):
        store = self._complete_store(tmp_path, workload)
        record = dict(load_jsonl(store.shard_path(ShardSpec(1, 2)))[0])
        record["s"] = record["s"] * 2  # a different result for one index
        steal_file = store.steal_path(ShardSpec(2, 2))
        steal_file.write_text(json.dumps(record) + "\n")
        with pytest.raises(StoreCorruptError, match="conflicting"):
            merge_store(store.root)

    def test_steal_file_holding_own_index_raises(self, tmp_path, workload):
        store = self._complete_store(tmp_path, workload)
        record = load_jsonl(store.shard_path(ShardSpec(2, 2)))[0]
        steal_file = store.steal_path(ShardSpec(2, 2))
        steal_file.write_text(json.dumps(record) + "\n")
        with pytest.raises(StoreCorruptError, match="owns outright"):
            merge_store(store.root)

    def test_foreign_partition_steal_file_raises(self, tmp_path, workload):
        store = self._complete_store(tmp_path, workload)
        (store.root / "steal-0001-of-0004.jsonl").write_text("")
        with pytest.raises(StoreMismatchError, match="partition"):
            merge_store(store.root)


class _KillableStealer:
    """A real subprocess running a handicapped stealing shard."""

    SCRIPT = """\
import sys
from repro.dist import model_workload_spec, run_shard
from repro.perf import cached_model_workload

GRID = {"mac_lines": (16, 32, 64), "ae_compression": (None, 0.5)}
workload = cached_model_workload("deit-tiny", sparsity=0.9)
run_shard(
    workload, GRID, sys.argv[1], sys.argv[2],
    workload_spec=model_workload_spec("deit-tiny", sparsity=0.9),
    steal=True, handicap=float(sys.argv[3]),
)
"""

    def __init__(self, tmp_path, shard, store, handicap):
        import repro

        script = tmp_path / "stealer.py"
        script.write_text(self.SCRIPT)
        env = dict(os.environ)
        package_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root] + ([env["PYTHONPATH"]] if "PYTHONPATH" in env
                              else [])
        )
        self.proc = subprocess.Popen(
            [sys.executable, str(script), shard, str(store), str(handicap)],
            cwd=str(tmp_path), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )


class TestKillMidSteal:
    """Acceptance: a shard killed mid-steal leaves the store mergeable."""

    def _kill_mid_steal(self, tmp_path, workload):
        """Complete shard 1/2, then SIGKILL it mid-way through stealing
        shard 2's slice.  Returns the store root."""
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2", store, workload_spec=SPEC)
        stealer = _KillableStealer(tmp_path, "1/2", store, handicap=0.3)
        steal_file = ResultStore(store).steal_path(ShardSpec(1, 2))
        deadline = time.monotonic() + 60.0
        try:
            while time.monotonic() < deadline:
                if len(load_jsonl(steal_file)) >= 1:
                    break
                if stealer.proc.poll() is not None:
                    pytest.fail("stealer exited before it could be killed")
                time.sleep(0.02)
            else:
                pytest.fail("stealer never recorded a stolen point")
            stealer.proc.send_signal(signal.SIGKILL)
            stealer.proc.wait(timeout=30)
        finally:
            if stealer.proc.poll() is None:
                stealer.proc.kill()
                stealer.proc.wait(timeout=30)
        stolen = [r["i"] for r in load_jsonl(steal_file)]
        assert stolen and set(stolen) < {1, 3, 5}  # killed mid-steal
        claims = list(ResultStore(store).claims_dir.glob("*.claim"))
        assert claims  # the claim outlived its writer
        with pytest.raises(IncompleteStoreError):
            merge_store(store)  # incomplete, but not corrupt
        return store

    def test_resumed_stealer_completes(self, tmp_path, workload):
        store = self._kill_mid_steal(tmp_path, workload)
        # claim_ttl=0 ignores the orphaned claim instead of waiting for
        # its TTL; the resumed stealer re-claims and finishes the range.
        result = run_shard(workload, GRID, "1/2", store, workload_spec=SPEC,
                           steal=True, claim_ttl=0)
        assert result.evaluated == 0 and result.stolen >= 1
        merged = merge_store(store)
        assert list(merged.points) == sweep_design_space(workload, GRID)

    def test_victim_completes_after_stealer_death(self, tmp_path, workload):
        store = self._kill_mid_steal(tmp_path, workload)
        result = run_shard(workload, GRID, "2/2", store, workload_spec=SPEC)
        assert 1 <= result.evaluated <= 2  # only the unstolen remainder
        merged = merge_store(store)
        assert list(merged.points) == sweep_design_space(workload, GRID)
        assert merged.duplicates == 0


class TestElasticCli:
    GRID_ARGS = ["--grid", "mac_lines=16,32", "--grid",
                 "ae_compression=none,0.5"]

    def test_weighted_stealing_shard_completes_store(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main(["dse-shard", "--shard", "1/2@1,3", "--out", store,
                     "--models", "deit-tiny", "--steal"]
                    + self.GRID_ARGS) == 0
        assert main(["dse-status", store]) == 0
        merged_json = str(tmp_path / "merged.json")
        assert main(["dse-merge", store, "--json", merged_json]) == 0
        captured = capsys.readouterr().out
        assert "3 stolen from other shards" in captured
        assert "4/4 grid points done" in captured
        serial_json = str(tmp_path / "serial.json")
        assert main(["dse", "--models", "deit-tiny", "--json", serial_json]
                    + self.GRID_ARGS) == 0
        merged = json.loads(Path(merged_json).read_text())
        serial = json.loads(Path(serial_json).read_text())
        assert merged["points"] == serial["points"]

    def test_status_reports_stolen_counts(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main(["dse-shard", "--shard", "2/2", "--out", store,
                     "--models", "deit-tiny", "--steal"]
                    + self.GRID_ARGS) == 0
        assert main(["dse-status", store, "--json",
                     str(tmp_path / "status.json")]) == 0
        captured = capsys.readouterr().out
        assert "stolen" in captured and "steals" in captured
        status = json.loads((tmp_path / "status.json").read_text())
        assert status["complete"] and status["stolen"] == 2
        by_shard = {s["shard"]: s for s in status["shards"]}
        assert by_shard["1/2"]["stolen"] == 2
        assert by_shard["2/2"]["steals"] == 2

    def test_bad_steal_flags_rejected(self, tmp_path):
        from repro.cli import main

        store = str(tmp_path / "store")
        base = ["dse-shard", "--shard", "1/1", "--out", store]
        with pytest.raises(SystemExit):
            main(base + ["--steal-chunk", "0"])
        with pytest.raises(SystemExit):
            main(base + ["--handicap", "-1"])
