"""Tests for the related-work sparse-pattern library (sparsity.schedules)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity import metrics, reorder_attention_map
from repro.sparsity.schedules import (
    bigbird_mask,
    block_mask,
    global_mask,
    longformer_mask,
    pattern_zoo,
    random_pattern_mask,
    strided_mask,
    window_mask,
)


class TestIndividualPatterns:
    def test_window_symmetry(self):
        mask = window_mask(20, window=2)
        np.testing.assert_array_equal(mask, mask.T)
        assert mask[0, 2] and not mask[0, 3]

    def test_window_zero_is_diagonal(self):
        mask = window_mask(10, window=0)
        np.testing.assert_array_equal(mask, np.eye(10, dtype=bool))

    def test_window_negative_raises(self):
        with pytest.raises(ValueError):
            window_mask(10, window=-1)

    def test_global_rows_and_cols(self):
        mask = global_mask(12, [3])
        assert mask[3].all() and mask[:, 3].all()
        assert mask.sum() == 12 + 12 - 1

    def test_random_per_row(self):
        mask = random_pattern_mask(30, per_row=3, seed=1)
        assert (mask.sum(axis=1) == 3).all()

    def test_bigbird_contains_components(self):
        mask = bigbird_mask(40, window=2, num_globals=2, random_per_row=1)
        assert (mask & window_mask(40, 2)).sum() == window_mask(40, 2).sum()
        assert mask[:, 0].all()  # global column
        assert np.diag(mask).all()

    def test_longformer_globals(self):
        mask = longformer_mask(30, window=1, global_tokens=(5,))
        assert mask[5].all() and mask[:, 5].all()

    def test_block_mask_blocks(self):
        mask = block_mask(12, block_size=4)
        assert mask[:4, :4].all()
        assert not mask[:4, 4:].any()

    def test_block_invalid(self):
        with pytest.raises(ValueError):
            block_mask(8, block_size=0)

    def test_strided_pattern(self):
        mask = strided_mask(16, stride=4, window=0)
        assert mask[:, 0].all() and mask[:, 4].all()
        assert np.diag(mask).all()

    def test_strided_invalid(self):
        with pytest.raises(ValueError):
            strided_mask(8, stride=0)


class TestPatternZoo:
    def test_all_patterns_high_sparsity(self):
        zoo = pattern_zoo(197, seed=0)
        assert set(zoo) == {"window", "bigbird", "longformer", "block",
                            "strided"}
        for name, mask in zoo.items():
            assert metrics.sparsity(mask) > 0.6, name
            # No empty rows (softmax-safe).
            assert mask.any(axis=-1).all(), name

    def test_learned_masks_have_global_tokens_hand_patterns_dont(
            self, paper_scale_result):
        """The paper's point: learned ViT masks contain genuine global-token
        columns that reordering can extract into a dense engine-friendly
        block; purely-local hand patterns (window/block) have none, leaving
        only the worst-case diagonal workload (Fig. 2 discussion)."""
        ours = int(paper_scale_result.num_global_tokens.sum())
        assert ours >= 12  # at least ~1 per head at 197 tokens
        zoo = pattern_zoo(197, seed=0)
        for name in ("window", "block"):
            _, info = reorder_attention_map(zoo[name], theta_d=0.5)
            assert info.num_global_tokens == 0, name
        # And the learned masks' diagonal remainder is sparser than the
        # hand patterns' overall density at matched ~90% sparsity.
        sparser_density = float(np.mean(
            [p.sparser_density for p in paper_scale_result.partitions]
        ))
        assert sparser_density < metrics.density(zoo["window"]) + 0.1

    def test_bigbird_reorders_like_vit(self):
        """BigBird's explicit global tokens DO polarize under Algorithm 1's
        reordering — the mechanism is pattern-agnostic."""
        mask = bigbird_mask(96, window=2, num_globals=4, random_per_row=1)
        reordered, info = reorder_attention_map(mask, theta_d=0.5)
        assert info.num_global_tokens >= 4
        front = reordered[:, : info.num_global_tokens]
        assert front.mean() > 0.9

    @given(
        n=st.integers(min_value=4, max_value=64),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_zoo_masks_are_valid(self, n, seed):
        for name, mask in pattern_zoo(n, seed=seed).items():
            assert mask.shape == (n, n)
            assert mask.dtype == bool
            assert mask.any(axis=-1).all(), name
