"""Tests for baseline platforms and accelerator simulators."""

import numpy as np
import pytest

from repro.baselines import (
    SangerSimulator,
    SpAttenSimulator,
    cascade_keep_ratios,
    cpu_platform,
    edgegpu_platform,
    gpu_platform,
)
from repro.hw import ViTCoDAccelerator, model_workload
from repro.models import get_config


@pytest.fixture(scope="module")
def deit_base_90():
    return model_workload(get_config("deit-base"), sparsity=0.9, seed=7)


class TestGeneralPlatforms:
    def test_platform_ordering(self, deit_base_90):
        # GPU faster than EdgeGPU faster than CPU on attention.
        cpu = cpu_platform().simulate_attention(deit_base_90).seconds
        edge = edgegpu_platform().simulate_attention(deit_base_90).seconds
        gpu = gpu_platform().simulate_attention(deit_base_90).seconds
        assert gpu < edge < cpu

    def test_dense_execution_ignores_sparsity(self):
        # General platforms run dense: 90% and 70% cost the same.
        cfg = get_config("deit-small")
        p = cpu_platform()
        t90 = p.simulate_attention(model_workload(cfg, sparsity=0.9)).seconds
        t70 = p.simulate_attention(model_workload(cfg, sparsity=0.7)).seconds
        assert t90 == pytest.approx(t70)

    def test_end2end_exceeds_attention(self, deit_base_90):
        p = edgegpu_platform()
        assert (p.simulate_model(deit_base_90).seconds
                > p.simulate_attention(deit_base_90).seconds)

    def test_energy_positive(self, deit_base_90):
        r = gpu_platform().simulate_attention(deit_base_90)
        assert r.energy_joules > 0

    def test_kernel_overhead_matters_for_tiny_layers(self):
        # LeViT's late stages have 16-token layers where overhead dominates;
        # attention time per FLOP should be worse than DeiT-Base's.
        levit = model_workload(get_config("levit-256"), sparsity=0.9)
        base = model_workload(get_config("deit-base"), sparsity=0.9)
        p = edgegpu_platform()
        levit_r = p.simulate_attention(levit)
        base_r = p.simulate_attention(base)
        levit_tpf = levit_r.seconds / levit_r.details["flops"]
        base_tpf = base_r.seconds / base_r.details["flops"]
        assert levit_tpf > base_tpf


class TestSanger:
    def test_prediction_charged_as_preprocess(self, deit_base_90):
        r = SangerSimulator().simulate_attention(deit_base_90)
        assert r.latency.preprocess > 0

    def test_fixed_masks_remove_prediction(self, deit_base_90):
        dynamic = SangerSimulator(dynamic_masks=True)
        fixed = SangerSimulator(dynamic_masks=False)
        assert (fixed.simulate_attention(deit_base_90).cycles
                < dynamic.simulate_attention(deit_base_90).cycles)

    def test_pack_efficiency_in_range(self, deit_base_90):
        sim = SangerSimulator()
        for layer in deit_base_90.attention_layers:
            eff = sim.pack_efficiency(layer)
            assert 0.05 <= eff <= 1.0

    def test_pack_efficiency_better_for_denser_masks(self):
        sim = SangerSimulator()
        dense = model_workload(get_config("deit-base"), sparsity=0.6, seed=7)
        sparse = model_workload(get_config("deit-base"), sparsity=0.95, seed=7)
        assert (sim.pack_efficiency(dense.attention_layers[0])
                > sim.pack_efficiency(sparse.attention_layers[0]))

    def test_slower_than_vitcod_at_high_sparsity(self, deit_base_90):
        sanger = SangerSimulator().simulate_attention(deit_base_90)
        ours = ViTCoDAccelerator().simulate_attention(deit_base_90)
        speedup = ours.speedup_over(sanger)
        assert 3.0 < speedup < 12.0  # paper: 6.8x

    def test_energy_worse_than_vitcod(self, deit_base_90):
        sanger = SangerSimulator().simulate_attention(deit_base_90)
        ours = ViTCoDAccelerator().simulate_attention(deit_base_90)
        assert ours.energy_efficiency_over(sanger) > 1.0


class TestSpAtten:
    def test_cascade_ratios_monotone(self):
        ratios = cascade_keep_ratios(12, 0.9)
        assert ratios[0] == pytest.approx(1.0)
        assert ratios[-1] == pytest.approx(np.sqrt(0.1))
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_cascade_single_layer(self):
        assert cascade_keep_ratios(1, 0.75) == [0.5]

    def test_cascade_invalid_sparsity(self):
        with pytest.raises(ValueError):
            cascade_keep_ratios(4, 1.0)

    def test_keep_ratio_shrinks_layer_cost(self, deit_base_90):
        sim = SpAttenSimulator()
        layer = deit_base_90.attention_layers[0]
        full = sim.simulate_attention_layer(layer, keep_ratio=1.0).cycles
        half = sim.simulate_attention_layer(layer, keep_ratio=0.5).cycles
        assert half < full / 2  # quadratic benefit of token pruning

    def test_topk_charged_as_preprocess(self, deit_base_90):
        r = SpAttenSimulator().simulate_attention(deit_base_90)
        assert r.latency.preprocess > 0

    def test_slower_than_vitcod_and_sanger_order(self, deit_base_90):
        # Paper ordering at 90%: ViTCoD < Sanger < SpAtten < GPU < ... < CPU.
        ours = ViTCoDAccelerator().simulate_attention(deit_base_90).seconds
        sanger = SangerSimulator().simulate_attention(deit_base_90).seconds
        spatten = SpAttenSimulator().simulate_attention(deit_base_90).seconds
        gpu = gpu_platform().simulate_attention(deit_base_90).seconds
        cpu = cpu_platform().simulate_attention(deit_base_90).seconds
        assert ours < sanger < spatten < gpu < cpu

    def test_spatten_gains_less_at_high_sparsity(self):
        """SpAtten's coarse pruning saturates: going 80->90% sparsity helps
        it less than it helps ViTCoD (why Fig. 15's gap widens)."""
        cfg = get_config("deit-base")
        wl80 = model_workload(cfg, sparsity=0.8, seed=7)
        wl90 = model_workload(cfg, sparsity=0.9, seed=7)
        sp = SpAttenSimulator()
        ours = ViTCoDAccelerator()
        spatten_gain = (sp.simulate_attention(wl80).seconds
                        / sp.simulate_attention(wl90).seconds)
        vitcod_gain = (ours.simulate_attention(wl80).seconds
                       / ours.simulate_attention(wl90).seconds)
        assert vitcod_gain > spatten_gain

    def test_end2end_includes_token_pruned_gemms(self, deit_base_90):
        sim = SpAttenSimulator()
        e2e = sim.simulate_model(deit_base_90)
        attn = sim.simulate_attention(deit_base_90)
        assert e2e.cycles > attn.cycles
        assert 0 < e2e.details["mean_keep_ratio"] <= 1.0
