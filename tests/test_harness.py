"""Tests for the experiment harness: every figure/table runner works and its
headline claims point the right way."""

import pytest

from repro.harness import (
    ablation_prune_reorder,
    fig1_accuracy_sparsity,
    fig3_roofline,
    fig4_breakdown,
    fig8_polarization,
    fig15_speedups,
    fig17_accuracy_latency,
    fig19_breakdown_energy,
    format_speedup_row,
    format_table,
    nlp_comparison,
    nlp_dynamic_accuracy,
    nlp_fixed_mask_accuracy,
    table1_taxonomy,
    vit_fixed_mask_accuracy,
)

FAST_MODELS = ("deit-tiny", "levit-128")


class TestSurrogates:
    def test_vit_flat_until_knee(self):
        drop_at_90 = (vit_fixed_mask_accuracy("deit-base", 0.0)
                      - vit_fixed_mask_accuracy("deit-base", 0.9))
        assert drop_at_90 < 1.5  # paper: <=1.5% at 90%

    def test_vit_falls_past_95(self):
        assert (vit_fixed_mask_accuracy("deit-base", 0.99)
                < vit_fixed_mask_accuracy("deit-base", 0.9) - 0.5)

    def test_levit_knee_earlier(self):
        deit_drop = (vit_fixed_mask_accuracy("deit-base", 0.0)
                     - vit_fixed_mask_accuracy("deit-base", 0.88))
        levit_drop = (vit_fixed_mask_accuracy("levit-128", 0.0)
                      - vit_fixed_mask_accuracy("levit-128", 0.88))
        assert levit_drop > deit_drop

    def test_nlp_dynamic_degrades_before_vit_fixed(self):
        nlp_drop = (nlp_dynamic_accuracy(0.0) - nlp_dynamic_accuracy(0.9))
        vit_drop = (vit_fixed_mask_accuracy("deit-base", 0.0)
                    - vit_fixed_mask_accuracy("deit-base", 0.9))
        assert nlp_drop > vit_drop

    def test_nlp_fixed_loses_about_1_point_at_60(self):
        drop = (nlp_fixed_mask_accuracy(0.0) - nlp_fixed_mask_accuracy(0.6))
        assert 0.7 < drop < 2.0  # paper: -1.18 at 60%

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            vit_fixed_mask_accuracy("vgg-16", 0.5)


class TestFig1:
    def test_structure_and_trend(self):
        data = fig1_accuracy_sparsity()
        assert len(data["curves"]) == 5
        for name, curve in data["curves"].items():
            assert len(curve) == len(data["sparsities"])
        # At 90% sparsity ViT curves lose less (relative to their base)
        # than NLP curves.
        idx = data["sparsities"].index(0.9)
        deit = data["curves"]["deit-base (fixed)"]
        nlp = data["curves"]["nlp window (dynamic)"]
        assert (deit[0] - deit[idx]) < (nlp[0] - nlp[idx])


class TestFig3:
    def test_bounds(self):
        data = fig3_roofline()
        by_name = {p["name"]: p for p in data["points"]}
        assert by_name["sparse-vits"]["bound"] == "memory"
        assert by_name["dense-vits"]["bound"] == "compute"
        assert (by_name["sparse-vits"]["intensity"]
                < by_name["vitcod"]["intensity"])


class TestFig4:
    def test_sa_dominates_latency(self):
        rows = fig4_breakdown(models=("deit-base", "levit-128"))
        for row in rows:
            # Paper: SA >= ~50% of EdgeGPU latency, up to 69% on LeViT-128.
            assert row["sa_latency_fraction"] > 0.45
        levit = next(r for r in rows if r["model"] == "levit-128")
        assert levit["sa_latency_fraction"] > 0.6

    def test_mlp_dominates_flops_on_deit(self):
        row = next(r for r in fig4_breakdown(models=("deit-base",)))
        assert row["flops_fraction"]["mlp"] > row["flops_fraction"]["attention_core"]

    def test_fractions_normalised(self):
        for row in fig4_breakdown(models=FAST_MODELS):
            assert sum(row["flops_fraction"].values()) == pytest.approx(1.0)


class TestFig8:
    def test_polarization_improves(self):
        data = fig8_polarization(num_tokens=96, num_heads=4, num_layers=2)
        assert data["mean_polarization"] > 0.6
        for layer in data["layers"]:
            assert (layer["prune_and_reorder"]["sparsity"]
                    == pytest.approx(layer["prune_only"]["sparsity"]))


class TestFig15:
    @pytest.fixture(scope="class")
    def speedups(self):
        return fig15_speedups(sparsity=0.9, models=FAST_MODELS)

    def test_vitcod_beats_everything(self, speedups):
        for bname, value in speedups["mean"].items():
            assert value > 1.0, bname

    def test_ordering_matches_paper(self, speedups):
        mean = speedups["mean"]
        assert mean["cpu"] > mean["edgegpu"] > mean["gpu"]
        assert mean["gpu"] > mean["spatten"] > mean["sanger"] > 1.0

    def test_end_to_end_speedups_smaller(self):
        core = fig15_speedups(sparsity=0.9, models=("deit-tiny",))
        e2e = fig15_speedups(sparsity=0.9, models=("deit-tiny",),
                             end_to_end=True)
        assert e2e["mean"]["cpu"] < core["mean"]["cpu"]


class TestFig17:
    def test_latency_reduced_accuracy_held(self):
        rows = fig17_accuracy_latency(models=FAST_MODELS)
        for row in rows:
            # Paper: 45.1-85.8% attention-latency reduction, <1% acc drop.
            assert 0.4 < row["latency_reduction"] < 0.95
            assert (row["dense_accuracy"] - row["vitcod_accuracy"]) < 1.0

    def test_levit_capped_at_80(self):
        rows = fig17_accuracy_latency(models=("levit-128",), sparsity=0.9)
        assert rows[0]["sparsity"] == pytest.approx(0.8)


class TestFig19:
    @pytest.fixture(scope="class")
    def data(self):
        # DeiT-Base: the model whose Q/K working set exceeds the on-chip
        # buffers, where the AE's traffic reduction actually bites.
        return fig19_breakdown_energy(models=("deit-base",),
                                      sparsities=(0.8, 0.9))

    def test_sc_and_ae_both_contribute(self, data):
        assert data["speedup_sc_only_vs_sanger"] > 1.5  # paper: 2.7x
        assert data["speedup_ae_on_top"] > 1.2  # paper: 2.5x

    def test_energy_efficiency_over_sanger(self, data):
        # Paper: 9.8x (on the six DeiT/LeViT models).  Our energy model
        # reproduces the direction but a smaller magnitude (~2.4x on
        # DeiT-Base, less on the tiny models used here) — see
        # EXPERIMENTS.md for the documented deviation.
        assert data["energy_efficiency_vs_sanger"] > 1.0

    def test_ae_reduces_data_movement_share(self, data):
        bd = data["mean_breakdown_at_max_sparsity"]
        assert (bd["vitcod"]["data_movement"]
                <= bd["vitcod_no_ae"]["data_movement"])

    def test_sanger_has_preprocess_share(self, data):
        bd = data["mean_breakdown_at_max_sparsity"]
        assert bd["sanger"]["preprocess"] > bd["vitcod"]["preprocess"]


class TestTable1:
    def test_seven_accelerators(self):
        rows = table1_taxonomy()
        assert len(rows) == 7
        assert rows[-1]["accelerator"] == "ViTCoD"

    def test_vitcod_unique_static_polarized(self):
        rows = table1_taxonomy()
        vitcod = rows[-1]
        assert vitcod["pattern"] == "static-denser-sparser"
        assert all(r["pattern"] != vitcod["pattern"] for r in rows[:-1])


class TestAblationAndNLP:
    def test_prune_reorder_benefits(self):
        data = ablation_prune_reorder(sparsities=(0.8, 0.9))
        # Paper §VI-C: pruning ~5.14x, reordering ~2.59x on average; at high
        # sparsity pruning clearly dominates (8.14x vs 2.03x at 90%).
        assert data["mean_pruning_benefit"] > 2.0
        assert data["mean_reordering_benefit"] > 1.5
        at_90 = next(r for r in data["rows"] if r["sparsity"] == 0.9)
        assert at_90["pruning_benefit"] > at_90["reordering_benefit"]

    def test_nlp_speedup_smaller_than_vit(self):
        nlp_rows = nlp_comparison(sparsities=(0.9,))
        vit = fig15_speedups(sparsity=0.9, models=("deit-base",))
        assert 1.0 < nlp_rows[0]["speedup_vs_sanger"] < vit["mean"]["sanger"]

    def test_nlp_speedup_grows_with_sparsity(self):
        rows = nlp_comparison(sparsities=(0.6, 0.9))
        assert rows[1]["speedup_vs_sanger"] > rows[0]["speedup_vs_sanger"]

    def test_nlp_accuracy_cost_reported(self):
        rows = nlp_comparison(sparsities=(0.6,))
        assert rows[0]["fixed_mask_bleu_drop"] > 0.5


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.50" in out

    def test_format_table_empty(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_speedup_row(self):
        assert format_speedup_row("m", [1.234, 10.0]) == ["m", "1.2x", "10.0x"]
