"""Tests for the model zoo: configs, ViT, LeViT, Strided Transformer."""

import numpy as np
import pytest

from repro.models import (
    NLP_BERT_BASE,
    StageSpec,
    build_levit,
    build_strided,
    build_vit,
    get_config,
    list_models,
)


class TestConfigs:
    def test_all_seven_models_present(self):
        expected = {
            "deit-tiny", "deit-small", "deit-base",
            "levit-128", "levit-192", "levit-256",
            "strided-transformer",
        }
        assert set(list_models()) == expected

    def test_deit_paper_scale(self):
        cfg = get_config("deit-base")
        stage = cfg.paper_stages[0]
        assert (stage.depth, stage.num_heads, stage.embed_dim,
                stage.num_tokens) == (12, 12, 768, 197)
        assert stage.head_dim == 64

    def test_levit_is_pyramidal(self):
        cfg = get_config("levit-128")
        tokens = [s.num_tokens for s in cfg.paper_stages]
        assert tokens == sorted(tokens, reverse=True)
        dims = [s.embed_dim for s in cfg.paper_stages]
        assert dims == sorted(dims)

    def test_unknown_model_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="deit-tiny"):
            get_config("resnet-50")

    def test_lookup_case_insensitive(self):
        assert get_config("DeiT-Base").name == "deit-base"

    def test_stage_divisibility_enforced(self):
        with pytest.raises(ValueError):
            StageSpec(depth=1, num_heads=5, embed_dim=12, num_tokens=4)

    def test_attention_workloads_per_layer(self):
        cfg = get_config("levit-256")
        wls = cfg.paper_attention_workloads()
        assert len(wls) == cfg.paper_num_layers == 12
        assert wls[0] == (196, 4, 64)

    def test_flop_counters_positive_and_ordered(self):
        tiny = get_config("deit-tiny")
        base = get_config("deit-base")
        assert 0 < tiny.paper_attention_flops() < base.paper_attention_flops()
        assert tiny.paper_linear_flops() > tiny.paper_attention_flops()

    def test_nlp_config(self):
        assert NLP_BERT_BASE.paper_stages[0].num_tokens == 512


class TestVisionTransformer:
    @pytest.fixture(scope="class")
    def vit(self):
        return build_vit(get_config("deit-tiny"), patch_dim=8, num_classes=3,
                         seed=0)

    def test_forward_shape(self, vit, rng):
        out = vit(rng.standard_normal((4, vit.num_patches, 8)))
        assert out.shape == (4, 3)

    def test_cls_token_prepended(self, vit, rng):
        feats = vit.forward_features(rng.standard_normal((2, vit.num_patches, 8)))
        assert feats.shape[1] == vit.num_patches + 1

    def test_attention_modules_count(self, vit):
        assert len(vit.attention_modules()) == 4

    def test_set_masks_wrong_length(self, vit):
        with pytest.raises(ValueError):
            vit.set_masks([None])

    def test_set_masks_installs(self, vit):
        n = vit.num_tokens
        masks = [np.ones((n, n), dtype=bool)] * 4
        vit.set_masks(masks)
        assert all(b.attn.attention_mask is not None for b in vit.blocks)
        vit.set_masks([None] * 4)

    def test_backward_through_whole_model(self, vit, rng):
        from repro.nn import functional as F
        logits = vit(rng.standard_normal((2, vit.num_patches, 8)))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        loss.backward()
        grads = [p.grad for p in vit.parameters()]
        assert all(g is not None for g in grads)

    def test_deterministic_given_seed(self, rng):
        cfg = get_config("deit-tiny")
        a = build_vit(cfg, patch_dim=8, num_classes=3, seed=5)
        b = build_vit(cfg, patch_dim=8, num_classes=3, seed=5)
        x = rng.standard_normal((1, a.num_patches, 8))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_multistage_config_rejected(self):
        with pytest.raises(ValueError):
            build_vit(get_config("levit-128"), patch_dim=8, num_classes=3)


class TestLeViT:
    @pytest.fixture(scope="class")
    def levit(self):
        return build_levit(get_config("levit-128"), patch_dim=8,
                           num_classes=3, seed=0)

    def test_forward_shape(self, levit, rng):
        n0 = levit.stages_spec[0].num_tokens
        out = levit(rng.standard_normal((2, n0, 8)))
        assert out.shape == (2, 3)

    def test_token_pooling_shrinks(self, levit):
        # 16 tokens -> 4 tokens between stages at sim scale.
        assert levit.stages_spec[0].num_tokens == 16
        assert levit.stages_spec[1].num_tokens == 4

    def test_attention_modules_span_stages(self, levit):
        assert len(levit.attention_modules()) == 4

    def test_single_stage_rejected(self):
        with pytest.raises(ValueError):
            build_levit(get_config("deit-tiny"), patch_dim=8, num_classes=3)

    def test_backward(self, levit, rng):
        n0 = levit.stages_spec[0].num_tokens
        out = levit(rng.standard_normal((1, n0, 8)))
        out.sum().backward()
        assert levit.embed.weight.grad is not None

    def test_token_pool_requires_even_square(self):
        from repro.models.levit import TokenPool
        with pytest.raises(ValueError):
            TokenPool(8, 8, in_tokens=9)  # 3x3 grid: odd side
        with pytest.raises(ValueError):
            TokenPool(8, 8, in_tokens=15)  # not square


class TestStridedTransformer:
    @pytest.fixture(scope="class")
    def strided(self):
        return build_strided(get_config("strided-transformer"), joint_dim=16,
                             seed=0)

    def test_seq_to_seq_shape(self, strided, rng):
        out = strided(rng.standard_normal((2, strided.num_tokens, 16)))
        assert out.shape == (2, strided.num_tokens, 16)

    def test_strided_summary_downsamples(self, strided, rng):
        out = strided.strided_summary(
            rng.standard_normal((1, strided.num_tokens, 16))
        )
        expected = int(np.ceil(strided.num_tokens / strided.stride))
        assert out.shape == (1, expected, 16)

    def test_masks_installable(self, strided):
        n = strided.num_tokens
        strided.set_masks([np.ones((n, n), dtype=bool)] * len(strided.blocks))
        strided.set_masks([None] * len(strided.blocks))
