"""Tests for Algorithm 1's reordering step and the split-and-conquer driver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity import (
    find_global_tokens,
    metrics,
    prune_attention_map,
    reorder_attention_map,
    split_and_conquer,
    split_and_conquer_layers,
    synthetic_vit_attention,
)


def mask_with_globals(n, global_cols, band=1, seed=0):
    """Binary mask: diagonal band plus fully-dense global columns."""
    idx = np.arange(n)
    mask = np.abs(idx[:, None] - idx[None, :]) <= band
    mask[:, list(global_cols)] = True
    return mask


class TestFindGlobalTokens:
    def test_detects_dense_columns(self):
        mask = mask_with_globals(20, [3, 11])
        is_global = find_global_tokens(mask, theta_d=0.5)
        assert is_global[3] and is_global[11]
        assert is_global.sum() == 2

    def test_absolute_threshold(self):
        mask = mask_with_globals(20, [5])
        is_global = find_global_tokens(mask, theta_d=15)
        assert is_global[5] and is_global.sum() == 1

    def test_multi_head_aggregates(self):
        m1 = mask_with_globals(16, [2])
        m2 = mask_with_globals(16, [2, 9])
        is_global = find_global_tokens(np.stack([m1, m2]), theta_d=0.5)
        assert is_global[2]

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            find_global_tokens(np.zeros(5, dtype=bool), 0.5)


class TestReorder:
    def test_globals_move_to_front(self):
        mask = mask_with_globals(24, [7, 15])
        reordered, info = reorder_attention_map(mask, theta_d=0.5)
        assert info.num_global_tokens == 2
        np.testing.assert_array_equal(info.permutation[:2], [7, 15])

    def test_permutation_is_bijection(self):
        mask = mask_with_globals(30, [4, 20, 29])
        _, info = reorder_attention_map(mask, theta_d=0.5)
        assert sorted(info.permutation.tolist()) == list(range(30))

    def test_nnz_preserved(self):
        mask = mask_with_globals(24, [3])
        reordered, _ = reorder_attention_map(mask, theta_d=0.5)
        assert reordered.sum() == mask.sum()

    def test_front_columns_denser(self):
        mask = mask_with_globals(32, [6, 17])
        reordered, info = reorder_attention_map(mask, theta_d=0.5)
        ngt = info.num_global_tokens
        front = reordered[:, :ngt].mean()
        rest = reordered[:, ngt:].mean()
        assert front > rest

    def test_attention_map_permuted_alongside(self):
        mask = mask_with_globals(16, [5])
        a = np.arange(256, dtype=float).reshape(16, 16)
        reordered_mask, reordered_map, info = reorder_attention_map(
            mask, theta_d=0.5, attention_map=a
        )
        perm = info.permutation
        np.testing.assert_allclose(reordered_map, a[np.ix_(perm, perm)])

    def test_stable_within_groups(self):
        mask = mask_with_globals(20, [8, 2])
        _, info = reorder_attention_map(mask, theta_d=0.5)
        # Global tokens keep original relative order: 2 before 8.
        np.testing.assert_array_equal(info.permutation[:2], [2, 8])
        # Non-globals also keep order.
        rest = info.permutation[2:]
        assert (np.diff(rest) > 0).all()


class TestSplitConquer:
    def test_partitions_cover_mask(self, paper_scale_result):
        res = paper_scale_result
        for head_mask, part in zip(res.mask, res.partitions):
            assert part.denser_nnz + part.sparser_nnz == head_mask.sum()

    def test_target_sparsity_achieved(self, paper_scale_result):
        assert abs(paper_scale_result.sparsity - 0.9) < 0.02

    def test_polarization_high(self, paper_scale_result):
        res = paper_scale_result
        score = metrics.polarization_score(
            res.reordered_masks(), res.num_global_tokens
        )
        assert score > 0.7

    def test_denser_block_denser_than_sparser(self, paper_scale_result):
        for part in paper_scale_result.partitions:
            assert part.denser_density > 0.5
            assert part.sparser_density < 0.2
            assert part.denser_density > 3 * part.sparser_density

    def test_requires_exactly_one_threshold(self):
        maps = synthetic_vit_attention(32, num_heads=2)
        with pytest.raises(ValueError):
            split_and_conquer(maps)
        with pytest.raises(ValueError):
            split_and_conquer(maps, theta_p=0.5, target_sparsity=0.9)

    def test_2d_input_promoted_to_single_head(self):
        maps = synthetic_vit_attention(32, num_heads=1, seed=0)[0]
        res = split_and_conquer(maps, target_sparsity=0.8)
        assert res.num_heads == 1

    def test_masked_map_zeroes_pruned(self):
        maps = synthetic_vit_attention(32, num_heads=2, seed=1)
        res = split_and_conquer(maps, target_sparsity=0.8)
        masked = res.masked_map(maps)
        assert np.all(masked[~res.mask] == 0)
        np.testing.assert_allclose(masked[res.mask], maps[res.mask])

    def test_layers_helper(self):
        layer_maps = [synthetic_vit_attention(24, 2, seed=s) for s in range(3)]
        results = split_and_conquer_layers(layer_maps, target_sparsity=0.8)
        assert len(results) == 3

    def test_theta_p_direct(self):
        maps = synthetic_vit_attention(32, num_heads=2, seed=2)
        res = split_and_conquer(maps, theta_p=0.5)
        assert res.theta_p == 0.5
        assert 0.0 < res.sparsity < 1.0


class TestHypothesisReorder:
    @given(
        n=st.integers(min_value=4, max_value=32),
        num_globals=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_reorder_preserves_structure(self, n, num_globals, seed):
        rng = np.random.default_rng(seed)
        cols = rng.choice(n, size=min(num_globals, n), replace=False)
        mask = mask_with_globals(n, cols)
        reordered, info = reorder_attention_map(mask, theta_d=0.5)
        # Bijection, nnz preserved, diagonal structure preserved up to
        # relabelling (row/col both permuted).
        assert sorted(info.permutation.tolist()) == list(range(n))
        assert reordered.sum() == mask.sum()
        perm = info.permutation
        np.testing.assert_array_equal(reordered, mask[np.ix_(perm, perm)])

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_polarization_never_hurt_by_reorder(self, seed):
        maps = synthetic_vit_attention(48, num_heads=2, seed=seed)
        pruned = prune_attention_map(maps, 0.3)
        res = split_and_conquer(maps, theta_p=0.3, theta_d=0.25)
        before = metrics.polarization_score(
            pruned, res.num_global_tokens
        )
        after = metrics.polarization_score(
            res.reordered_masks(), res.num_global_tokens
        )
        assert after >= before - 1e-9
