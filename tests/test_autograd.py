"""Tests for the reverse-mode autograd engine (repro.nn.autograd)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, no_grad, is_grad_enabled


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn w.r.t. ndarray x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn()
        x[idx] = orig - eps
        lo = fn()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(make_output, param, atol=1e-5):
    """Compare autograd gradient of make_output() (scalar Tensor) against
    numerical differentiation w.r.t. ``param`` (a Tensor)."""
    param.zero_grad()
    out = make_output()
    out.backward()
    analytic = param.grad.copy()
    param.zero_grad()
    numeric = numerical_grad(lambda: make_output().item(), param.data)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_values(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        b = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose((a + b).data, a.data + b.data)

    def test_add_scalar(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1.5).data, [2.5, 3.5])
        np.testing.assert_allclose((1.5 + a).data, [2.5, 3.5])

    def test_sub_and_rsub(self):
        a = Tensor([3.0])
        assert (a - 1.0).item() == 2.0
        assert (5.0 - a).item() == 2.0

    def test_mul_div(self):
        a = Tensor([4.0])
        assert (a * 2).item() == 8.0
        assert (a / 2).item() == 2.0
        assert (8.0 / a).item() == 2.0

    def test_neg_pow(self):
        a = Tensor([3.0])
        assert (-a).item() == -3.0
        assert (a**2).item() == 9.0

    def test_matmul_values(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((3, 5)))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((4, 2, 3)))
        b = Tensor(rng.standard_normal((4, 3, 5)))
        assert (a @ b).shape == (4, 2, 5)

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([2.0])


class TestGradients:
    def test_add_grad_broadcast(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        check_gradient(lambda: (x + b).sum(), x)
        check_gradient(lambda: ((x + b) * (x + b)).sum(), b)

    def test_mul_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        y = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        check_gradient(lambda: (x * y).sum(), x)
        check_gradient(lambda: (x * y).sum(), y)

    def test_div_grad(self, rng):
        x = Tensor(rng.standard_normal((3,)) + 3.0, requires_grad=True)
        y = Tensor(rng.standard_normal((3,)) + 3.0, requires_grad=True)
        check_gradient(lambda: (x / y).sum(), x)
        check_gradient(lambda: (x / y).sum(), y)

    def test_matmul_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_gradient(lambda: ((a @ b) ** 2).sum(), a)
        check_gradient(lambda: ((a @ b) ** 2).sum(), b)

    def test_matmul_broadcast_grad(self, rng):
        a = Tensor(rng.standard_normal((5, 2, 3)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_gradient(lambda: ((a @ w) ** 2).sum(), w)

    def test_exp_log_sqrt_tanh_abs(self, rng):
        x = Tensor(np.abs(rng.standard_normal(5)) + 0.5, requires_grad=True)
        check_gradient(lambda: x.exp().sum(), x)
        check_gradient(lambda: x.log().sum(), x)
        check_gradient(lambda: x.sqrt().sum(), x)
        check_gradient(lambda: x.tanh().sum(), x)

    def test_relu_grad(self):
        x = Tensor([-1.0, 2.0, 3.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])

    def test_gelu_grad(self, rng):
        x = Tensor(rng.standard_normal(6), requires_grad=True)
        check_gradient(lambda: x.gelu().sum(), x)

    def test_softmax_grad(self, rng):
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        w = rng.standard_normal((3, 5))
        check_gradient(lambda: (x.softmax(axis=-1) * w).sum(), x)

    def test_log_softmax_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        w = rng.standard_normal((2, 4))
        check_gradient(lambda: (x.log_softmax(axis=-1) * w).sum(), x)

    def test_sum_axis_grad(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_gradient(lambda: (x.sum(axis=0) ** 2).sum(), x)

    def test_mean_var_grad(self, rng):
        x = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        check_gradient(lambda: (x.mean(axis=-1) ** 2).sum(), x)
        check_gradient(lambda: x.var(axis=-1).sum(), x)

    def test_max_grad(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        x.max(axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        check_gradient(lambda: (x.reshape(3, 4).transpose() ** 2).sum(), x)

    def test_swapaxes_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradient(lambda: (x.swapaxes(0, 2) ** 2).sum(), x)

    def test_getitem_grad(self, rng):
        x = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
        check_gradient(lambda: (x[1:3, :2] ** 2).sum(), x)

    def test_concat_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        check_gradient(lambda: (Tensor.concat([a, b], axis=0) ** 2).sum(), a)
        check_gradient(lambda: (Tensor.concat([a, b], axis=1) ** 2).sum(), b)

    def test_masked_fill_grad(self, rng):
        x = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        mask = np.eye(3, dtype=bool)
        x.masked_fill(mask, -5.0).sum().backward()
        expected = np.ones((3, 3)) - np.eye(3)
        np.testing.assert_allclose(x.grad, expected)

    def test_grad_accumulates_on_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        ((x * x) + x).sum().backward()  # d/dx (x^2 + x) = 2x + 1 = 5
        np.testing.assert_allclose(x.grad, [5.0])


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach() * 2
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x feeds two paths that rejoin: gradient must sum once per path.
        x = Tensor([3.0], requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_deep_chain_iterative_toposort(self):
        # Deep chains must not hit the recursion limit (iterative DFS).
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(2).data.sum() == 2.0
        t = Tensor.randn(4, 5, rng=np.random.default_rng(0), scale=0.1)
        assert t.shape == (4, 5)

    def test_properties(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.ndim == 2 and t.size == 6 and len(t) == 2
        assert "Tensor" in repr(t)


class TestHypothesisGradients:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_softmax_rows_sum_to_one(self, rows, cols, seed):
        x = Tensor(np.random.default_rng(seed).standard_normal((rows, cols)))
        out = x.softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(rows),
                                   atol=1e-12)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_matmul_grad_matches_numeric(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        check_gradient(lambda: ((a @ b).tanh()).sum(), a)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_consistency(self, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((3, 1, 4)), requires_grad=True)
        y = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        out = (x * y).sum()
        out.backward()
        assert x.grad.shape == x.shape
        assert y.grad.shape == y.shape
