"""Tests for Algorithm 1's pruning step (repro.sparsity.pruning)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity import (
    mask_for_sparsity,
    mask_sparsity,
    prune_attention_map,
    synthetic_vit_attention,
    threshold_for_sparsity,
)


def random_attention(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    return a / a.sum(axis=-1, keepdims=True)


class TestPruneAttentionMap:
    def test_full_threshold_keeps_everything(self):
        a = random_attention(10)
        mask = prune_attention_map(a, theta_p=1.0)
        assert mask.all()

    def test_tiny_threshold_keeps_top1_per_row(self):
        a = random_attention(12, seed=1)
        mask = prune_attention_map(a, theta_p=1e-9)
        assert (mask.sum(axis=-1) == 1).all()
        # The kept element is the row maximum.
        kept = mask.argmax(axis=-1)
        np.testing.assert_array_equal(kept, a.argmax(axis=-1))

    def test_every_row_nonempty(self):
        a = random_attention(20, seed=2)
        for theta in (0.1, 0.3, 0.5, 0.9):
            mask = prune_attention_map(a, theta)
            assert mask.any(axis=-1).all()

    def test_monotone_in_theta(self):
        a = random_attention(16, seed=3)
        prev = None
        for theta in (0.2, 0.4, 0.6, 0.8, 1.0):
            mask = prune_attention_map(a, theta)
            if prev is not None:
                # Larger theta keeps a superset.
                assert (mask | prev == mask).all()
            prev = mask

    def test_keeps_highest_scores_first(self):
        a = np.array([[0.5, 0.3, 0.15, 0.05]])
        mask = prune_attention_map(a, theta_p=0.8)
        np.testing.assert_array_equal(mask, [[True, True, False, False]])

    def test_threshold_crossing_element_kept(self):
        a = np.array([[0.6, 0.4]])
        # 0.6 >= 0.5 already: only the first element is needed.
        mask = prune_attention_map(a, theta_p=0.5)
        np.testing.assert_array_equal(mask, [[True, False]])

    def test_multi_head_input(self):
        a = np.stack([random_attention(8, s) for s in range(3)])
        mask = prune_attention_map(a, 0.5)
        assert mask.shape == (3, 8, 8)

    def test_min_keep(self):
        a = random_attention(10, seed=4)
        mask = prune_attention_map(a, theta_p=1e-9, min_keep=3)
        assert (mask.sum(axis=-1) == 3).all()

    def test_unnormalised_rows_handled(self):
        a = random_attention(8, seed=5) * 7.3  # rows no longer sum to 1
        mask = prune_attention_map(a, 0.5)
        assert mask.any(axis=-1).all()

    def test_invalid_theta_raises(self):
        a = random_attention(4)
        with pytest.raises(ValueError):
            prune_attention_map(a, 0.0)
        with pytest.raises(ValueError):
            prune_attention_map(a, 1.5)

    def test_invalid_min_keep_raises(self):
        with pytest.raises(ValueError):
            prune_attention_map(random_attention(4), 0.5, min_keep=0)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            prune_attention_map(np.zeros(4), 0.5)


class TestSparsityTargeting:
    def test_threshold_for_sparsity_hits_target(self):
        a = synthetic_vit_attention(96, num_heads=4, seed=0)
        for target in (0.5, 0.7, 0.9):
            theta = threshold_for_sparsity(a, target)
            achieved = mask_sparsity(prune_attention_map(a, theta))
            assert abs(achieved - target) < 0.03

    def test_mask_for_sparsity(self):
        a = synthetic_vit_attention(64, num_heads=2, seed=1)
        mask = mask_for_sparsity(a, 0.85)
        assert abs(mask_sparsity(mask) - 0.85) < 0.03

    def test_zero_sparsity(self):
        a = random_attention(16)
        theta = threshold_for_sparsity(a, 0.0)
        assert mask_sparsity(prune_attention_map(a, theta)) < 0.05

    def test_invalid_target_raises(self):
        with pytest.raises(ValueError):
            threshold_for_sparsity(random_attention(4), 1.0)

    def test_mask_sparsity_values(self):
        assert mask_sparsity(np.ones((4, 4), dtype=bool)) == 0.0
        m = np.zeros((4, 4), dtype=bool)
        m[0, 0] = True
        assert mask_sparsity(m) == pytest.approx(15 / 16)


class TestHypothesisProperties:
    @given(
        n=st.integers(min_value=2, max_value=24),
        theta=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_never_empty_and_mass_covered(self, n, theta, seed):
        a = random_attention(n, seed)
        mask = prune_attention_map(a, theta)
        assert mask.any(axis=-1).all()
        # Kept mass per row reaches theta (up to the crossing element).
        kept_mass = (a * mask).sum(axis=-1)
        assert (kept_mass >= min(theta, 1.0) - 1e-9).all()

    @given(
        n=st.integers(min_value=4, max_value=20),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_kept_entries_dominate_pruned(self, n, seed):
        """Every kept entry in a row is >= every pruned entry (top-k style)."""
        a = random_attention(n, seed)
        mask = prune_attention_map(a, 0.6)
        for i in range(n):
            kept = a[i][mask[i]]
            pruned = a[i][~mask[i]]
            if len(pruned):
                assert kept.min() >= pruned.max() - 1e-12
