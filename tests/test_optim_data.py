"""Tests for optimisers (repro.nn.optim) and synthetic datasets (nn.data)."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    Parameter,
    SGD,
    Adam,
    SyntheticPatchDataset,
    SyntheticPoseDataset,
    iterate_minibatches,
)


def quadratic_loss(param, target):
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        p = Parameter(np.zeros(3))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(p, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([5.0])

        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = quadratic_loss(p, target)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(p.data[0] - 5.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # Zero-gradient steps: only decay acts.
        p.grad = np.zeros(1)
        for _ in range(5):
            opt.step()
        assert abs(p.data[0]) < 10.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad — must be a no-op, not an error
        np.testing.assert_allclose(p.data, [1.0])

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0])
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            loss = quadratic_loss(p, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_bias_correction_first_step(self):
        # First Adam step should be ≈ lr in the gradient direction.
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.1], atol=1e-6)

    def test_zero_grad_clears_all(self):
        p1, p2 = Parameter(np.ones(1)), Parameter(np.ones(1))
        opt = Adam([p1, p2])
        p1.grad = np.ones(1)
        p2.grad = np.ones(1)
        opt.zero_grad()
        assert p1.grad is None and p2.grad is None


class TestPatchDataset:
    def test_deterministic(self):
        a = SyntheticPatchDataset(seed=3)
        b = SyntheticPatchDataset(seed=3)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = SyntheticPatchDataset(seed=1)
        b = SyntheticPatchDataset(seed=2)
        assert not np.allclose(a.x, b.x)

    def test_shapes(self):
        ds = SyntheticPatchDataset(num_samples=64, num_tokens=16, patch_dim=8)
        assert ds.x.shape == (64, 16, 8)
        assert ds.y.shape == (64,)
        assert len(ds) == 64

    def test_labels_in_range(self):
        ds = SyntheticPatchDataset(num_classes=5, num_samples=128)
        assert ds.y.min() >= 0 and ds.y.max() < 5

    def test_salient_positions_fixed_and_informative(self):
        ds = SyntheticPatchDataset(num_samples=256, noise=0.1)
        sal = ds.salient_positions
        assert len(set(sal.tolist())) == ds.num_salient
        # Class signal concentrates at the salient positions: per-class mean
        # magnitude there should exceed non-salient positions.
        non_sal = [i for i in range(ds.num_tokens) if i not in sal]
        m_sal = np.abs(ds.x[:, sal, :]).mean()
        m_non = np.abs(ds.x[:, non_sal, :]).mean()
        assert m_sal > m_non

    def test_split_fractions(self):
        ds = SyntheticPatchDataset(num_samples=100)
        x_tr, y_tr, x_te, y_te = ds.split(0.8)
        assert len(x_tr) == 80 and len(x_te) == 20
        assert len(y_tr) == 80 and len(y_te) == 20


class TestPoseDataset:
    def test_shapes_and_determinism(self):
        a = SyntheticPoseDataset(num_samples=32, num_tokens=27, seed=1)
        b = SyntheticPoseDataset(num_samples=32, num_tokens=27, seed=1)
        assert a.x.shape == (32, 27, a.joint_dim)
        np.testing.assert_array_equal(a.y, b.y)

    def test_targets_are_smooth_latent(self):
        ds = SyntheticPoseDataset(noise=0.5, seed=0)
        # Targets bounded by the sinusoid range, inputs noisier.
        assert np.abs(ds.y).max() <= 1.0 + 1e-9
        assert ds.x.std() > ds.y.std()


class TestMinibatches:
    def test_covers_all_samples(self):
        x = np.arange(10)[:, None]
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_minibatches(x, y, 3, shuffle=False):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_sizes(self):
        x = np.zeros((10, 1))
        sizes = [len(xb) for xb, _ in
                 iterate_minibatches(x, np.zeros(10), 4, shuffle=False)]
        assert sizes == [4, 4, 2]

    def test_shuffle_uses_rng(self):
        x = np.arange(8)[:, None]
        y = np.arange(8)
        order1 = [t for _, yb in iterate_minibatches(
            x, y, 8, rng=np.random.default_rng(0)) for t in yb]
        order2 = [t for _, yb in iterate_minibatches(
            x, y, 8, rng=np.random.default_rng(0)) for t in yb]
        assert order1 == order2
