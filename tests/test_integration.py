"""End-to-end integration: trained model → Algorithm 1 → masked model,
functional execution, compiler, and hardware simulation all agree."""

import numpy as np
import pytest

from repro.autoencoder import run_vitcod_pipeline
from repro.compiler import (
    Opcode,
    compile_layers,
    dense_masked_attention_reference,
    execute_attention_layer,
    parse_layers,
)
from repro.hw import ViTCoDAccelerator, attention_workload_from_masks
from repro.models import extract_average_attention, pretrained
from repro.nn import Tensor, no_grad
from repro.sparsity import split_and_conquer


@pytest.fixture(scope="module")
def pipeline():
    pre = pretrained("deit-tiny", epochs=3,
                     dataset_kwargs=dict(num_samples=192, num_classes=3))
    return pre, run_vitcod_pipeline(
        pre, target_sparsity=0.7, compression=0.5,
        ae_epochs=2, mask_epochs=2, seed=0,
    )


class TestAlgorithmToHardware:
    def test_real_masks_drive_the_simulator(self, pipeline):
        _, result = pipeline
        layer = result.layer_results[0]
        head_dim = result.model.blocks[0].attn.head_dim
        wl = attention_workload_from_masks(layer, head_dim=head_dim)
        report = ViTCoDAccelerator().simulate_attention_layer(wl)
        assert report.cycles > 0
        assert abs(wl.sparsity - layer.sparsity) < 1e-9

    def test_sparser_masks_simulate_faster(self, pipeline):
        pre, _ = pipeline
        maps = extract_average_attention(pre.model, pre.dataset.x[:64])
        acc = ViTCoDAccelerator(use_ae=False)
        times = []
        for target in (0.5, 0.9):
            res = split_and_conquer(maps[0], target_sparsity=target)
            wl = attention_workload_from_masks(res, head_dim=8)
            times.append(acc.simulate_attention_layer(wl).cycles)
        assert times[1] < times[0]

    def test_compile_real_model(self, pipeline):
        _, result = pipeline
        head_dim = result.model.blocks[0].attn.head_dim
        cfgs = parse_layers(result.layer_results, head_dim=head_dim)
        prog = compile_layers(cfgs, use_ae=True)
        assert prog.count(Opcode.SDDMM_SPARSE) == len(result.layer_results)


class TestFunctionalEquivalence:
    def test_executor_matches_model_attention(self, pipeline):
        """Drive the functional executor with the Q/K/V the *trained model*
        actually produces and check it reproduces the model's own masked
        attention output."""
        pre, result = pipeline
        model = result.model
        block = model.blocks[0]
        attn = block.attn
        layer_res = result.layer_results[0]

        x = pre.dataset.x[:2]
        with no_grad():
            feats = model.embed(Tensor(x))
            cls = Tensor.concat([model.cls_token] * 2, axis=0)
            tokens = Tensor.concat([cls, feats], axis=1) + model.pos_embed
            normed = block.norm1(tokens)

            batch, n, _ = normed.shape
            qkv = attn.qkv(normed).reshape(batch, n, 3, attn.num_heads,
                                           attn.head_dim)
            qkv = qkv.transpose(2, 0, 3, 1, 4)
            q, k, v = qkv[0].data, qkv[1].data, qkv[2].data
            if attn.autoencoder is not None:
                q = attn.autoencoder(Tensor(q)).data
                k = attn.autoencoder(Tensor(k)).data

        for b in range(batch):
            out = execute_attention_layer(q[b], k[b], v[b], layer_res)
            ref = dense_masked_attention_reference(q[b], k[b], v[b],
                                                   layer_res.mask)
            np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_masked_model_still_classifies(self, pipeline):
        pre, result = pipeline
        x_tr, y_tr, x_te, y_te = pre.dataset.split()
        with no_grad():
            logits = result.model(x_te)
        acc = float((logits.data.argmax(-1) == y_te).mean())
        assert acc > 0.6  # far above 1/3 chance despite 70% pruning


class TestCrossSubsystemConsistency:
    def test_workload_macs_match_mask_counts(self, pipeline):
        _, result = pipeline
        layer = result.layer_results[0]
        head_dim = result.model.blocks[0].attn.head_dim
        wl = attention_workload_from_masks(layer, head_dim=head_dim)
        mask_nnz = int(result.model.blocks[0].attn.attention_mask.sum())
        assert wl.total_nnz == mask_nnz
        assert wl.spmm_macs == mask_nnz * head_dim

    def test_report_merging_matches_sum(self, pipeline):
        _, result = pipeline
        head_dim = result.model.blocks[0].attn.head_dim
        acc = ViTCoDAccelerator()
        reports = [
            acc.simulate_attention_layer(
                attention_workload_from_masks(l, head_dim=head_dim))
            for l in result.layer_results
        ]
        merged = reports[0]
        for r in reports[1:]:
            merged = merged.merged(r)
        assert merged.cycles == pytest.approx(sum(r.cycles for r in reports))
        assert merged.energy_pj == pytest.approx(
            sum(r.energy_pj for r in reports)
        )
