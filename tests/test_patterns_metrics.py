"""Tests for synthetic pattern generators and mask metrics."""

import numpy as np
import pytest

from repro.sparsity import (
    diagonal_band_mask,
    metrics,
    random_mask,
    split_and_conquer,
    synthetic_nlp_attention,
    synthetic_vit_attention,
)


class TestGenerators:
    def test_vit_attention_row_normalised(self):
        maps = synthetic_vit_attention(64, num_heads=4, seed=0)
        assert maps.shape == (4, 64, 64)
        np.testing.assert_allclose(maps.sum(axis=-1), 1.0, atol=1e-12)
        assert (maps >= 0).all()

    def test_vit_attention_deterministic(self):
        a = synthetic_vit_attention(32, 2, seed=9)
        b = synthetic_vit_attention(32, 2, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_vit_attention_has_diagonal_concentration(self):
        maps = synthetic_vit_attention(64, num_heads=1, seed=1)[0]
        diag_mass = np.trace(maps) / 64
        off_mass = maps.mean()
        assert diag_mass > 3 * off_mass

    def test_vit_attention_has_global_columns(self):
        maps = synthetic_vit_attention(96, num_heads=1, seed=2)[0]
        col_mass = maps.sum(axis=0)
        # A few columns absorb far more mass than the median column.
        assert col_mass.max() > 5 * np.median(col_mass)

    def test_vit_heads_differ(self):
        maps = synthetic_vit_attention(48, num_heads=3, seed=3)
        assert not np.allclose(maps[0], maps[1])

    def test_nlp_attention_less_structured(self):
        vit = synthetic_vit_attention(96, num_heads=4, seed=4)
        nlp = synthetic_nlp_attention(96, num_heads=4, seed=4)
        vit_res = split_and_conquer(vit, target_sparsity=0.9)
        nlp_res = split_and_conquer(nlp, target_sparsity=0.9)
        vit_pol = metrics.polarization_score(
            vit_res.reordered_masks(), vit_res.num_global_tokens)
        nlp_pol = metrics.polarization_score(
            nlp_res.reordered_masks(), nlp_res.num_global_tokens)
        vit_diag = metrics.diagonal_fraction(vit_res.mask)
        nlp_diag = metrics.diagonal_fraction(nlp_res.mask)
        # ViT masks polarize and concentrate on the diagonal; NLP masks don't.
        assert vit_diag > nlp_diag

    def test_diagonal_band_mask(self):
        mask = diagonal_band_mask(10, band_width=1)
        assert mask[0, 0] and mask[0, 1] and not mask[0, 2]
        assert mask.sum() == 10 + 2 * 9

    def test_random_mask_density(self):
        mask = random_mask(64, density=0.3, num_heads=2, seed=0)
        assert abs(mask.mean() - 0.3) < 0.05

    def test_random_mask_rows_nonempty(self):
        mask = random_mask(32, density=0.02, num_heads=3, seed=1)
        assert mask.any(axis=-1).all()

    def test_random_mask_invalid_density(self):
        with pytest.raises(ValueError):
            random_mask(8, density=0.0)


class TestMetrics:
    def test_sparsity_density_complementary(self):
        mask = random_mask(32, 0.25, seed=2)
        assert metrics.sparsity(mask) + metrics.density(mask) == pytest.approx(1.0)

    def test_polarization_perfect(self):
        mask = np.zeros((1, 10, 10), dtype=bool)
        mask[:, :, :3] = True
        assert metrics.polarization_score(mask, 3) == pytest.approx(1.0)

    def test_polarization_zero_for_uniform(self):
        mask = np.ones((1, 10, 10), dtype=bool)
        assert metrics.polarization_score(mask, 3) == pytest.approx(0.0)

    def test_column_imbalance_zero_for_uniform(self):
        mask = np.ones((8, 8), dtype=bool)
        assert metrics.column_imbalance(mask) == pytest.approx(0.0)

    def test_column_imbalance_high_for_skewed(self):
        mask = np.zeros((16, 16), dtype=bool)
        mask[:, 0] = True
        mask[0, :] = True
        assert metrics.column_imbalance(mask) > 1.0

    def test_k_reuse_counts_used_columns_only(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:, 0] = True  # one column used by all 8 rows
        assert metrics.k_reuse_factor(mask) == pytest.approx(8.0)

    def test_q_reuse(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, :] = True
        assert metrics.q_reuse_factor(mask) == pytest.approx(8.0)

    def test_diagonal_fraction_pure_band(self):
        mask = diagonal_band_mask(20, band_width=1)
        assert metrics.diagonal_fraction(mask, band_width=1) == pytest.approx(1.0)

    def test_diagonal_fraction_empty(self):
        assert metrics.diagonal_fraction(np.zeros((4, 4), dtype=bool)) == 0.0

    def test_mask_summary_keys(self):
        mask = random_mask(16, 0.2, seed=3)
        summary = metrics.mask_summary(mask, num_global_tokens=2)
        assert {"sparsity", "column_imbalance", "k_reuse", "q_reuse",
                "diagonal_fraction", "polarization"} <= set(summary)

    def test_reuse_bounded_by_n(self):
        mask = random_mask(24, 0.5, seed=4)
        assert metrics.k_reuse_factor(mask) <= 24
        assert metrics.q_reuse_factor(mask) <= 24

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            metrics.column_imbalance(np.zeros(5, dtype=bool))
