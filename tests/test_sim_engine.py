"""Tests for the unified simulation-engine layer (repro.sim)."""

import dataclasses

import pytest

from repro.baselines import (
    SangerSimulator,
    SpAttenSimulator,
    cpu_platform,
    edgegpu_platform,
    gpu_platform,
)
from repro.hw import (
    CycleAccurateSimulator,
    CycleSimResult,
    ModelWorkload,
    ViTCoDAccelerator,
    merge_cycle_results,
    model_workload,
)
from repro.models import get_config
from repro.sim import (
    AttentionSimulatorBase,
    ModelSimulator,
    ModelSimulatorBase,
    Simulator,
    merge_results,
)


@pytest.fixture(scope="module")
def tiny_model():
    return model_workload(get_config("deit-tiny"), sparsity=0.9)


@pytest.fixture()
def empty_model():
    return ModelWorkload(name="empty", attention_layers=(), linear_layers=())


ALL_SIMULATORS = [
    ViTCoDAccelerator,
    SangerSimulator,
    SpAttenSimulator,
    CycleAccurateSimulator,
]


class TestProtocol:
    @pytest.mark.parametrize("make", ALL_SIMULATORS)
    def test_all_simulators_conform(self, make):
        assert isinstance(make(), Simulator)

    @pytest.mark.parametrize("make", [
        ViTCoDAccelerator, SangerSimulator, SpAttenSimulator,
        cpu_platform, edgegpu_platform, gpu_platform,
    ])
    def test_model_simulators_conform(self, make):
        # The analytical platforms conform structurally, no inheritance.
        assert isinstance(make(), ModelSimulator)

    def test_cycle_sim_is_attention_only(self):
        sim = CycleAccurateSimulator()
        assert isinstance(sim, Simulator)
        assert not isinstance(sim, ModelSimulator)

    @pytest.mark.parametrize("cls", [
        ViTCoDAccelerator, SangerSimulator, SpAttenSimulator,
    ])
    def test_model_simulators_use_shared_base(self, cls):
        assert issubclass(cls, ModelSimulatorBase)

    def test_cycle_sim_uses_shared_base(self):
        assert issubclass(CycleAccurateSimulator, AttentionSimulatorBase)


class TestEmptyModels:
    """Every simulator raises a clear ValueError instead of crashing on
    ``None.workload`` when a model has no attention layers."""

    @pytest.mark.parametrize("make", ALL_SIMULATORS)
    def test_simulate_attention_raises(self, make, empty_model):
        with pytest.raises(ValueError):
            make().simulate_attention(empty_model)

    @pytest.mark.parametrize("make", [
        ViTCoDAccelerator, SangerSimulator, SpAttenSimulator,
    ])
    def test_simulate_model_raises(self, make, empty_model):
        with pytest.raises(ValueError):
            make().simulate_model(empty_model)

    def test_unbatched_vitcod_raises_too(self, empty_model):
        with pytest.raises(ValueError):
            ViTCoDAccelerator(batched=False).simulate_attention(empty_model)

    def test_merge_results_empty(self):
        with pytest.raises(ValueError):
            merge_results([])


class TestMergeResults:
    def test_matches_manual_fold(self, tiny_model):
        acc = ViTCoDAccelerator()
        reports = [
            acc.simulate_attention_layer(l)
            for l in tiny_model.attention_layers
        ]
        merged = merge_results(
            acc.simulate_attention_layer(l)
            for l in tiny_model.attention_layers
        )
        manual = reports[0]
        for r in reports[1:]:
            manual = manual.merged(r)
        assert merged.cycles == manual.cycles
        assert merged.energy_pj == manual.energy_pj

    def test_single_result_passthrough(self, tiny_model):
        acc = ViTCoDAccelerator()
        report = acc.simulate_attention_layer(tiny_model.attention_layers[0])
        assert merge_results([report]) is report


class TestCycleSimResultMerged:
    def _result(self, makespan):
        return CycleSimResult(
            makespan=makespan, sddmm_makespan=makespan / 2,
            spmm_makespan=makespan / 2, denser_busy=1.0, sparser_busy=2.0,
            dram_busy=3.0, softmax_busy=4.0, jobs_executed=5,
        )

    def test_fields_add(self):
        merged = self._result(10.0).merged(self._result(20.0))
        assert merged.makespan == 30.0
        assert merged.jobs_executed == 10
        assert merged.denser_busy == 2.0

    def test_per_layer_chains(self):
        a, b, c = (self._result(m) for m in (1.0, 2.0, 3.0))
        merged = a.merged(b).merged(c)
        assert merged.per_layer == (a, b, c)

    def test_merge_cycle_results_single_layer_wraps(self):
        r = self._result(7.0)
        total = merge_cycle_results([r])
        assert total.per_layer == (r,)
        assert total.makespan == r.makespan


class TestPerLayerBreakdown:
    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_whole_model_exposes_layers(self, tiny_model, engine):
        sim = CycleAccurateSimulator(engine=engine)
        total = sim.simulate_attention(tiny_model)
        assert len(total.per_layer) == len(tiny_model.attention_layers)
        assert total.makespan == pytest.approx(
            sum(r.makespan for r in total.per_layer)
        )
        for r in total.per_layer:
            assert r.per_layer == ()
            assert r.makespan > 0

    def test_accepts_model_workload_and_layer_list(self, tiny_model):
        sim = CycleAccurateSimulator()
        via_model = sim.simulate_attention(tiny_model)
        via_layers = sim.simulate_attention(tiny_model.attention_layers)
        assert dataclasses.astuple(via_model) == dataclasses.astuple(via_layers)

    def test_experiment_uses_per_layer(self):
        from repro.harness import cycle_per_layer_breakdown

        out = cycle_per_layer_breakdown(model="deit-tiny", sparsity=0.9)
        assert len(out["layers"]) == 12
        fractions = [row["makespan_fraction"] for row in out["layers"]]
        assert sum(fractions) == pytest.approx(1.0)
        assert all(0 < row["makespan"] <= out["total_makespan"]
                   for row in out["layers"])


class TestBaselineBehaviourPreserved:
    """The repro.sim refactor must not change what the baselines report."""

    def test_spatten_cascade_still_applied(self, tiny_model):
        sim = SpAttenSimulator()
        whole = sim.simulate_attention(tiny_model)
        # Layers run at decreasing keep ratios, so the model total is less
        # than num_layers x the unpruned first layer.
        first = sim.simulate_attention_layer(
            tiny_model.attention_layers[0], keep_ratio=1.0
        )
        assert whole.cycles < len(tiny_model.attention_layers) * first.cycles

    def test_sanger_model_platform_label(self, tiny_model):
        report = SangerSimulator().simulate_model(tiny_model)
        assert report.platform == "Sanger"
        assert report.workload.endswith(":end2end")

    def test_vitcod_details(self, tiny_model):
        acc = ViTCoDAccelerator()
        attn = acc.simulate_attention(tiny_model)
        assert attn.details == {"layers": len(tiny_model.attention_layers)}
        e2e = acc.simulate_model(tiny_model)
        assert e2e.details["linear_layers"] == len(tiny_model.linear_layers)
