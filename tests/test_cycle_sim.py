"""Tests for the event-driven simulator and the banked DRAM model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import (
    CycleAccurateSimulator,
    DramModel,
    DramRequest,
    Timeline,
    ViTCoDAccelerator,
    dense_attention_workload,
    synthetic_attention_workload,
)


@pytest.fixture(scope="module")
def wl90():
    return synthetic_attention_workload(197, 12, 64, sparsity=0.9, seed=7)


@pytest.fixture(scope="module")
def wl70():
    return synthetic_attention_workload(197, 12, 64, sparsity=0.7, seed=7)


class TestDramModel:
    def test_sequential_stream_at_peak(self):
        dram = DramModel()
        bw = dram.effective_bandwidth(1 << 20, sequential=True)
        assert bw == pytest.approx(dram.bytes_per_cycle)

    def test_scattered_slower_than_sequential(self):
        dram = DramModel()
        assert (dram.effective_bandwidth(128, sequential=False)
                < dram.effective_bandwidth(128, sequential=True))

    def test_burst_rounding(self):
        dram = DramModel(burst_bytes=64)
        # A 1-byte request still occupies a full burst.
        t1 = dram.service_cycles(DramRequest(bytes=1))
        t64 = dram.service_cycles(DramRequest(bytes=64))
        assert t1 == t64

    def test_zero_request(self):
        assert DramModel().service_cycles(DramRequest(bytes=0)) == 0.0

    def test_negative_request_raises(self):
        with pytest.raises(ValueError):
            DramModel().service_cycles(DramRequest(bytes=-1))

    def test_amplification_at_least_one(self):
        dram = DramModel()
        for size in (8, 64, 100, 4096):
            for seq in (True, False):
                assert dram.amplification(size, sequential=seq) >= 1.0 - 1e-9

    @given(size=st.integers(min_value=1, max_value=1 << 22))
    @settings(max_examples=40, deadline=None)
    def test_service_monotone_in_size(self, size):
        dram = DramModel()
        small = dram.service_cycles(DramRequest(bytes=size))
        big = dram.service_cycles(DramRequest(bytes=size + 64))
        assert big >= small


class TestTimeline:
    def test_fcfs_serialisation(self):
        t = Timeline("x")
        _, done1 = t.acquire(0.0, 10.0)
        start2, done2 = t.acquire(5.0, 10.0)
        assert done1 == 10.0
        assert start2 == 10.0 and done2 == 20.0
        assert t.busy == 20.0 and t.served == 2

    def test_idle_gap(self):
        t = Timeline("x")
        t.acquire(0.0, 5.0)
        start, _ = t.acquire(100.0, 5.0)
        assert start == 100.0
        assert t.utilization(105.0) == pytest.approx(10.0 / 105.0)

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            Timeline("x").acquire(0.0, -1.0)

    def test_utilization_bounds(self):
        t = Timeline("x")
        t.acquire(0.0, 10.0)
        assert t.utilization(0.0) == 0.0
        assert t.utilization(5.0) == 1.0  # clamped


class TestCycleSim:
    def test_agrees_with_analytical_within_bounds(self, wl90):
        """The event-driven makespan and the analytical model must agree
        within a small constant factor (they model the same machine at
        different granularities)."""
        event = CycleAccurateSimulator().simulate_layer(wl90)
        analytic = ViTCoDAccelerator().simulate_attention_layer(wl90)
        ratio = event.makespan / analytic.cycles
        assert 0.5 < ratio < 4.0

    def test_tracks_analytical_across_sparsity(self, wl90, wl70):
        """Both simulators must move the same way with sparsity."""
        ev = CycleAccurateSimulator()
        an = ViTCoDAccelerator()
        ev_gain = (ev.simulate_layer(wl70).makespan
                   / ev.simulate_layer(wl90).makespan)
        an_gain = (an.simulate_attention_layer(wl70).cycles
                   / an.simulate_attention_layer(wl90).cycles)
        assert ev_gain > 1.5 and an_gain > 1.5

    def test_ae_helps_in_event_sim(self, wl90):
        with_ae = CycleAccurateSimulator(use_ae=True).simulate_layer(wl90)
        without = CycleAccurateSimulator(use_ae=False).simulate_layer(wl90)
        assert with_ae.makespan < without.makespan

    def test_utilizations_bounded(self, wl90):
        r = CycleAccurateSimulator().simulate_layer(wl90)
        for u in (r.denser_utilization, r.sparser_utilization,
                  r.dram_utilization):
            assert 0.0 <= u <= 1.0

    def test_engines_overlap(self, wl90):
        """Two-pronged execution: total engine busy time exceeds the SDDMM
        makespan, i.e. the engines genuinely ran in parallel."""
        r = CycleAccurateSimulator().simulate_layer(wl90)
        assert r.denser_busy + r.sparser_busy > 0
        assert r.sddmm_makespan < r.denser_busy + r.sparser_busy + (
            r.makespan  # degenerate guard for tiny workloads
        )

    def test_job_count_matches_columns(self):
        wl = synthetic_attention_workload(48, 2, 16, sparsity=0.8, seed=1)
        r = CycleAccurateSimulator().simulate_layer(wl)
        max_jobs = 2 * 48 + 2  # columns per head + q/v streams
        assert 2 < r.jobs_executed <= max_jobs

    def test_dense_workload_supported(self):
        wl = dense_attention_workload(32, 2, 16)
        r = CycleAccurateSimulator().simulate_layer(wl)
        assert r.makespan > 0
        assert r.sparser_busy == 0  # everything is a global column

    def test_multi_layer_accumulates(self, wl90):
        sim = CycleAccurateSimulator()
        one = sim.simulate_layer(wl90)
        three = sim.simulate_attention([wl90, wl90, wl90])
        assert three.makespan == pytest.approx(3 * one.makespan)
        assert three.jobs_executed == 3 * one.jobs_executed

    def test_empty_layer_list_raises(self):
        with pytest.raises(ValueError):
            CycleAccurateSimulator().simulate_attention([])

    def test_invalid_compression_raises(self):
        with pytest.raises(ValueError):
            CycleAccurateSimulator(ae_compression=0.0)

    def test_scaled_hardware_faster(self, wl90):
        from repro.hw import VITCOD_DEFAULT
        small = CycleAccurateSimulator().simulate_layer(wl90)
        big = CycleAccurateSimulator(
            config=VITCOD_DEFAULT.scaled(4)
        ).simulate_layer(wl90)
        assert big.makespan < small.makespan
