"""Tests for sparse storage formats and tiling (repro.formats)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats import (
    CSCMatrix,
    CSRMatrix,
    COOMatrix,
    TileGrid,
    fits_in_buffer,
    index_bytes,
    tile_1d,
    tiles_for_matmul,
)
from repro.sparsity import random_mask


def sample_mask(n=16, density=0.2, seed=0):
    return random_mask(n, density, seed=seed)[0]


class TestCSC:
    def test_roundtrip(self):
        dense = sample_mask()
        np.testing.assert_array_equal(
            CSCMatrix.from_dense(dense).to_dense(), dense
        )

    def test_nnz(self):
        dense = sample_mask(seed=1)
        assert CSCMatrix.from_dense(dense).nnz == dense.sum()

    def test_column_access(self):
        dense = np.zeros((5, 4), dtype=bool)
        dense[1, 2] = dense[3, 2] = True
        csc = CSCMatrix.from_dense(dense)
        np.testing.assert_array_equal(csc.column(2), [1, 3])
        assert len(csc.column(0)) == 0

    def test_column_nnz(self):
        dense = sample_mask(seed=2)
        csc = CSCMatrix.from_dense(dense)
        np.testing.assert_array_equal(csc.column_nnz(), dense.sum(axis=0))

    def test_column_order_sorted(self):
        dense = sample_mask(seed=3)
        csc = CSCMatrix.from_dense(dense)
        for j in range(dense.shape[1]):
            col = csc.column(j)
            assert (np.diff(col) > 0).all() if len(col) > 1 else True

    def test_index_bytes_wider_rows(self):
        small = CSCMatrix.from_dense(np.ones((100, 4), dtype=bool))
        large = CSCMatrix.from_dense(np.ones((300, 4), dtype=bool))
        # 300 rows need 2-byte row indices.
        assert large.index_bytes() > 2 * small.index_bytes()

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_dense(np.zeros((2, 2, 2)))


class TestCSR:
    def test_roundtrip(self):
        dense = sample_mask(seed=4)
        np.testing.assert_array_equal(
            CSRMatrix.from_dense(dense).to_dense(), dense
        )

    def test_row_access(self):
        dense = np.zeros((4, 5), dtype=bool)
        dense[2, 1] = dense[2, 4] = True
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.row(2), [1, 4])

    def test_row_nnz(self):
        dense = sample_mask(seed=5)
        np.testing.assert_array_equal(
            CSRMatrix.from_dense(dense).row_nnz(), dense.sum(axis=1)
        )

    def test_csr_csc_transpose_duality(self):
        dense = sample_mask(seed=6)
        csr = CSRMatrix.from_dense(dense)
        csc = CSCMatrix.from_dense(dense.T)
        np.testing.assert_array_equal(csr.to_dense(), csc.to_dense().T)


class TestCOO:
    def test_roundtrip(self):
        dense = sample_mask(seed=7)
        np.testing.assert_array_equal(
            COOMatrix.from_dense(dense).to_dense(), dense
        )

    def test_nnz(self):
        dense = sample_mask(seed=8)
        assert COOMatrix.from_dense(dense).nnz == dense.sum()

    def test_coo_costs_more_than_csc_on_vit_masks(self):
        # The paper picks CSC over COO (§V-B.1); for our diagonal-ish masks
        # with enough non-zeros per column, CSC's pointer array amortises.
        from repro.sparsity import synthetic_vit_attention, split_and_conquer
        maps = synthetic_vit_attention(197, num_heads=1, seed=0)
        res = split_and_conquer(maps, target_sparsity=0.9)
        sparser = res.partitions[0].sparser_mask
        assert index_bytes(sparser, "csc") < index_bytes(sparser, "coo")


class TestIndexBytesHelper:
    def test_all_formats(self):
        dense = sample_mask(seed=9)
        for fmt in ("csc", "csr", "coo"):
            assert index_bytes(dense, fmt) > 0

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            index_bytes(sample_mask(), "ellpack")


class TestHypothesisRoundtrip:
    @given(
        rows=st.integers(min_value=1, max_value=20),
        cols=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=1000),
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_formats_roundtrip(self, rows, cols, seed, density):
        rng = np.random.default_rng(seed)
        dense = rng.random((rows, cols)) < density
        for cls in (CSCMatrix, CSRMatrix, COOMatrix):
            sparse = cls.from_dense(dense)
            np.testing.assert_array_equal(sparse.to_dense(), dense)
            assert sparse.nnz == dense.sum()


class TestTiling:
    def test_exact_division(self):
        grid = tile_1d(12, 4)
        assert grid.count == 3
        assert grid.sizes() == [4, 4, 4]

    def test_remainder(self):
        grid = tile_1d(10, 4)
        assert grid.count == 3
        assert grid.sizes() == [4, 4, 2]
        assert grid.last_tile == 2

    def test_empty(self):
        grid = tile_1d(0, 4)
        assert grid.count == 0
        assert grid.sizes() == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            TileGrid(total=4, tile=0)
        with pytest.raises(ValueError):
            TileGrid(total=-1, tile=2)

    def test_tiles_for_matmul(self):
        assert tiles_for_matmul(8, 8, 8, 4, 4, 4) == 8

    def test_fits_in_buffer(self):
        assert fits_in_buffer(100, 2, 200)
        assert not fits_in_buffer(101, 2, 200)

    @given(
        total=st.integers(min_value=0, max_value=10_000),
        tile=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_sizes_sum_to_total(self, total, tile):
        grid = tile_1d(total, tile)
        assert sum(grid.sizes()) == total
        assert all(0 < s <= tile for s in grid.sizes())
