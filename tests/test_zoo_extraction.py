"""Tests for the model zoo training loops and attention extraction."""

import numpy as np
import pytest

from repro.models import (
    evaluate_classifier,
    extract_average_attention,
    normalize_rows,
    pretrained,
)
from repro.models.zoo import _ZOO_CACHE


class TestPretrained:
    def test_training_beats_chance(self, tiny_vit):
        # 3 classes -> chance is 1/3; the trained model must do much better.
        assert tiny_vit.test_accuracy > 0.7

    def test_loss_decreases(self, tiny_vit):
        losses = [h["loss"] for h in tiny_vit.history]
        assert losses[-1] < losses[0]

    def test_memoised(self):
        kwargs = dict(num_samples=192, num_classes=3)
        before = len(_ZOO_CACHE)
        a = pretrained("deit-tiny", epochs=3, dataset_kwargs=kwargs)
        after = len(_ZOO_CACHE)
        b = pretrained("deit-tiny", epochs=3, dataset_kwargs=kwargs)
        assert len(_ZOO_CACHE) == after  # second call hit the cache
        # Fresh copies: same weights, distinct objects.
        assert a.model is not b.model
        np.testing.assert_allclose(
            a.model.embed.weight.data, b.model.embed.weight.data
        )

    def test_fresh_copy_isolated(self):
        kwargs = dict(num_samples=192, num_classes=3)
        a = pretrained("deit-tiny", epochs=3, dataset_kwargs=kwargs)
        a.model.embed.weight.data[:] = 0.0
        b = pretrained("deit-tiny", epochs=3, dataset_kwargs=kwargs)
        assert not np.allclose(b.model.embed.weight.data, 0.0)

    def test_levit_trains(self, tiny_levit):
        assert tiny_levit.test_accuracy > 0.6

    def test_pose_model_trains(self):
        res = pretrained("strided-transformer", epochs=4,
                         dataset_kwargs=dict(num_samples=96))
        losses = [h["loss"] for h in res.history]
        assert losses[-1] < losses[0]
        test_losses = [h["test_loss"] for h in res.history]
        assert test_losses[-1] < test_losses[0]

    def test_evaluate_classifier(self, tiny_vit):
        x_tr, y_tr, x_te, y_te = tiny_vit.dataset.split()
        loss, acc = evaluate_classifier(tiny_vit.model, x_te, y_te)
        assert 0.0 <= acc <= 1.0 and loss >= 0.0
        assert acc == pytest.approx(tiny_vit.test_accuracy)


class TestExtraction:
    def test_shapes(self, tiny_vit):
        maps = extract_average_attention(tiny_vit.model,
                                         tiny_vit.dataset.x[:64])
        assert len(maps) == len(tiny_vit.model.blocks)
        n = tiny_vit.model.num_tokens
        for m in maps:
            assert m.shape == (4, n, n)

    def test_rows_are_distributions(self, tiny_vit):
        maps = extract_average_attention(tiny_vit.model,
                                         tiny_vit.dataset.x[:32])
        for m in maps:
            np.testing.assert_allclose(m.sum(axis=-1), 1.0, atol=1e-8)

    def test_recording_flag_restored(self, tiny_vit):
        attns = tiny_vit.model.attention_modules()
        extract_average_attention(tiny_vit.model, tiny_vit.dataset.x[:16])
        assert all(not a.record_attention for a in attns)

    def test_batching_equivalent(self, tiny_vit):
        x = tiny_vit.dataset.x[:48]
        a = extract_average_attention(tiny_vit.model, x, batch_size=16)
        b = extract_average_attention(tiny_vit.model, x, batch_size=48)
        for ma, mb in zip(a, b):
            np.testing.assert_allclose(ma, mb, atol=1e-12)

    def test_empty_input_raises(self, tiny_vit):
        with pytest.raises(ValueError):
            extract_average_attention(tiny_vit.model,
                                      tiny_vit.dataset.x[:0])

    def test_trained_attention_attends_to_salient_patches(self, tiny_vit):
        """The paper's premise: trained ViTs develop global tokens.  Our
        model trained on data with salient patches should attend to the
        corresponding columns more than to average columns."""
        maps = extract_average_attention(tiny_vit.model,
                                         tiny_vit.dataset.x[:128])
        salient_cols = tiny_vit.dataset.salient_positions + 1  # CLS offset
        ratios = []
        for m in maps:
            col_mass = m.sum(axis=(0, 1))
            salient = col_mass[salient_cols].mean()
            other = np.delete(col_mass, salient_cols).mean()
            ratios.append(salient / other)
        # Not every layer specialises, but at least one develops clear
        # global-token columns over the salient patches.
        assert max(ratios) > 1.15

    def test_normalize_rows(self):
        a = np.array([[2.0, 2.0], [0.0, 0.0]])
        out = normalize_rows(a)
        np.testing.assert_allclose(out[0], [0.5, 0.5])
        np.testing.assert_allclose(out[1], [0.0, 0.0])  # guarded zero row
