"""Tests for the AE module, joint training, and the unified pipeline."""

import numpy as np
import pytest

from repro.autoencoder import (
    HeadAutoEncoder,
    attach_autoencoders,
    default_ae_factory,
    finetune_with_autoencoder,
    reconstruction_term,
    run_vitcod_pipeline,
)
from repro.models import build_vit, get_config, pretrained
from repro.nn import SyntheticPatchDataset, Tensor


class TestHeadAutoEncoder:
    def test_shapes(self, rng):
        ae = HeadAutoEncoder(12, compression=0.5, rng=rng)
        x = Tensor(rng.standard_normal((2, 12, 8, 16)))
        z = ae.encode(x)
        assert z.shape == (2, 6, 8, 16)
        out = ae.decode(z)
        assert out.shape == (2, 12, 8, 16)

    def test_forward_is_decode_encode(self, rng):
        ae = HeadAutoEncoder(6, compression=0.5, rng=rng)
        x = Tensor(rng.standard_normal((6, 4, 8)))
        np.testing.assert_allclose(
            ae(x).data, ae.decode(ae.encode(x)).data
        )

    def test_compression_ratio_rounding(self):
        ae = HeadAutoEncoder(12, compression=0.5)
        assert ae.compressed_heads == 6
        ae3 = HeadAutoEncoder(3, compression=0.5)
        assert ae3.compressed_heads == 2  # round(1.5) = 2

    def test_min_one_compressed_head(self):
        ae = HeadAutoEncoder(4, compression=0.01)
        assert ae.compressed_heads == 1

    def test_invalid_compression(self):
        with pytest.raises(ValueError):
            HeadAutoEncoder(4, compression=0.0)
        with pytest.raises(ValueError):
            HeadAutoEncoder(4, compression=1.5)

    def test_pinv_init_projects(self, rng):
        """Decode∘encode at init is the best rank-Hc projection: applying it
        twice equals applying it once (idempotent)."""
        ae = HeadAutoEncoder(8, compression=0.5, rng=rng)
        x = Tensor(rng.standard_normal((8, 5, 4)))
        once = ae(x).data
        twice = ae(Tensor(once)).data
        np.testing.assert_allclose(once, twice, atol=1e-10)

    def test_redundant_heads_recoverable_at_init(self, rng):
        """If heads truly live in an Hc-dim subspace (the paper's
        hypothesis), the pinv-initialised AE can recover them exactly
        after fitting the encoder to that subspace."""
        coeff = rng.standard_normal((8, 4))  # heads = coeff @ latent
        ae = HeadAutoEncoder(8, compression=0.5)
        ae.enc_weight.data = np.linalg.pinv(coeff).T  # encode -> latent
        ae.dec_weight.data = coeff.T  # decode -> heads
        x_heads = np.einsum("hc,cnd->hnd", coeff,
                            rng.standard_normal((4, 6, 5)))
        out = ae(Tensor(x_heads)).data
        np.testing.assert_allclose(out, x_heads, atol=1e-8)

    def test_traffic_ratio(self):
        assert HeadAutoEncoder(12, 0.5).traffic_ratio == pytest.approx(0.5)

    def test_macs_per_token(self):
        ae = HeadAutoEncoder(12, 0.5)
        assert ae.macs_per_token(64) == 2 * 12 * 6 * 64

    def test_weight_footprint_tiny(self):
        ae = HeadAutoEncoder(12, 0.5)
        assert ae.weight_footprint() == 2 * 12 * 6  # 144 weights

    def test_factory_seeds_differ_per_layer(self):
        factory = default_ae_factory(seed=0)
        a = factory(4, 8)
        b = factory(4, 8)
        assert not np.allclose(a.enc_weight.data, b.enc_weight.data)


class TestJointTraining:
    @pytest.fixture(scope="class")
    def small_setup(self):
        dataset = SyntheticPatchDataset(num_tokens=16, num_samples=128,
                                        num_classes=3, seed=0)
        model = build_vit(get_config("deit-tiny"), patch_dim=dataset.patch_dim,
                          num_classes=3, seed=0)
        return model, dataset

    def test_reconstruction_term_requires_forward(self, small_setup):
        _, dataset = small_setup
        fresh = build_vit(get_config("deit-tiny"),
                          patch_dim=dataset.patch_dim, num_classes=3)
        attach_autoencoders(fresh, seed=0)
        with pytest.raises(RuntimeError):
            reconstruction_term(fresh)  # no forward pass yet

    def test_reconstruction_term_positive(self, small_setup):
        model, dataset = small_setup
        attach_autoencoders(model, seed=0)
        model(dataset.x[:4])
        term = reconstruction_term(model)
        assert term.item() > 0

    def test_finetune_reduces_recon_loss(self):
        # Fig. 9b: inserting AEs into a *pretrained* model and finetuning
        # jointly drives the reconstruction loss down while accuracy holds.
        pre = pretrained("deit-tiny", epochs=3,
                         dataset_kwargs=dict(num_samples=192, num_classes=3))
        result = finetune_with_autoencoder(
            pre.model, pre.dataset, baseline_accuracy=pre.test_accuracy,
            epochs=3, seed=0,
        )
        assert result.recon_losses[-1] < result.recon_losses[0]
        assert result.final_accuracy >= pre.test_accuracy - 0.1
        assert len(result.history) == 3
        assert result.epochs == [0, 1, 2]


class TestUnifiedPipeline:
    @pytest.fixture(scope="class")
    def pipeline_result(self):
        pre = pretrained("deit-tiny", epochs=3,
                         dataset_kwargs=dict(num_samples=192, num_classes=3))
        return run_vitcod_pipeline(
            pre, target_sparsity=0.75, compression=0.5,
            ae_epochs=2, mask_epochs=2, seed=0,
        )

    def test_sparsity_achieved(self, pipeline_result):
        assert abs(pipeline_result.achieved_sparsity - 0.75) < 0.05

    def test_masks_installed_and_fixed(self, pipeline_result):
        model = pipeline_result.model
        for block, layer_res in zip(model.blocks,
                                    pipeline_result.layer_results):
            np.testing.assert_array_equal(
                block.attn.attention_mask, layer_res.mask
            )

    def test_accuracy_mostly_restored(self, pipeline_result):
        # Paper claim: <1% drop at high sparsity after finetuning.  Our tiny
        # model on synthetic data should stay within a few points.
        assert pipeline_result.final_accuracy >= (
            pipeline_result.baseline_accuracy - 0.10
        )

    def test_global_tokens_found(self, pipeline_result):
        # The dataset has salient patches; at least some layers should mark
        # global tokens.
        total = sum(int(n.sum()) for n in pipeline_result.num_global_tokens)
        assert total > 0

    def test_histories_recorded(self, pipeline_result):
        assert len(pipeline_result.ae_history) == 2
        assert len(pipeline_result.mask_history) == 2

    def test_sc_only_pipeline_skips_ae(self):
        pre = pretrained("deit-tiny", epochs=3,
                         dataset_kwargs=dict(num_samples=192, num_classes=3))
        result = run_vitcod_pipeline(
            pre, target_sparsity=0.75, compression=None,
            ae_epochs=1, mask_epochs=1, seed=0,
        )
        assert result.ae_history == []
        assert result.compression == 1.0
