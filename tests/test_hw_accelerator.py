"""Tests for the ViTCoD accelerator simulator (repro.hw.accelerator)."""

import pytest

from repro.hw import (
    GemmWorkload,
    ViTCoDAccelerator,
    dense_attention_workload,
    model_workload,
    synthetic_attention_workload,
)
from repro.models import get_config


@pytest.fixture(scope="module")
def wl90():
    return synthetic_attention_workload(197, 12, 64, sparsity=0.9, seed=7)


@pytest.fixture(scope="module")
def wl70():
    return synthetic_attention_workload(197, 12, 64, sparsity=0.7, seed=7)


class TestConstruction:
    def test_defaults(self):
        acc = ViTCoDAccelerator()
        assert acc.config.total_macs == 512
        assert acc.use_ae and acc.two_pronged

    def test_invalid_dataflow(self):
        with pytest.raises(ValueError):
            ViTCoDAccelerator(dataflow="row_stationary")

    def test_invalid_compression(self):
        with pytest.raises(ValueError):
            ViTCoDAccelerator(ae_compression=0.0)

    def test_invalid_forwarding(self):
        with pytest.raises(ValueError):
            ViTCoDAccelerator(q_forwarding_hit_rate=1.0)


class TestAttentionLayer:
    def test_report_structure(self, wl90):
        r = ViTCoDAccelerator().simulate_attention_layer(wl90)
        assert r.cycles > 0
        assert r.energy_pj > 0
        assert r.latency.preprocess > 0  # CSC index preload
        assert "sddmm_compute" in r.details

    def test_sparser_workload_faster(self, wl90, wl70):
        acc = ViTCoDAccelerator()
        t90 = acc.simulate_attention_layer(wl90).cycles
        t70 = acc.simulate_attention_layer(wl70).cycles
        assert t90 < t70

    def test_dense_much_slower_than_90(self, wl90):
        acc = ViTCoDAccelerator(use_ae=False)
        dense = acc.simulate_attention_layer(
            dense_attention_workload(197, 12, 64)
        ).cycles
        sparse = acc.simulate_attention_layer(wl90).cycles
        assert dense > 4 * sparse  # paper: up to ~8x at 90% (§VI-C)

    def test_ae_reduces_latency_and_traffic(self, wl90):
        with_ae = ViTCoDAccelerator().simulate_attention_layer(wl90)
        without = ViTCoDAccelerator(use_ae=False).simulate_attention_layer(wl90)
        assert with_ae.cycles < without.cycles
        assert with_ae.details["dram_bytes"] < without.details["dram_bytes"]

    def test_ae_charges_decoder_macs(self, wl90):
        with_ae = ViTCoDAccelerator().simulate_attention_layer(wl90)
        without = ViTCoDAccelerator(use_ae=False).simulate_attention_layer(wl90)
        assert with_ae.details["mac_count"] > without.details["mac_count"]

    def test_two_pronged_beats_single_engine(self, wl90):
        two = ViTCoDAccelerator(use_ae=False).simulate_attention_layer(wl90)
        one = ViTCoDAccelerator(
            use_ae=False, two_pronged=False
        ).simulate_attention_layer(wl90)
        assert two.cycles <= one.cycles

    def test_k_stationary_beats_s_stationary(self, wl90):
        k = ViTCoDAccelerator().simulate_attention_layer(wl90)
        s = ViTCoDAccelerator(
            dataflow="s_stationary"
        ).simulate_attention_layer(wl90)
        assert k.details["sddmm_compute"] <= s.details["sddmm_compute"]

    def test_q_forwarding_reduces_traffic(self, wl90):
        no_fwd = ViTCoDAccelerator(q_forwarding_hit_rate=0.0)
        fwd = ViTCoDAccelerator(q_forwarding_hit_rate=0.5)
        assert (fwd.simulate_attention_layer(wl90).details["dram_bytes"]
                <= no_fwd.simulate_attention_layer(wl90).details["dram_bytes"])

    def test_breakdown_fractions_valid(self, wl90):
        r = ViTCoDAccelerator().simulate_attention_layer(wl90)
        fracs = r.latency.fractions()
        assert all(0.0 <= v <= 1.0 for v in fracs.values())
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_bigger_config_faster(self, wl90):
        small = ViTCoDAccelerator()
        big = ViTCoDAccelerator(config=small.config.scaled(4))
        assert (big.simulate_attention_layer(wl90).seconds
                < small.simulate_attention_layer(wl90).seconds)


class TestGemm:
    def test_gemm_report(self):
        acc = ViTCoDAccelerator()
        r = acc.simulate_gemm(GemmWorkload("fc1", 197, 768, 3072))
        assert r.cycles > 0
        assert r.latency.compute > 0

    def test_qkv_compression_reduces_writeback(self):
        acc = ViTCoDAccelerator()
        g = GemmWorkload("l0.qkv", 197, 768, 2304)
        plain = acc.simulate_gemm(g, compress_output=False)
        compressed = acc.simulate_gemm(g, compress_output=True)
        assert (compressed.details["dram_bytes"] < plain.details["dram_bytes"])

    def test_no_compression_without_ae(self):
        acc = ViTCoDAccelerator(use_ae=False)
        g = GemmWorkload("l0.qkv", 64, 64, 192)
        a = acc.simulate_gemm(g, compress_output=True)
        b = acc.simulate_gemm(g, compress_output=False)
        assert a.details["dram_bytes"] == b.details["dram_bytes"]


class TestModelSimulation:
    def test_attention_sums_layers(self):
        wl = model_workload(get_config("deit-tiny"), sparsity=0.9)
        acc = ViTCoDAccelerator()
        total = acc.simulate_attention(wl)
        per_layer = sum(
            acc.simulate_attention_layer(l).cycles
            for l in wl.attention_layers
        )
        assert total.cycles == pytest.approx(per_layer)

    def test_end2end_exceeds_attention(self):
        wl = model_workload(get_config("deit-tiny"), sparsity=0.9)
        acc = ViTCoDAccelerator()
        assert (acc.simulate_model(wl).cycles
                > acc.simulate_attention(wl).cycles)

    def test_deit_base_attention_sub_millisecond(self):
        # Sanity anchor: DeiT-Base attention at 90% sparsity lands well
        # under a millisecond on the 512-MAC design (paper's speedups over
        # a ~70ms CPU imply a few hundred microseconds).
        wl = model_workload(get_config("deit-base"), sparsity=0.9)
        r = ViTCoDAccelerator().simulate_attention(wl)
        assert 50e-6 < r.seconds < 2e-3

    def test_monotone_in_sparsity(self):
        acc = ViTCoDAccelerator()
        cfg = get_config("deit-small")
        times = [
            acc.simulate_attention(model_workload(cfg, sparsity=s)).seconds
            for s in (0.6, 0.7, 0.8, 0.9)
        ]
        assert times == sorted(times, reverse=True)

    def test_energy_monotone_in_sparsity(self):
        acc = ViTCoDAccelerator()
        cfg = get_config("deit-small")
        energies = [
            acc.simulate_attention(model_workload(cfg, sparsity=s)).energy_pj
            for s in (0.6, 0.9)
        ]
        assert energies[1] < energies[0]
