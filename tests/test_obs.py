"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Four load-bearing promises: the disabled default registry is a true
no-op that never alters results; the Prometheus rendering is valid text
exposition format a scraper can parse; per-job ``events.jsonl`` streams
survive torn tails like the dist store ledgers do; and the ``/metrics``
and ``/jobs/<id>/events`` endpoints serve real telemetry from a served
study.  Plus the ``store_status`` ETA edge cases this PR's progress
metadata introduced: legacy untimestamped stores, zero-throughput
shards, and all-failed shards.
"""

import json
import logging
import math
import re
import threading
import urllib.request

import pytest

from repro import obs
from repro.cli import _format_eta
from repro.dist import (
    ResultStore,
    ShardSpec,
    model_workload_spec,
    run_shard,
    store_status,
)
from repro.harness.dse import sweep_design_space
from repro.obs import (
    ChromeTrace,
    EventLog,
    EventLogError,
    Registry,
    render_metrics,
    tracing,
)
from repro.obs.registry import NOOP_METRIC, NOOP_SPAN
from repro.perf import cached_model_workload
from repro.serve import JobManager, ServeClient, ServeError, serving
from repro.sim.evaluator import AnalyticalEvaluator

GRID = {"mac_lines": (16, 32, 64), "ae_compression": (None, 0.5)}
SPEC = model_workload_spec("deit-tiny", sparsity=0.9)
SERVE_GRID = {"mac_lines": [16, 32], "ae_compression": [None, 0.5]}


@pytest.fixture(scope="module")
def workload():
    return cached_model_workload("deit-tiny", sparsity=0.9)


# ----------------------------------------------------------------------
# Registry primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_get_or_create_and_inc(self):
        r = Registry()
        c = r.counter("points", help="points scored")
        assert r.counter("points") is c
        c.inc()
        c.inc(4)
        assert r.value("points") == 5
        assert c.help == "points scored"

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Registry().counter("c").inc(-1)

    def test_labels_are_separate_series(self):
        r = Registry()
        r.counter("req", route="/jobs").inc()
        r.counter("req", route="/health").inc(2)
        # Label order must not matter for the series key.
        r.counter("req", status="200", route="/jobs")
        assert r.counter("req", route="/jobs", status="200") is r.get(
            "req", status="200", route="/jobs"
        )
        assert r.value("req", route="/jobs") == 1
        assert r.value("req", route="/health") == 2
        assert r.value("req") is None  # the unlabelled series was never touched

    def test_gauge_goes_both_ways(self):
        g = Registry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_kind_conflict_raises(self):
        r = Registry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered as a counter"):
            r.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            r.histogram("x", route="/jobs")

    def test_disabled_registry_is_inert(self):
        r = Registry(enabled=False)
        assert r.counter("c") is NOOP_METRIC
        assert r.gauge("g") is NOOP_METRIC
        assert r.histogram("h") is NOOP_METRIC
        assert r.span("s") is NOOP_SPAN
        r.counter("c").inc(99)  # absorbed, nothing registered
        assert r.get("c") is None
        assert r.snapshot() == {}
        assert render_metrics(r) == ""  # nothing registered, nothing rendered

    def test_default_registry_swap_is_scoped(self):
        before = obs.get_registry()
        with obs.use_registry(Registry(enabled=True)) as fresh:
            assert obs.get_registry() is fresh
            obs.counter("scoped").inc()
            assert fresh.value("scoped") == 1
        assert obs.get_registry() is before
        assert before.get("scoped") is None

    def test_counter_is_thread_safe(self):
        c = Registry().counter("hits")

        def hammer():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_empty_histogram(self):
        h = Registry().histogram("lat")
        assert h.count == 0 and h.sum == 0.0
        assert h.quantile(0.5) is None
        assert h.summary()["p99"] is None

    def test_cumulative_buckets_end_at_total(self):
        h = Registry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0, 100.0):
            h.observe(value)
        cumulative = h.cumulative_buckets()
        assert cumulative == [(1.0, 2), (2.0, 3), (4.0, 4), (math.inf, 5)]
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)  # cumulative is monotone
        assert cumulative[-1] == (math.inf, h.count)

    def test_quantile_interpolates_within_a_bucket(self):
        h = Registry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            h.observe(value)
        # p50 lands exactly at the first bucket's upper bound ...
        assert h.quantile(0.5) == pytest.approx(1.0)
        # ... and p100 at the second's.
        assert h.quantile(1.0) == pytest.approx(2.0)
        assert h.quantile(0.75) == pytest.approx(1.5)

    def test_quantile_saturates_in_the_inf_bucket(self):
        h = Registry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(50.0)  # beyond every finite bound
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            Registry().histogram("lat").quantile(1.5)

    def test_summary_shape(self):
        h = Registry().histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        summary = h.summary()
        assert set(summary) == {"count", "sum", "p50", "p95", "p99"}
        assert summary["count"] == 1 and summary["sum"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_LINE = re.compile(
    rf'^({_NAME})(\{{{_NAME}="(?:[^"\\\n]|\\.)*"'
    rf'(?:,{_NAME}="(?:[^"\\\n]|\\.)*")*\}})? (\S+)$'
)


def parse_prometheus(text):
    """A scraper-shaped mini-parser: asserts the format, returns samples.

    Returns ``(types, samples)`` where ``types`` maps family name to
    kind and ``samples`` maps the full sample line key (name plus label
    text) to its float value.
    """
    assert text.endswith("\n"), "exposition text must be newline-terminated"
    types, samples = {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram")
            types[name] = kind
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        samples[f"{match.group(1)}{match.group(2) or ''}"] = float(match.group(3))
    return types, samples


class TestPrometheusRender:
    def _populated(self):
        r = Registry()
        r.counter("req_total", help="requests", route="/jobs", status="200").inc(3)
        r.counter("req_total", route="/health", status="200").inc()
        r.gauge("chunk_size").set(24)
        h = r.histogram("req_seconds", help="latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return r

    def test_render_is_parseable_and_complete(self):
        types, samples = parse_prometheus(render_metrics(self._populated()))
        assert types == {
            "req_total": "counter",
            "chunk_size": "gauge",
            "req_seconds": "histogram",
        }
        assert samples['req_total{route="/jobs",status="200"}'] == 3
        assert samples['req_total{route="/health",status="200"}'] == 1
        assert samples["chunk_size"] == 24
        assert samples['req_seconds_bucket{le="0.1"}'] == 1
        assert samples['req_seconds_bucket{le="1.0"}'] == 2
        assert samples['req_seconds_bucket{le="+Inf"}'] == 3
        assert samples["req_seconds_count"] == 3
        assert samples["req_seconds_sum"] == pytest.approx(5.55)

    def test_inf_bucket_matches_count(self):
        text = render_metrics(self._populated())
        _, samples = parse_prometheus(text)
        assert (
            samples['req_seconds_bucket{le="+Inf"}'] == samples["req_seconds_count"]
        )

    def test_help_and_type_lines(self):
        text = render_metrics(self._populated())
        assert "# HELP req_total requests\n# TYPE req_total counter\n" in text
        assert "# TYPE chunk_size gauge" in text

    def test_label_values_are_escaped(self):
        r = Registry()
        r.counter("c", path='a"b\\c\nd').inc()
        text = render_metrics(r)
        assert 'c{path="a\\"b\\\\c\\nd"} 1' in text
        parse_prometheus(text)  # still a valid sample line


# ----------------------------------------------------------------------
# Spans and Chrome traces
# ----------------------------------------------------------------------
class TestSpansAndTraces:
    def test_span_feeds_a_latency_histogram(self):
        r = Registry()
        with r.span("merge"):
            pass
        h = r.get("merge_seconds")
        assert h is not None and h.count == 1
        assert h.sum >= 0.0

    def test_span_records_trace_event_with_args(self):
        r = Registry()
        with tracing(registry=r) as tracer:
            with r.span("sweep", points=6):
                pass
        assert r.tracer is None  # restored on exit
        (event,) = tracer.events
        assert event["ph"] == "X" and event["name"] == "sweep"
        assert event["dur"] > 0 and event["ts"] >= 0
        assert event["args"] == {"points": 6}

    def test_tracing_works_on_a_disabled_registry(self):
        """--trace must not silently enable metrics collection."""
        r = Registry(enabled=False)
        with tracing(registry=r) as tracer:
            with r.span("sweep"):
                pass
        assert len(tracer.events) == 1
        assert r.get("sweep_seconds") is None  # metrics stayed off

    def test_trace_file_is_perfetto_shaped(self, tmp_path):
        r = Registry()
        out = tmp_path / "trace.json"
        with tracing(path=out, registry=r) as tracer:
            with r.span("outer"):
                with r.span("inner"):
                    pass
            tracer.add_instant("marker", args={"k": 1})
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "X", "i"]  # ts-sorted
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)
        assert all({"pid", "tid", "cat"} <= set(e) for e in events)

    def test_collector_is_thread_safe(self):
        tracer = ChromeTrace()

        def emit():
            for _ in range(200):
                tracer.add_instant("tick")

        threads = [threading.Thread(target=emit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.events) == 800


# ----------------------------------------------------------------------
# Durable event streams
# ----------------------------------------------------------------------
class TestEventLog:
    def test_round_trip_and_len(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        assert log.read() == []  # missing stream reads empty
        log.append({"event": "submitted", "t": 1.0})
        log.append({"event": "done", "t": 2.0})
        assert [e["event"] for e in log.read()] == ["submitted", "done"]
        assert len(log) == 2

    def test_read_tolerates_a_torn_final_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.append({"event": "a"})
        log.append({"event": "b"})
        whole = path.read_bytes()
        path.write_bytes(whole + b'{"event": "torn')
        assert [e["event"] for e in log.read()] == ["a", "b"]

    def test_append_truncates_a_garbage_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.append({"event": "a"})
        path.write_bytes(path.read_bytes() + b'{"event": "to')
        log.append({"event": "b"})
        assert [e["event"] for e in log.read()] == ["a", "b"]
        assert path.read_bytes().endswith(b"\n")

    def test_append_terminates_a_complete_json_tail(self, tmp_path):
        """A tail that parses lost only its newline — keep the record."""
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.append({"event": "a"})
        path.write_bytes(path.read_bytes() + b'{"event": "b"}')
        log.append({"event": "c"})
        assert [e["event"] for e in log.read()] == ["a", "b", "c"]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.append({"event": "a"})
        log.append({"event": "b"})
        lines = path.read_bytes().split(b"\n")
        lines[0] = b"}{ not json"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(EventLogError, match="line 1"):
            log.read()


# ----------------------------------------------------------------------
# Logging and the DSE instrumentation
# ----------------------------------------------------------------------
class _FailingEvaluator:
    """Analytical scoring that poisons one mac_lines value (or all)."""

    name = "failing"

    def __init__(self, poison=None):
        self.inner = AnalyticalEvaluator()
        self.poison = poison

    def __call__(self, workload, config, accel_kwargs):
        if self.poison is None or config.num_mac_lines == self.poison:
            raise RuntimeError("poisoned point")
        return self.inner(workload, config, accel_kwargs)


class TestLoggingAndDseCounters:
    def test_logger_hierarchy(self):
        log = obs.get_logger("harness.dse")
        assert log.name == "repro.harness.dse"
        assert obs.get_logger("repro.dist").name == "repro.dist"

    def test_configure_logging_replaces_its_own_handler(self):
        root = obs.configure_logging()
        count = len(root.handlers)
        obs.configure_logging()  # a second --verbose boot never double-logs
        assert len(root.handlers) == count
        marked = [h for h in root.handlers if getattr(h, "_repro_obs_handler", False)]
        assert len(marked) == 1

    def test_dropped_points_log_and_count(self, workload, caplog):
        caplog.set_level(logging.WARNING, logger="repro")
        with obs.use_registry(Registry(enabled=True)) as r:
            with pytest.warns(RuntimeWarning, match="poisoned point"):
                points = sweep_design_space(
                    workload, GRID, evaluator=_FailingEvaluator(poison=32)
                )
        assert len(points) == 4  # 6 grid points, 2 poisoned
        assert r.value("dse_points_failed") == 2
        dropped = [
            rec
            for rec in caplog.records
            if rec.name == "repro.harness.dse" and "dropped" in rec.message
        ]
        assert len(dropped) == 2

    def test_sweep_counters_and_result_identity(self, workload):
        baseline = sweep_design_space(workload, GRID)
        with obs.use_registry(Registry(enabled=True)) as r:
            instrumented = sweep_design_space(workload, GRID)
        assert instrumented == baseline  # telemetry never alters results
        assert r.value("dse_points_scored") == 6
        assert r.value("dse_chunks_dispatched") >= 1
        assert r.get("dse_sweep_seconds").count == 1
        assert r.value("dse_points_failed") is None  # nothing failed


# ----------------------------------------------------------------------
# store_status ETA edge cases
# ----------------------------------------------------------------------
def _rewrite_records(path, mutate):
    """Apply ``mutate(record) -> record | None`` to each JSONL record."""
    out = []
    for line in path.read_text().splitlines():
        record = mutate(json.loads(line))
        if record is not None:
            out.append(json.dumps(record, sort_keys=True))
    path.write_text("".join(line + "\n" for line in out))


class TestStoreStatusEta:
    def _half_run_store(self, tmp_path, workload):
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/2", store, workload_spec=SPEC)
        return store, ResultStore(store).shard_path(ShardSpec(1, 2))

    def test_legacy_untimestamped_store_has_unknown_eta(
        self, tmp_path, workload
    ):
        """Stores from before records carried ``t`` render ETA ``?``."""
        store, shard_file = self._half_run_store(tmp_path, workload)
        kept = []

        def strip_t(record):
            record.pop("t", None)
            kept.append(record)
            return record if len(kept) < 3 else None  # drop the last record

        _rewrite_records(shard_file, strip_t)
        status = store_status(store)
        one = status.shards[0]
        assert one.done == 2 and one.pending == 1
        assert one.eta_seconds is None
        assert status.eta_seconds is None
        assert _format_eta(one.eta_seconds) == "?"

    def test_zero_throughput_shard_has_unknown_eta(self, tmp_path, workload):
        """Identical timestamps give no observable rate — ETA unknown."""
        store, shard_file = self._half_run_store(tmp_path, workload)
        kept = []

        def freeze_t(record):
            record["t"] = 1000.0
            kept.append(record)
            return record if len(kept) < 3 else None

        _rewrite_records(shard_file, freeze_t)
        one = store_status(store).shards[0]
        assert one.pending == 1 and one.eta_seconds is None
        assert _format_eta(one.eta_seconds) == "?"

    def test_complete_shard_eta_is_zero(self, tmp_path, workload):
        store, _ = self._half_run_store(tmp_path, workload)
        one = store_status(store).shards[0]
        assert one.complete and one.eta_seconds == 0.0
        assert _format_eta(one.eta_seconds) == "-"

    def test_all_failed_shard_is_complete_with_zero_eta(
        self, tmp_path, workload
    ):
        store = tmp_path / "store"
        result = run_shard(
            workload,
            GRID,
            "1/1",
            store,
            evaluator=_FailingEvaluator(),
            workload_spec=SPEC,
        )
        assert result.failed == 6
        status = store_status(store)
        one = status.shards[0]
        assert one.complete and one.done == one.total == 6
        assert one.failed == 6 and one.scored == 0
        assert one.eta_seconds == 0.0 and status.eta_seconds == 0.0
        assert status.fraction_scored == 0.0

    @pytest.mark.parametrize(
        "eta,text",
        [
            (None, "?"),
            (0.0, "-"),
            (-3.0, "-"),
            (0.4, "1s"),
            (5.0, "5s"),
            (90.0, "1m30s"),
            (3659.0, "1h00m"),
            (3725.0, "1h02m"),
            (7322.0, "2h02m"),
        ],
    )
    def test_format_eta(self, eta, text):
        assert _format_eta(eta) == text


# ----------------------------------------------------------------------
# The serve surfaces: events accessor, /metrics, /jobs/<id>/events
# ----------------------------------------------------------------------
def _request(**overrides):
    request = {"grid": SERVE_GRID, "evaluator": "analytical", "model": "deit-tiny"}
    request.update(overrides)
    return request


class TestServeTelemetry:
    def test_job_event_timeline(self, tmp_path):
        with obs.use_registry(Registry(enabled=True)) as r:
            manager = JobManager(tmp_path, workers=0)
            info = manager.submit(_request(n_shards=2))
            while manager.run_next():
                pass
            kinds = [e["event"] for e in manager.events(info["id"])]
            assert kinds[:3] == ["submitted", "queued", "running"]
            assert kinds[-2:] == ["merging", "done"]
            assert kinds.count("shard_started") == 2
            assert kinds.count("shard_finished") == 2
            again = manager.submit(_request(n_shards=2))
            assert again["cache_hit"] is True
            assert manager.events(info["id"])[-1]["event"] == "cache_hit"
            # Every record is timestamped and ordered.
            stamps = [e["t"] for e in manager.events(info["id"])]
            assert stamps == sorted(stamps)
            assert r.value("serve_job_transitions", state="done") == 1
            manager.stop()

    def test_events_endpoint_and_metrics_after_a_study(self, tmp_path):
        with obs.use_registry(Registry(enabled=True)):
            with serving(tmp_path / "data", workers=2) as server:
                client = ServeClient(server.url)
                info = client.submit(_request(n_shards=2))
                assert client.wait(info["id"], timeout=120)["state"] == "done"

                events = client.events(info["id"])
                assert events[0]["event"] == "submitted"
                assert events[-1]["event"] == "done"
                assert events[-1]["points"] == 4

                with pytest.raises(ServeError) as excinfo:
                    client.events("0" * 16)
                assert excinfo.value.status == 404

                with urllib.request.urlopen(
                    f"{server.url}/metrics", timeout=30
                ) as response:
                    assert (
                        response.headers["Content-Type"]
                        == "text/plain; version=0.0.4; charset=utf-8"
                    )
                    text = response.read().decode("utf-8")
                types, samples = parse_prometheus(text)
                assert types["serve_http_requests_total"] == "counter"
                assert types["serve_http_request_seconds"] == "histogram"
                assert samples["serve_jobs_completed"] == 1
                assert samples["serve_shards_run"] == 2
                assert samples["dse_points_scored"] == 4
                assert samples["dist_records_written"] == 4
                assert samples["dist_merges"] == 1
                assert samples['serve_job_transitions{state="done"}'] == 1
                route = 'route="/jobs/{id}",status="200"'
                key = f'serve_http_requests_total{{method="GET",{route}}}'
                assert samples[key] >= 1

    def test_second_metrics_scrape_sees_the_first(self, tmp_path):
        """/metrics is itself instrumented (one request behind)."""
        with obs.use_registry(Registry(enabled=True)):
            with serving(tmp_path / "data", workers=0) as server:
                client = ServeClient(server.url)
                first = client.metrics_text()
                assert 'route="/metrics"' not in first
                _, samples = parse_prometheus(client.metrics_text())
                key = (
                    'serve_http_requests_total{method="GET",'
                    'route="/metrics",status="200"}'
                )
                assert samples[key] == 1
