"""Chaos suite: a seeded fault storm must not change a single byte.

Each test runs a real supervised fleet (:func:`repro.dist.run_fleet` —
``dse-shard`` subprocesses with heartbeats, crash/hang relaunch) under a
deterministic fault plan, then asserts the merged study is **bit for
bit** identical to the healthy serial sweep's JSON document.  That is
the whole robustness contract in one assertion: retries, steal
takeovers, torn-tail repair and supervisor relaunches are allowed to
cost time, never correctness.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.dist import merge_store, run_fleet
from repro.harness.dse import sweep_design_space
from repro.harness.serialization import dse_result_payload, to_json
from repro.perf import cached_model_workload
from repro.sim.evaluator import resolve_evaluator

GRID = {"mac_lines": (16, 32, 64), "ae_compression": (None, 0.5)}
GRID_ARGS = ["--grid", "mac_lines=16,32,64", "--grid",
             "ae_compression=none,0.5"]

#: One storm, every failure mode: ~seeded transient errors on half the
#: points, one torn write, one fsync error, one SIGKILL after the second
#: durable record, and one 4s in-point hang (killed by --hang-after).
STORM = {
    "seed": 7,
    "evaluator_error_rate": 0.5,
    "torn_write": True,
    "fsync_error": True,
    "kill_after_records": 2,
}


def _healthy_json(model, evaluator_name):
    workload = cached_model_workload(model, sparsity=0.9)
    points = sweep_design_space(
        workload, GRID, evaluator=resolve_evaluator(evaluator_name)
    )
    return to_json(
        dse_result_payload(model, 0.9, evaluator_name, GRID, points)
    )


def _merged_json(store, model, evaluator_name):
    merged = merge_store(store)
    return to_json(dse_result_payload(
        model, 0.9, evaluator_name,
        {k: tuple(v) for k, v in merged.manifest["grid"].items()},
        list(merged.points),
    ))


def _storm_fleet(store, evaluator_name, storm, num_shards=3, hang_after=2.0):
    shard_args = [
        "--models", "deit-tiny", "--sparsity", "0.9",
        "--evaluator", evaluator_name, *GRID_ARGS,
        "--steal", "--claim-ttl", "2",
        "--faults", json.dumps(storm),
    ]
    env_root = str(Path(repro.__file__).parents[1])
    os.environ["PYTHONPATH"] = os.pathsep.join(
        [env_root] + ([os.environ["PYTHONPATH"]]
                      if "PYTHONPATH" in os.environ else [])
    )
    return run_fleet(
        store, num_shards, shard_args,
        hang_after=hang_after, max_restarts=5,
    )


@pytest.mark.parametrize("evaluator_name", ["analytical", "cycle", "hybrid"])
def test_storm_is_bit_identical_to_healthy_run(tmp_path, evaluator_name):
    store = tmp_path / "store"
    fleet = _storm_fleet(store, evaluator_name, STORM)
    assert fleet.complete, "the fleet must converge despite the storm"
    assert fleet.restarts > 0, "the storm should have drawn blood"
    assert _merged_json(store, "deit-tiny", evaluator_name) == \
        _healthy_json("deit-tiny", evaluator_name)


def test_hang_is_killed_and_absorbed(tmp_path):
    """A one-shot in-point hang goes stale and draws a SIGKILL relaunch."""
    store = tmp_path / "store"
    storm = {"seed": 7, "evaluator_hang_s": 30.0}
    fleet = _storm_fleet(store, "analytical", storm, hang_after=1.5)
    assert fleet.complete
    assert fleet.hang_kills >= 1
    assert _merged_json(store, "deit-tiny", "analytical") == \
        _healthy_json("deit-tiny", "analytical")


def test_fleet_cli_round_trip(tmp_path):
    """dse-fleet + dse-merge --json == dse --json, via real CLI processes."""
    store = tmp_path / "store"
    healthy = tmp_path / "healthy.json"
    merged = tmp_path / "merged.json"
    base = [sys.executable, "-m", "repro"]
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]] if "PYTHONPATH" in env else [])
    )
    common = ["--models", "deit-tiny", *GRID_ARGS]
    subprocess.run(base + ["dse", *common, "--json", str(healthy)],
                   check=True, capture_output=True, cwd=str(tmp_path),
                   env=env)
    run = subprocess.run(
        base + ["dse-fleet", "--out", str(store), "--num-shards", "2",
                "--steal", "--max-restarts", "5", *common,
                "--faults", json.dumps(STORM),
                "--json", str(tmp_path / "fleet.json")],
        check=True, capture_output=True, text=True, cwd=str(tmp_path),
        env=env, timeout=300,
    )
    assert "store complete" in run.stdout
    fleet_info = json.loads((tmp_path / "fleet.json").read_text())
    assert fleet_info["complete"] and fleet_info["restarts"] > 0
    subprocess.run(base + ["dse-merge", str(store), "--json", str(merged)],
                   check=True, capture_output=True, cwd=str(tmp_path),
                   env=env)
    assert healthy.read_bytes() == merged.read_bytes()
