"""Tests for MultiHeadSelfAttention and its ViTCoD hooks."""

import numpy as np
import pytest

from repro.autoencoder import HeadAutoEncoder
from repro.models import MultiHeadSelfAttention
from repro.nn import Tensor


@pytest.fixture()
def mhsa(rng):
    return MultiHeadSelfAttention(dim=16, num_heads=4, rng=rng)


class TestShapes:
    def test_output_shape(self, mhsa, rng):
        out = mhsa(Tensor(rng.standard_normal((2, 7, 16))))
        assert out.shape == (2, 7, 16)

    def test_indivisible_heads_raises(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, num_heads=3)

    def test_head_dim(self, mhsa):
        assert mhsa.head_dim == 4
        assert mhsa.scale == pytest.approx(0.5)


class TestRecording:
    def test_records_attention_when_enabled(self, mhsa, rng):
        mhsa.record_attention = True
        mhsa(Tensor(rng.standard_normal((3, 5, 16))))
        assert mhsa.last_attention.shape == (3, 4, 5, 5)
        # Rows are probability distributions.
        np.testing.assert_allclose(
            mhsa.last_attention.sum(axis=-1), 1.0, atol=1e-10
        )

    def test_no_recording_by_default(self, mhsa, rng):
        mhsa(Tensor(rng.standard_normal((1, 5, 16))))
        assert mhsa.last_attention is None


class TestMasking:
    def test_shared_mask_broadcasts(self, mhsa, rng):
        mask = np.eye(5, dtype=bool)
        mhsa.set_mask(mask)
        assert mhsa.attention_mask.shape == (4, 5, 5)

    def test_masked_positions_get_zero_attention(self, mhsa, rng):
        mask = np.eye(6, dtype=bool)
        mask[:, 0] = True  # keep a global column so rows stay valid
        mhsa.set_mask(mask)
        mhsa.record_attention = True
        mhsa(Tensor(rng.standard_normal((2, 6, 16))))
        attn = mhsa.last_attention
        pruned = ~np.broadcast_to(mask, (4, 6, 6))
        assert np.all(attn[:, pruned] < 1e-8)

    def test_fully_pruned_row_rejected(self, mhsa):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        with pytest.raises(ValueError):
            mhsa.set_mask(mask)

    def test_wrong_head_count_rejected(self, mhsa):
        with pytest.raises(ValueError):
            mhsa.set_mask(np.ones((3, 5, 5), dtype=bool))

    def test_mask_token_mismatch_raises_at_forward(self, mhsa, rng):
        mhsa.set_mask(np.ones((5, 5), dtype=bool))
        with pytest.raises(ValueError):
            mhsa(Tensor(rng.standard_normal((1, 7, 16))))

    def test_clear_mask(self, mhsa):
        mhsa.set_mask(np.ones((5, 5), dtype=bool))
        mhsa.set_mask(None)
        assert mhsa.attention_mask is None

    def test_dense_mask_equals_no_mask(self, mhsa, rng):
        x = Tensor(rng.standard_normal((1, 5, 16)))
        out_dense = mhsa(x).data.copy()
        mhsa.set_mask(np.ones((5, 5), dtype=bool))
        out_masked = mhsa(x).data
        np.testing.assert_allclose(out_dense, out_masked, atol=1e-12)


class TestAutoencoderHook:
    def test_reconstruction_pairs_recorded(self, mhsa, rng):
        mhsa.autoencoder = HeadAutoEncoder(4, compression=0.5, rng=rng)
        mhsa(Tensor(rng.standard_normal((2, 5, 16))))
        pairs = mhsa.last_reconstruction_pairs
        assert len(pairs) == 2  # Q and K
        for original, recon in pairs:
            assert original.shape == recon.shape == (2, 4, 5, 4)

    def test_no_pairs_without_ae(self, mhsa, rng):
        mhsa(Tensor(rng.standard_normal((1, 5, 16))))
        assert mhsa.last_reconstruction_pairs == ()

    def test_ae_changes_output(self, mhsa, rng):
        x = Tensor(rng.standard_normal((1, 5, 16)))
        base = mhsa(x).data.copy()
        mhsa.autoencoder = HeadAutoEncoder(4, compression=0.25, rng=rng)
        out = mhsa(x).data
        assert not np.allclose(base, out)

    def test_gradients_flow_into_ae(self, mhsa, rng):
        mhsa.autoencoder = HeadAutoEncoder(4, compression=0.5, rng=rng)
        out = mhsa(Tensor(rng.standard_normal((1, 5, 16))))
        (out * out).sum().backward()
        assert mhsa.autoencoder.enc_weight.grad is not None
        assert mhsa.autoencoder.dec_weight.grad is not None
