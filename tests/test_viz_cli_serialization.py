"""Tests for ASCII visualisation, the CLI, and result serialisation."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.harness import (
    report_from_dict,
    report_to_dict,
    reports_to_csv,
    to_json,
)
from repro.hw import (
    ViTCoDAccelerator,
    synthetic_attention_workload,
)
from repro.roofline import sddmm_roofline_points
from repro.viz import (
    render_bar,
    render_breakdown,
    render_curve,
    render_mask,
    render_roofline,
)


class TestRenderMask:
    def test_dense_block_visible(self):
        mask = np.zeros((64, 64), dtype=bool)
        mask[:, :8] = True
        art = render_mask(mask, width=32)
        lines = art.splitlines()
        # Left edge dense (darkest shade), right edge empty (space).
        assert all(line[0] == "@" for line in lines)
        assert all(line[-1] == " " for line in lines)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            render_mask(np.zeros(5))

    def test_small_mask(self):
        art = render_mask(np.eye(4, dtype=bool), width=60)
        assert len(art.splitlines()) == 4


class TestRenderBarsAndCurves:
    def test_bar_full_and_empty(self):
        assert render_bar(10, 10, width=10) == "#" * 10
        assert render_bar(0, 10, width=10) == " " * 10

    def test_bar_clamps_over_max(self):
        assert render_bar(20, 10, width=10) == "#" * 10

    def test_bar_invalid_max(self):
        with pytest.raises(ValueError):
            render_bar(1, 0)

    def test_breakdown_legend(self):
        out = render_breakdown(
            {"compute": 0.5, "preprocess": 0.2, "data_movement": 0.3}
        )
        assert "compute 50%" in out
        bar = out.split("]")[0]
        assert bar.count("#") == 20  # half of width 40

    def test_curve_renders_extremes(self):
        out = render_curve([0, 1, 2, 3], [0.0, 1.0, 4.0, 9.0],
                           x_label="epoch", y_label="loss")
        assert "epoch" in out and "loss" in out
        assert "*" in out

    def test_curve_constant_y(self):
        out = render_curve([0, 1], [5.0, 5.0])
        assert "*" in out

    def test_curve_empty_raises(self):
        with pytest.raises(ValueError):
            render_curve([], [])

    def test_curve_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_curve([1, 2], [1.0])


class TestRenderRoofline:
    def test_labels_all_points(self):
        out = render_roofline(sddmm_roofline_points())
        assert "D=dense-vits" in out
        assert "S=sparse-vits" in out
        assert "V=vitcod" in out
        assert "_" in out  # the roof line itself


class TestSerialization:
    def make_report(self):
        wl = synthetic_attention_workload(48, 2, 16, sparsity=0.85, seed=0)
        return ViTCoDAccelerator().simulate_attention_layer(wl)

    def test_roundtrip(self):
        report = self.make_report()
        restored = report_from_dict(report_to_dict(report))
        assert restored.platform == report.platform
        assert restored.cycles == pytest.approx(report.cycles)
        assert restored.energy_pj == pytest.approx(report.energy_pj)
        assert restored.seconds == pytest.approx(report.seconds)

    def test_dict_is_json_safe(self):
        payload = report_to_dict(self.make_report())
        json.dumps(payload)  # must not raise

    def test_to_json_handles_numpy(self):
        out = to_json({"a": np.float64(1.5), "b": np.arange(3),
                       "c": {"d": np.int64(7)}})
        parsed = json.loads(out)
        assert parsed["a"] == 1.5
        assert parsed["b"] == [0, 1, 2]
        assert parsed["c"]["d"] == 7

    def test_csv_export(self):
        reports = [self.make_report(), self.make_report()]
        csv_text = reports_to_csv(reports)
        lines = csv_text.strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert lines[0].startswith("platform,workload,seconds")


class TestCLI:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["fig15", "--sparsity", "0.8",
                                  "--models", "deit-tiny"])
        assert args.experiment == "fig15"
        assert args.sparsity == 0.8

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "roofline" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "ViTCoD" in capsys.readouterr().out

    def test_roofline_command(self, capsys):
        assert main(["roofline"]) == 0
        assert "ridge" in capsys.readouterr().out

    def test_polarize_command_small(self, capsys):
        assert main(["polarize", "--tokens", "48", "--heads", "2"]) == 0
        assert "global tokens" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["polarize", "--tokens", "32", "--heads", "2",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "sparsity" in data

    def test_fig15_single_model(self, capsys):
        assert main(["fig15", "--models", "deit-tiny"]) == 0
        out = capsys.readouterr().out
        assert "MEAN" in out and "sanger" in out

    def test_dse_command(self, capsys):
        assert main(["dse", "--models", "deit-tiny",
                     "--grid", "mac_lines=32,64",
                     "--grid", "ae_compression=none,0.5"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "4 points (analytical evaluator)" in out

    def test_dse_command_cycle_evaluator_json(self, tmp_path, capsys):
        path = tmp_path / "dse.json"
        assert main(["dse", "--models", "deit-tiny",
                     "--grid", "mac_lines=32,64",
                     "--evaluator", "cycle", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["evaluator"] == "cycle"
        assert len(data["points"]) == 2
        assert any(p["pareto"] for p in data["points"])

    def test_dse_grid_parsing(self):
        from repro.cli import parse_grid
        grid = parse_grid(["mac_lines=16,32", "ae_compression=none,0.25"])
        assert grid == {"mac_lines": (16, 32),
                        "ae_compression": (None, 0.25)}
        assert parse_grid(None)  # default grid is non-empty
        with pytest.raises(SystemExit):
            parse_grid(["mac_lines"])
        with pytest.raises(SystemExit):
            parse_grid(["mac_lines=32,"])  # trailing comma
        with pytest.raises(SystemExit):
            parse_grid(["mac_lines=fast"])  # non-numeric


def test_cli_rejects_stray_positional_for_plain_experiments():
    """Only the dse-shard/dse-merge/dse-status verbs take a store path."""
    from repro.cli import main

    with pytest.raises(SystemExit, match="store"):
        main(["fig8", "stray-token"])
