"""Evaluator-pluggable DSE: built-ins, failure handling, hybrid sweeps.

The sweep engine itself (streaming, chunking, Pareto pruning) is covered by
``test_dse.py``; this file covers the :mod:`repro.sim.evaluator` strategy
layer — that the analytical default stays bit-identical, that cycle-sim
points really come from the event-driven simulator, that a raising
evaluator drops its point with a warning instead of poisoning the sweep,
and that hybrid sweeps are deterministic.
"""

from dataclasses import replace

import pytest

from repro.harness import dse as dse_module
from repro.harness.dse import (
    ParetoFront,
    iter_design_space,
    pareto_frontier,
    sweep_design_space,
)
from repro.hw import CycleAccurateSimulator, model_workload
from repro.hw.params import VITCOD_DEFAULT
from repro.models import get_config
from repro.perf import seed_worker_workload, seeded_workload
from repro.sim import (
    AnalyticalEvaluator,
    CycleSimEvaluator,
    EvalMetrics,
    Evaluator,
    HybridEvaluator,
    UnsupportedParameterError,
    resolve_evaluator,
)

GRID = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}


@pytest.fixture(scope="module")
def small_workload():
    return model_workload(get_config("deit-tiny"), sparsity=0.9)


class ExplodingEvaluator(AnalyticalEvaluator):
    """Raises on one specific design point (module-level: pool-picklable)."""

    name = "exploding"

    def __call__(self, workload, config, accel_kwargs):
        if config.num_mac_lines == 32:
            raise RuntimeError("injected evaluator failure")
        return super().__call__(workload, config, accel_kwargs)


class AreaEvaluator:
    """Deterministic toy evaluator (module-level: pool-picklable)."""

    name = "area"

    def __call__(self, workload, config, accel_kwargs):
        return EvalMetrics(
            seconds=1.0 / config.total_macs, energy_joules=config.total_macs
        )


class TestResolve:
    def test_none_is_analytical(self):
        assert isinstance(resolve_evaluator(None), AnalyticalEvaluator)

    @pytest.mark.parametrize("name,cls", [
        ("analytical", AnalyticalEvaluator),
        ("cycle", CycleSimEvaluator),
        ("hybrid", HybridEvaluator),
    ])
    def test_builtin_names(self, name, cls):
        evaluator = resolve_evaluator(name)
        assert isinstance(evaluator, cls)
        assert evaluator.name == name
        assert isinstance(evaluator, Evaluator)  # structural conformance

    def test_instance_passthrough(self):
        evaluator = CycleSimEvaluator(engine="scalar")
        assert resolve_evaluator(evaluator) is evaluator

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown evaluator"):
            resolve_evaluator("rtl")

    def test_non_callable(self):
        with pytest.raises(TypeError):
            resolve_evaluator(42)


class TestAnalyticalDefault:
    def test_default_bit_identical_to_named_and_instance(self, small_workload):
        base = sweep_design_space(small_workload, GRID)
        named = sweep_design_space(small_workload, GRID,
                                   evaluator="analytical")
        instance = sweep_design_space(small_workload, GRID,
                                      evaluator=AnalyticalEvaluator())
        assert base == named == instance

    def test_streaming_default_matches(self, small_workload):
        eager = sweep_design_space(small_workload, GRID)
        streamed = list(iter_design_space(small_workload, GRID,
                                          evaluator="analytical"))
        assert streamed == eager


class TestCycleSimEvaluator:
    def test_points_come_from_the_cycle_simulator(self, small_workload):
        points = sweep_design_space(small_workload,
                                    {"mac_lines": [32, 64]},
                                    evaluator="cycle")
        assert len(points) == 2
        for point in points:
            config = replace(VITCOD_DEFAULT,
                             num_mac_lines=point.parameter("mac_lines"))
            result = CycleAccurateSimulator(
                config=config
            ).simulate_attention(small_workload)
            assert point.seconds == config.cycles_to_seconds(result.makespan)
            assert point.energy_joules > 0

    def test_stream_with_incremental_frontier(self, small_workload):
        every = sweep_design_space(small_workload, GRID, evaluator="cycle")
        front = ParetoFront()
        list(iter_design_space(small_workload, GRID,
                               evaluator=CycleSimEvaluator(), frontier=front))
        assert front.offered == len(every)
        assert front.points == pareto_frontier(every)

    def test_parallel_equals_serial(self, small_workload):
        serial = sweep_design_space(small_workload, GRID, evaluator="cycle")
        parallel = sweep_design_space(small_workload, GRID,
                                      evaluator="cycle", n_jobs=3)
        assert parallel == serial

    def test_unsupported_parameter_raises(self, small_workload):
        """The cycle sim does not model Q forwarding: sweeping it is a
        caller bug that raises, not a droppable per-point failure."""
        with pytest.raises(UnsupportedParameterError,
                           match="q_forwarding_hit_rate"):
            sweep_design_space(
                small_workload, {"q_forwarding_hit_rate": [0.0, 0.3]},
                evaluator="cycle",
            )
        with pytest.raises(UnsupportedParameterError):
            sweep_design_space(
                small_workload, {"q_forwarding_hit_rate": [0.0, 0.3]},
                evaluator="cycle", n_jobs=2,
            )

    def test_empty_grid(self, small_workload):
        with pytest.raises(ValueError):
            sweep_design_space(small_workload, {}, evaluator="cycle")
        with pytest.raises(ValueError):
            next(iter_design_space(small_workload, {}, evaluator="hybrid"))


class TestFailureHandling:
    GRID = {"mac_lines": [16, 32, 64]}

    def test_serial_failure_dropped_with_warning(self, small_workload):
        with pytest.warns(RuntimeWarning, match="injected evaluator"):
            points = sweep_design_space(small_workload, self.GRID,
                                        evaluator=ExplodingEvaluator())
        assert [p.parameter("mac_lines") for p in points] == [16, 64]

    def test_pool_failure_dropped_not_hung(self, small_workload):
        """A worker-side evaluator exception must neither hang the sweep
        nor poison the rest of its chunk."""
        with pytest.warns(RuntimeWarning, match="injected evaluator"):
            points = sweep_design_space(small_workload, self.GRID,
                                        evaluator=ExplodingEvaluator(),
                                        n_jobs=2)
        assert [p.parameter("mac_lines") for p in points] == [16, 64]
        good = sweep_design_space(small_workload, self.GRID)
        assert points == [p for p in good
                          if p.parameter("mac_lines") != 32]

    def test_unknown_parameter_still_raises(self, small_workload):
        """Malformed grids are caller bugs, not droppable failures."""
        with pytest.raises(KeyError):
            sweep_design_space(small_workload, {"voltage": [0.9]},
                               evaluator=ExplodingEvaluator())

    def test_custom_evaluator_parallel(self, small_workload):
        serial = sweep_design_space(small_workload, self.GRID,
                                    evaluator=AreaEvaluator())
        parallel = sweep_design_space(small_workload, self.GRID,
                                      evaluator=AreaEvaluator(), n_jobs=2)
        assert parallel == serial
        assert [p.seconds for p in serial] == \
            [1.0 / (16 * 8), 1.0 / (32 * 8), 1.0 / (64 * 8)]


class TestHybrid:
    def test_survivors_are_rescored_analytical_frontier(self, small_workload):
        analytical = sweep_design_space(small_workload, GRID)
        survivors = pareto_frontier(analytical)  # grid order preserved
        cycle = {p.parameters: p
                 for p in sweep_design_space(small_workload, GRID,
                                             evaluator="cycle")}
        hybrid = sweep_design_space(small_workload, GRID, evaluator="hybrid")
        assert [p.parameters for p in hybrid] == \
            [p.parameters for p in survivors]
        assert hybrid == [cycle[p.parameters] for p in survivors]

    def test_survivor_ordering_deterministic(self, small_workload):
        runs = [
            sweep_design_space(small_workload, GRID, evaluator="hybrid",
                               n_jobs=n_jobs)
            for n_jobs in (1, 1, 2, 3)
        ]
        assert runs[0] == runs[1] == runs[2] == runs[3]

    def test_stream_applies_user_frontier(self, small_workload):
        front = ParetoFront()
        yielded = list(iter_design_space(small_workload, GRID,
                                         evaluator="hybrid", frontier=front))
        assert front.points == pareto_frontier(yielded)
        assert all(p in yielded for p in front.points)

    def test_direct_call_scores_fine(self, small_workload):
        hybrid = HybridEvaluator()
        fine = hybrid(small_workload, VITCOD_DEFAULT, {})
        direct = CycleSimEvaluator()(small_workload, VITCOD_DEFAULT, {})
        assert fine == direct

    def test_custom_coarse_and_fine(self, small_workload):
        hybrid = HybridEvaluator(coarse=AreaEvaluator(),
                                 fine=AnalyticalEvaluator())
        points = sweep_design_space(small_workload, {"mac_lines": [16, 64]},
                                    evaluator=hybrid)
        # AreaEvaluator makes seconds/energy a strict trade-off, so both
        # points survive pruning and are re-scored analytically.
        analytical = sweep_design_space(small_workload,
                                        {"mac_lines": [16, 64]})
        assert points == analytical


class TestWorkerSeeding:
    def test_chunk_resolves_seeded_workload(self, small_workload):
        """``workload=None`` chunks read the initializer-seeded workload."""
        assert seeded_workload() is None
        seed_worker_workload(small_workload)
        try:
            assert seeded_workload() is small_workload
            seeded = dse_module._evaluate_chunk(
                None, VITCOD_DEFAULT, ["mac_lines"], [(0, (32,))],
                AnalyticalEvaluator(),
            )
            direct = dse_module._evaluate_chunk(
                small_workload, VITCOD_DEFAULT, ["mac_lines"], [(0, (32,))],
                AnalyticalEvaluator(),
            )
            assert seeded == direct
        finally:
            seed_worker_workload(None)

    def test_parallel_sweep_leaves_parent_unseeded(self, small_workload):
        sweep_design_space(small_workload, {"mac_lines": [16, 32]}, n_jobs=2)
        # The initializer runs in the workers; the parent process keeps a
        # clean slate (the thread-pool fallback passes the workload
        # explicitly instead of seeding the shared module state).
        assert seeded_workload() is None


class TestEvaluatorSpecs:
    """JSON-safe evaluator specs (the result-store manifest currency)."""

    def test_builtin_round_trips(self):
        from repro.sim import evaluator_from_spec, evaluator_spec

        for spec in (
            {"name": "analytical"},
            {"name": "cycle", "engine": "scalar", "scan": "split"},
            {"name": "cycle", "engine": "vectorized", "scan": "fused"},
            {"name": "hybrid",
             "coarse": {"name": "analytical"},
             "fine": {"name": "cycle", "engine": "vectorized",
                      "scan": "split"}},
        ):
            assert evaluator_spec(evaluator_from_spec(spec)) == spec

    def test_spec_accepts_names_and_none(self):
        from repro.sim import evaluator_spec

        assert evaluator_spec(None) == {"name": "analytical"}
        assert evaluator_spec("cycle")["name"] == "cycle"
        assert evaluator_spec("hybrid")["coarse"] == {"name": "analytical"}

    def test_custom_evaluator_identified_not_reconstructible(self):
        from repro.sim import evaluator_from_spec, evaluator_spec

        class Odd:
            name = "odd"

            def __call__(self, workload, config, accel_kwargs):
                return EvalMetrics(1.0, 1.0)

        spec = evaluator_spec(Odd())
        assert spec == {"name": "custom:odd"}
        with pytest.raises(ValueError):
            evaluator_from_spec(spec)

    def test_spec_equivalence_scores_identically(self, small_workload):
        from repro.sim import CycleSimEvaluator, evaluator_from_spec, \
            evaluator_spec

        original = CycleSimEvaluator(engine="scalar")
        rebuilt = evaluator_from_spec(evaluator_spec(original))
        assert (original(small_workload, VITCOD_DEFAULT, {})
                == rebuilt(small_workload, VITCOD_DEFAULT, {}))

    def test_metrics_round_trip(self):
        import json

        metrics = EvalMetrics(seconds=1.23456789e-4,
                              energy_joules=9.87654321e-3)
        data = json.loads(json.dumps(metrics.to_dict()))
        assert EvalMetrics.from_dict(data) == metrics


class TestSpecHardening:
    """Wire-format strictness: specs now cross trust boundaries (serve)."""

    def test_string_shorthand(self):
        from repro.sim import evaluator_from_spec

        assert evaluator_from_spec("analytical").name == "analytical"
        assert evaluator_from_spec("hybrid").adaptive is False

    def test_rejects_non_dict_specs(self):
        from repro.sim import evaluator_from_spec

        with pytest.raises(TypeError):
            evaluator_from_spec(["analytical"])
        with pytest.raises(ValueError, match="name"):
            evaluator_from_spec({})
        with pytest.raises(ValueError, match="name"):
            evaluator_from_spec({"name": 3})

    def test_rejects_unknown_names_listing_choices(self):
        from repro.sim import evaluator_from_spec

        with pytest.raises(ValueError, match="analytical.*cycle.*hybrid"):
            evaluator_from_spec({"name": "quantum"})

    @pytest.mark.parametrize(
        "spec, match",
        [
            ({"name": "analytical", "engine": "scalar"}, "field"),
            ({"name": "cycle", "turbo": True}, "field"),
            ({"name": "cycle", "engine": "abacus"}, "engine"),
            ({"name": "cycle", "scan": "zigzag"}, "scan"),
            ({"name": "hybrid", "adaptive": 1}, "adaptive"),
            ({"name": "hybrid", "band_slack": True}, "band_slack"),
            ({"name": "hybrid", "band_slack": "wide"}, "band_slack"),
            ({"name": "hybrid", "coarse": {"name": "cycle",
                                           "engine": "abacus"}}, "engine"),
        ],
    )
    def test_rejects_malformed_fields(self, spec, match):
        from repro.sim import evaluator_from_spec

        with pytest.raises(ValueError, match=match):
            evaluator_from_spec(spec)

    def test_parameter_names_are_the_dse_vocabulary(self):
        from repro.sim import dse_parameter_names

        names = dse_parameter_names()
        assert names == tuple(sorted(names))
        assert "mac_lines" in names
        assert "ae_compression" in names
