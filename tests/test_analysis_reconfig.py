"""Tests for attention-structure diagnostics and the reconfigurability
cost model."""

import numpy as np
import pytest

from repro.compiler import parse_layers
from repro.compiler.reconfig import (
    amortized_overhead,
    break_even_inferences,
    estimate_compile_cost,
)
from repro.hw import ViTCoDAccelerator, attention_workload_from_masks
from repro.models import extract_average_attention
from repro.models.analysis import (
    distance_profile,
    global_column_share,
    head_agreement,
    structure_report,
)
from repro.sparsity import (
    synthetic_nlp_attention,
    synthetic_vit_attention,
)


class TestDistanceProfile:
    def test_vit_maps_decay_with_distance(self):
        maps = synthetic_vit_attention(96, num_heads=4, seed=0)
        profile = distance_profile(maps, max_distance=10)
        assert profile[0] > profile[5] > 0
        # Near-diagonal mass clearly above the far field.
        assert profile[:2].mean() > 3 * profile[8:].mean()

    def test_nlp_maps_flatter(self):
        vit = distance_profile(synthetic_vit_attention(96, 4, seed=1), 10)
        nlp = distance_profile(synthetic_nlp_attention(96, 4, seed=1), 10)
        vit_decay = vit[0] / max(vit[10], 1e-12)
        nlp_decay = nlp[0] / max(nlp[10], 1e-12)
        assert vit_decay > nlp_decay

    def test_profile_length(self):
        maps = synthetic_vit_attention(32, 2)
        assert len(distance_profile(maps, max_distance=5)) == 6
        assert len(distance_profile(maps)) == 32

    def test_uniform_map_flat(self):
        maps = np.full((1, 16, 16), 1.0 / 16)
        profile = distance_profile(maps)
        np.testing.assert_allclose(profile, 1.0 / 16)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            distance_profile(np.zeros((3, 4, 5)))


class TestGlobalShareAndAgreement:
    def test_vit_global_share_high(self):
        maps = synthetic_vit_attention(197, num_heads=12, seed=0)
        share = global_column_share(maps)
        # ~6% of columns absorb far more than 6% of the mass.
        assert share > 0.2

    def test_nlp_global_share_lower(self):
        vit = global_column_share(synthetic_vit_attention(96, 4, seed=2))
        nlp = global_column_share(synthetic_nlp_attention(96, 4, seed=2))
        assert vit > nlp

    def test_agreement_bounds(self):
        maps = synthetic_vit_attention(64, num_heads=6, seed=3)
        agreement = head_agreement(maps)
        assert 0.0 <= agreement <= 1.0

    def test_single_head_agreement(self):
        maps = synthetic_vit_attention(32, num_heads=1)
        assert head_agreement(maps) == 1.0

    def test_identical_heads_agree_fully(self):
        head = synthetic_vit_attention(48, num_heads=1, seed=4)[0]
        maps = np.stack([head, head, head])
        assert head_agreement(maps) == pytest.approx(1.0)

    def test_structure_report_keys(self):
        report = structure_report(synthetic_vit_attention(64, 4, seed=5))
        assert {"near_mass_ratio", "distance_profile",
                "global_column_share", "head_agreement"} <= set(report)
        assert report["near_mass_ratio"] > 1.0

    def test_trained_model_exhibits_global_columns(self, tiny_vit):
        """Fig. 2's global-token claim holds on attention maps of a REAL
        trained model: some layer's top columns absorb clearly more mass
        than a uniform map's would.  (Diagonal decay is asserted on the
        paper-scale generators above; our 4x4-grid sim model is too small
        for 1-D band structure.)"""
        maps = extract_average_attention(tiny_vit.model,
                                         tiny_vit.dataset.x[:96])
        n = maps[0].shape[-1]
        top_k = max(1, int(round(0.06 * n)))
        best = max(global_column_share(np.asarray(m)) for m in maps)
        assert best > 1.2 * top_k / n


class TestReconfigCost:
    @pytest.fixture(scope="class")
    def layer_configs(self):
        from repro.sparsity import split_and_conquer
        results = [
            split_and_conquer(
                synthetic_vit_attention(197, num_heads=12, seed=s),
                target_sparsity=0.9,
            )
            for s in range(3)
        ]
        return results, parse_layers(results, head_dim=64)

    def test_compile_cost_positive(self, layer_configs):
        _, cfgs = layer_configs
        cost = estimate_compile_cost(cfgs)
        assert cost.total_cycles > 0
        assert cost.seconds() > 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_compile_cost([])

    def test_one_time_cost_small_vs_inference(self, layer_configs):
        """§V-B.3: compilation is one-time and amortizes — after a modest
        number of inferences its overhead is negligible."""
        results, cfgs = layer_configs
        cost = estimate_compile_cost(cfgs)
        acc = ViTCoDAccelerator()
        inference_cycles = sum(
            acc.simulate_attention_layer(
                attention_workload_from_masks(r, head_dim=64)
            ).cycles
            for r in results
        )
        overhead_1k = amortized_overhead(cost, inference_cycles, 1000)
        assert overhead_1k < 0.01  # <1% after 1000 inferences

    def test_break_even_vs_dynamic_prediction(self, layer_configs):
        """Against Sanger-style per-input prediction, fixed masks break even
        within a handful of inferences."""
        results, cfgs = layer_configs
        cost = estimate_compile_cost(cfgs)
        # Sanger's per-inference prediction cost on the same layers.
        from repro.baselines import SangerSimulator
        sanger = SangerSimulator()
        saving = sum(
            sanger.simulate_attention_layer(
                attention_workload_from_masks(r, head_dim=64)
            ).latency.preprocess
            for r in results
        )
        n = break_even_inferences(cost, saving)
        assert n <= 10

    def test_amortized_overhead_validation(self, layer_configs):
        _, cfgs = layer_configs
        cost = estimate_compile_cost(cfgs)
        with pytest.raises(ValueError):
            amortized_overhead(cost, 1000, 0)
        with pytest.raises(ValueError):
            amortized_overhead(cost, 0, 10)
        with pytest.raises(ValueError):
            break_even_inferences(cost, 0)
