"""Tests for NN modules (repro.nn.modules) and losses (functional)."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    Module,
    Parameter,
    Linear,
    LayerNorm,
    GELU,
    ReLU,
    Sequential,
    Mlp,
    functional as F,
)


class TestModuleBase:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.child = Linear(2, 2)

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names
        assert len(list(m.parameters())) == 3

    def test_num_parameters(self):
        lin = Linear(4, 5)
        assert lin.num_parameters() == 4 * 5 + 5

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad(self):
        lin = Linear(3, 2)
        out = lin(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = Linear(3, 4, rng=np.random.default_rng(1))
        b = Linear(3, 4, rng=np.random.default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_missing_key_raises(self):
        a = Linear(3, 4)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        a = Linear(3, 4)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_shapes(self, rng):
        lin = Linear(6, 3, rng=rng)
        out = lin(Tensor(rng.standard_normal((5, 6))))
        assert out.shape == (5, 3)

    def test_batched_input(self, rng):
        lin = Linear(6, 3, rng=rng)
        out = lin(Tensor(rng.standard_normal((2, 7, 6))))
        assert out.shape == (2, 7, 3)

    def test_no_bias(self, rng):
        lin = Linear(4, 4, bias=False, rng=rng)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_gradient_flow(self, rng):
        lin = Linear(3, 2, rng=rng)
        loss = (lin(Tensor(rng.standard_normal((4, 3)))) ** 2).sum()
        loss.backward()
        assert lin.weight.grad.shape == (3, 2)
        assert lin.bias.grad.shape == (2,)


class TestLayerNorm:
    def test_normalises(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.standard_normal((4, 8)) * 10 + 3))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_learnable_scale_shift(self, rng):
        ln = LayerNorm(4)
        ln.gamma.data[:] = 2.0
        ln.beta.data[:] = 1.0
        out = ln(Tensor(rng.standard_normal((2, 4))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 1.0, atol=1e-8)

    def test_gradients(self, rng):
        ln = LayerNorm(5)
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        (ln(x) ** 2).sum().backward()
        assert ln.gamma.grad is not None and ln.beta.grad is not None


class TestActivationsAndMlp:
    def test_gelu_matches_tensor_op(self, rng):
        x = Tensor(rng.standard_normal(10))
        np.testing.assert_allclose(GELU()(x).data, x.gelu().data)

    def test_relu(self):
        out = ReLU()(Tensor([-1.0, 1.0]))
        np.testing.assert_allclose(out.data, [0.0, 1.0])

    def test_sequential(self, rng):
        seq = Sequential(Linear(4, 8, rng=rng), GELU(), Linear(8, 2, rng=rng))
        assert len(seq) == 3
        out = seq(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)

    def test_mlp_shapes(self, rng):
        mlp = Mlp(6, 24, rng=rng)
        out = mlp(Tensor(rng.standard_normal((2, 5, 6))))
        assert out.shape == (2, 5, 6)


class TestFunctional:
    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 8)))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(8), atol=1e-10)

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        # Gradient should be negative on the true class, positive elsewhere.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0

    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), np.array([1.0, 4.0]))
        np.testing.assert_allclose(loss.item(), 2.0)

    def test_l1_loss(self):
        loss = F.l1_loss(Tensor([1.0, -2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 1.5)

    def test_reconstruction_loss_detaches_target(self):
        orig = Tensor(np.ones(4), requires_grad=True)
        recon = Tensor(np.zeros(4), requires_grad=True)
        F.reconstruction_loss(orig, recon).backward()
        assert orig.grad is None  # target side detached
        assert recon.grad is not None

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_one_hot(self):
        oh = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(oh, [[1, 0, 0], [0, 0, 1]])
