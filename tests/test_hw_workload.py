"""Tests for workload construction (repro.hw.workload) and hardware params."""

import pytest

from repro.hw import (
    VITCOD_DEFAULT,
    GemmWorkload,
    HeadWorkload,
    attention_workload_from_masks,
    dense_attention_workload,
    model_workload,
    synthetic_attention_workload,
)
from repro.models import get_config


class TestHardwareConfig:
    def test_paper_design_point(self):
        cfg = VITCOD_DEFAULT
        assert cfg.total_macs == 512
        assert cfg.peak_gops == pytest.approx(256.0)  # Fig. 3 compute roof
        assert cfg.bytes_per_cycle == pytest.approx(153.6)
        # 320 KB SRAM total: 128 + 20 + 108 + 64.
        total_kb = (cfg.act_buffer_bytes + cfg.index_buffer_bytes
                    + cfg.output_buffer_bytes + cfg.weight_buffer_bytes) / 1024
        assert total_kb == 320

    def test_cycles_to_seconds(self):
        assert VITCOD_DEFAULT.cycles_to_seconds(500e6) == pytest.approx(1.0)

    def test_scaled(self):
        big = VITCOD_DEFAULT.scaled(4)
        assert big.total_macs == 4 * 512
        assert big.bytes_per_cycle == pytest.approx(4 * 153.6)
        assert "x4" in big.name


class TestHeadWorkload:
    def make(self, **kw):
        defaults = dict(num_tokens=100, head_dim=64, num_global_tokens=10,
                        denser_nnz=1000, sparser_nnz=400,
                        sparser_index_bytes=800, sparser_locality=0.8)
        defaults.update(kw)
        return HeadWorkload(**defaults)

    def test_macs(self):
        h = self.make()
        assert h.denser_macs == 10 * 100 * 64
        assert h.sparser_macs == 400 * 64
        assert h.spmm_macs == 1400 * 64

    def test_sparsity(self):
        h = self.make()
        assert h.sparsity == pytest.approx(1 - 1400 / 10000)


class TestWorkloadFromMasks:
    def test_consistency_with_partitions(self, paper_scale_result):
        wl = attention_workload_from_masks(paper_scale_result, head_dim=64)
        assert wl.num_heads == 12 and wl.num_tokens == 197
        for head, part in zip(wl.heads, paper_scale_result.partitions):
            assert head.denser_nnz == part.denser_nnz
            assert head.sparser_nnz == part.sparser_nnz
            assert head.num_global_tokens == part.num_global_tokens
            assert 0.0 <= head.sparser_locality <= 1.0

    def test_sparsity_matches(self, paper_scale_result):
        wl = attention_workload_from_masks(paper_scale_result, head_dim=64)
        assert wl.sparsity == pytest.approx(paper_scale_result.sparsity)

    def test_unreordered_mode(self, paper_scale_result):
        wl = attention_workload_from_masks(paper_scale_result, head_dim=64,
                                           reordered=False)
        assert all(h.num_global_tokens == 0 for h in wl.heads)
        assert all(h.denser_nnz == 0 for h in wl.heads)
        # All non-zeros land in the sparser workload.
        total = sum(int(m.sum()) for m in paper_scale_result.mask)
        assert sum(h.sparser_nnz for h in wl.heads) == total

    def test_unreordered_less_local(self, paper_scale_result):
        reordered = attention_workload_from_masks(paper_scale_result, 64)
        raw = attention_workload_from_masks(paper_scale_result, 64,
                                            reordered=False)
        # Without the global-column extraction, global columns pollute the
        # band: scattered non-zeros increase.
        assert raw.scattered_nnz > reordered.scattered_nnz

    def test_coo_index_format(self, paper_scale_result):
        csc = attention_workload_from_masks(paper_scale_result, 64,
                                            index_format="csc")
        coo = attention_workload_from_masks(paper_scale_result, 64,
                                            index_format="coo")
        assert coo.index_bytes() > csc.index_bytes()

    def test_unknown_format(self, paper_scale_result):
        with pytest.raises(ValueError):
            attention_workload_from_masks(paper_scale_result, 64,
                                          index_format="bsr")


class TestSyntheticAndDense:
    def test_synthetic_sparsity(self):
        wl = synthetic_attention_workload(96, 4, 32, sparsity=0.85, seed=0)
        assert abs(wl.sparsity - 0.85) < 0.03

    def test_dense_workload(self):
        wl = dense_attention_workload(96, 4, 32)
        assert wl.sparsity == 0.0
        assert wl.scattered_nnz == 0
        assert wl.sddmm_macs == wl.dense_sddmm_macs

    def test_sparsity_none_gives_dense(self):
        wl = synthetic_attention_workload(48, 2, 16, sparsity=None)
        assert wl.sparsity == 0.0

    def test_denser_fraction_bounds(self):
        wl = synthetic_attention_workload(96, 4, 32, sparsity=0.9, seed=1)
        assert 0.0 < wl.denser_fraction < 1.0

    def test_byte_helpers(self):
        wl = dense_attention_workload(10, 2, 8)
        assert wl.qk_bytes(2) == 2 * 10 * 16 * 2
        assert wl.v_bytes(2) == 10 * 16 * 2


class TestGemmWorkload:
    def test_macs_and_bytes(self):
        g = GemmWorkload("fc", m=10, k=20, n=30)
        assert g.macs == 6000
        assert g.weight_bytes(2) == 20 * 30 * 2
        assert g.io_bytes(2) == (200 + 300) * 2


class TestModelWorkload:
    def test_deit_base_structure(self):
        wl = model_workload(get_config("deit-base"), sparsity=0.9)
        assert len(wl.attention_layers) == 12
        assert len(wl.linear_layers) == 48  # qkv, proj, fc1, fc2 per layer
        assert wl.name == "deit-base"
        assert abs(wl.mean_sparsity - 0.9) < 0.03

    def test_levit_multistage_shapes(self):
        wl = model_workload(get_config("levit-128"), sparsity=0.8)
        tokens = [l.num_tokens for l in wl.attention_layers]
        assert tokens[:4] == [196] * 4
        assert tokens[4:8] == [49] * 4
        assert tokens[8:] == [16] * 4

    def test_layers_vary_by_seed(self):
        wl = model_workload(get_config("deit-tiny"), sparsity=0.9)
        ngts = [tuple(h.num_global_tokens for h in l.heads)
                for l in wl.attention_layers]
        assert len(set(ngts)) > 1  # per-layer variation (Fig. 8)

    def test_mlp_ratio_respected(self):
        wl = model_workload(get_config("levit-128"), sparsity=0.9)
        fc1 = next(g for g in wl.linear_layers if g.name.endswith("fc1"))
        assert fc1.n == 2 * fc1.k  # LeViT mlp_ratio = 2
