"""Grid-batched analytical DSE: the batch axis must be invisible.

The contract under test: scoring a grid chunk with
``BatchedAnalyticalEvaluator.evaluate_batch`` (one numpy walk over a
leading design-point axis) is **bit-for-bit** the per-point
``AnalyticalEvaluator`` loop — points, ordering, Pareto frontier,
failure attribution, durable shard records.  Property-tested over random
grids of all five sweepable parameters; this is the CI-enforced
guarantee that makes batching an execution detail rather than a model
change.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.harness import dse as dse_module
from repro.harness.dse import (
    iter_indexed_design_points,
    pareto_frontier,
    sensitivity,
    sweep_design_space,
)
from repro.hw import model_workload
from repro.hw.params import VITCOD_DEFAULT
from repro.models import get_config
from repro.sim import (
    AnalyticalEvaluator,
    BatchedAnalyticalEvaluator,
    BatchEvaluator,
    evaluator_from_spec,
    evaluator_spec,
    resolve_evaluator,
)


@pytest.fixture(scope="module")
def small_workload():
    return model_workload(get_config("deit-tiny"), sparsity=0.9)


# ----------------------------------------------------------------------
# Random grids over every sweepable parameter
# ----------------------------------------------------------------------
def grid_strategy():
    """Random DSE grids: any subset of the five parameters, small value
    lists, including the knobs' edge values (AE off via ``None``, zero
    forwarding, fractional buffer sizes)."""
    mac_lines = st.lists(st.integers(2, 512), min_size=1, max_size=3,
                         unique=True)
    bandwidth = st.lists(
        st.sampled_from([9.6, 19.2, 38.4, 76.8, 153.6, 307.2]),
        min_size=1, max_size=2, unique=True,
    )
    act_buffer = st.lists(st.sampled_from([0.5, 32, 64, 128, 320, 512]),
                          min_size=1, max_size=2, unique=True)
    ae = st.lists(st.sampled_from([None, 0.25, 0.5, 0.75, 1.0]),
                  min_size=1, max_size=3, unique=True)
    fwd = st.lists(st.sampled_from([0.0, 0.3, 0.9]),
                   min_size=1, max_size=2, unique=True)
    options = {
        "mac_lines": mac_lines,
        "bandwidth_gbps": bandwidth,
        "act_buffer_kb": act_buffer,
        "ae_compression": ae,
        "q_forwarding_hit_rate": fwd,
    }
    return st.sets(
        st.sampled_from(sorted(options)), min_size=1, max_size=5
    ).flatmap(lambda names: st.fixed_dictionaries(
        {name: options[name] for name in names}
    ))


class TestBitExactness:
    @given(grid=grid_strategy())
    @settings(max_examples=40, deadline=None)
    def test_batched_sweep_equals_per_point(self, small_workload, grid):
        """Points, grid ordering and frontier are bit-identical."""
        per_point = sweep_design_space(small_workload, grid,
                                       evaluator=AnalyticalEvaluator())
        batched = sweep_design_space(small_workload, grid)
        assert batched == per_point  # DesignPoint eq: every field bit-equal
        assert pareto_frontier(batched) == pareto_frontier(per_point)

    @given(grid=grid_strategy())
    @settings(max_examples=15, deadline=None)
    def test_evaluate_batch_matches_call_loop(self, small_workload, grid):
        """The raw batch surface, without the DSE engine in between."""
        from itertools import product

        names = sorted(grid)
        rows = list(product(*(grid[n] for n in names)))
        evaluator = BatchedAnalyticalEvaluator()
        batch = evaluator.evaluate_batch(small_workload, VITCOD_DEFAULT,
                                         names, rows)
        assert len(batch) == len(rows)
        for row, metrics in zip(rows, batch):
            expected = dse_module._evaluate_design_point(
                small_workload, VITCOD_DEFAULT, names, row,
                AnalyticalEvaluator(),
            )
            assert metrics.seconds == expected.seconds
            assert metrics.energy_joules == expected.energy_joules

    def test_indexed_subset_matches_per_point(self, small_workload):
        grid = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}
        per_point = dict(iter_indexed_design_points(
            small_workload, grid, [5, 0, 3],
            evaluator=AnalyticalEvaluator(),
        ))
        batched = dict(iter_indexed_design_points(small_workload, grid,
                                                  [5, 0, 3]))
        assert batched == per_point

    def test_parallel_and_forced_pool_match_serial(self, small_workload):
        grid = {"mac_lines": [16, 32, 64], "bandwidth_gbps": [19.2, 76.8]}
        serial = sweep_design_space(small_workload, grid)
        assert sweep_design_space(small_workload, grid, n_jobs=3) == serial
        assert sweep_design_space(small_workload, grid, n_jobs=3,
                                  min_parallel_s=0.0) == serial

    def test_explicit_chunksize_matches(self, small_workload):
        grid = {"mac_lines": [16, 32, 64, 128],
                "ae_compression": [None, 0.5]}
        serial = sweep_design_space(small_workload, grid)
        assert sweep_design_space(small_workload, grid,
                                  chunksize=3) == serial
        assert sweep_design_space(small_workload, grid, n_jobs=2,
                                  chunksize=3) == serial

    def test_hybrid_coarse_phase_batches_identically(self, small_workload):
        grid = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}
        from repro.sim import CycleSimEvaluator, HybridEvaluator

        batched = sweep_design_space(small_workload, grid,
                                     evaluator="hybrid")
        per_point = sweep_design_space(
            small_workload, grid,
            evaluator=HybridEvaluator(coarse=AnalyticalEvaluator(),
                                      fine=CycleSimEvaluator()),
        )
        assert batched == per_point


class TestBatchEngine:
    def test_analytical_default_is_batch_capable(self):
        evaluator = resolve_evaluator(None)
        assert isinstance(evaluator, BatchedAnalyticalEvaluator)
        assert isinstance(evaluator, AnalyticalEvaluator)  # same strategy
        assert isinstance(evaluator, BatchEvaluator)
        assert dse_module._batch_capable(evaluator)
        assert not dse_module._batch_capable(AnalyticalEvaluator())

    def test_spec_round_trip_shared_with_per_point(self):
        assert evaluator_spec(BatchedAnalyticalEvaluator()) == \
            {"name": "analytical"}
        assert evaluator_spec(AnalyticalEvaluator()) == \
            {"name": "analytical"}
        rebuilt = evaluator_from_spec({"name": "analytical"})
        assert isinstance(rebuilt, BatchedAnalyticalEvaluator)

    def test_serial_sweep_uses_batch_calls(self, small_workload,
                                           monkeypatch):
        """The engine really routes chunks through evaluate_batch."""
        calls = []
        real = BatchedAnalyticalEvaluator.evaluate_batch

        def spying(self, workload, base_config, names, rows):
            calls.append(len(list(rows)))
            return real(self, workload, base_config, names, rows)

        monkeypatch.setattr(BatchedAnalyticalEvaluator, "evaluate_batch",
                            spying)
        grid = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}
        points = sweep_design_space(small_workload, grid)
        assert len(points) == 6
        assert sum(calls) == 6  # every point scored through the batch axis

    def test_sensitivity_shares_the_batch_path(self, small_workload,
                                               monkeypatch):
        calls = []
        real = BatchedAnalyticalEvaluator.evaluate_batch

        def spying(self, workload, base_config, names, rows):
            rows = list(rows)
            calls.append(len(rows))
            return real(self, workload, base_config, names, rows)

        monkeypatch.setattr(BatchedAnalyticalEvaluator, "evaluate_batch",
                            spying)
        rows = sensitivity(small_workload, "mac_lines", [16, 32, 64])
        assert sum(calls) == 3  # one batch, not three evaluator calls
        per_point = sensitivity(small_workload, "mac_lines", [16, 32, 64],
                                evaluator=AnalyticalEvaluator())
        assert rows == per_point

    def test_invalid_point_falls_back_to_per_point_failures(
            self, small_workload):
        """A chunk holding an invalid point (1 MAC line breaks the
        allocator) must fail per point, exactly like the unbatched sweep
        — good points kept, bad point warn-dropped."""
        grid = {"mac_lines": [1, 32, 64]}
        with pytest.warns(RuntimeWarning, match="MAC lines"):
            per_point = sweep_design_space(small_workload, grid,
                                           evaluator=AnalyticalEvaluator())
        with pytest.warns(RuntimeWarning, match="MAC lines"):
            batched = sweep_design_space(small_workload, grid)
        assert batched == per_point
        assert [p.parameter("mac_lines") for p in batched] == [32, 64]

    def test_invalid_ae_falls_back_per_point(self, small_workload):
        grid = {"ae_compression": [1.5, 0.5]}
        with pytest.warns(RuntimeWarning, match="ae_compression"):
            batched = sweep_design_space(small_workload, grid)
        with pytest.warns(RuntimeWarning, match="ae_compression"):
            per_point = sweep_design_space(small_workload, grid,
                                           evaluator=AnalyticalEvaluator())
        assert batched == per_point
        assert [p.parameter("ae_compression") for p in batched] == [0.5]

    def test_unknown_parameter_still_raises(self, small_workload):
        with pytest.raises(KeyError):
            sweep_design_space(small_workload, {"voltage": [0.9]})

    def test_batch_size_mismatch_falls_back(self, small_workload):
        """A batch implementation returning the wrong number of results
        is treated as a failed batch (loudly), not silently mis-zipped."""

        class Truncating(BatchedAnalyticalEvaluator):
            def evaluate_batch(self, workload, base_config, names, rows):
                return super().evaluate_batch(
                    workload, base_config, names, list(rows)[:-1]
                )

        grid = {"mac_lines": [16, 32, 64]}
        with pytest.warns(RuntimeWarning, match="evaluate_batch failed"):
            points = sweep_design_space(small_workload, grid,
                                        evaluator=Truncating())
        assert points == sweep_design_space(small_workload, grid)

    def test_fallback_is_announced(self, small_workload):
        """A broken batch path must not silently degrade to per-point
        scoring — results would stay bit-identical, hiding the lost
        speedup."""

        class Broken(BatchedAnalyticalEvaluator):
            def evaluate_batch(self, workload, base_config, names, rows):
                raise RuntimeError("batch kernel exploded")

        with pytest.warns(RuntimeWarning, match="batch kernel exploded"):
            points = sweep_design_space(small_workload,
                                        {"mac_lines": [16, 32]},
                                        evaluator=Broken())
        assert points == sweep_design_space(small_workload,
                                            {"mac_lines": [16, 32]})

    def test_forced_pool_chunk_plan_stays_bounded(self, small_workload,
                                                  monkeypatch):
        """min_parallel_s=0 (pilot bypassed) must not plan one unbounded
        evaluate_batch call per worker on a big grid."""
        serial = sweep_design_space(
            small_workload, {"mac_lines": list(range(8, 200, 4))}
        )
        captured = {}
        real = dse_module._stream_evaluations

        def spying(workload, base_config, names, indexed, n_jobs,
                   chunksize, evaluator, keep_failures=False):
            captured["chunksize"] = chunksize
            # Run serially: the planned chunk size is what is under test.
            return real(workload, base_config, names, indexed, 1,
                        chunksize, evaluator, keep_failures=keep_failures)

        monkeypatch.setattr(dse_module, "_stream_evaluations", spying)
        monkeypatch.setattr(dse_module, "_BATCH_CHUNK", 8)
        forced = sweep_design_space(
            small_workload, {"mac_lines": list(range(8, 200, 4))},
            n_jobs=2, min_parallel_s=0.0,
        )
        assert forced == serial
        # 48 points / 2 workers would be 24-point chunks; the batch cap
        # (patched to 8) must bound the plan.
        assert captured["chunksize"] == 8

    def test_cli_batch_size_validated(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="batch-size"):
            main(["dse", "--models", "deit-tiny",
                  "--grid", "mac_lines=16,32", "--batch-size", "-1"])
        with pytest.raises(SystemExit, match="batch-size"):
            main(["dse", "--models", "deit-tiny",
                  "--grid", "mac_lines=16,32", "--batch-size", "0"])


class TestSimulateAttentionGrid:
    def test_unknown_column_rejected(self, small_workload):
        from repro.hw.accelerator import ViTCoDAccelerator

        with pytest.raises(ValueError, match="unknown design-point"):
            ViTCoDAccelerator().simulate_attention_grid(
                small_workload, {"voltage": np.array([0.9])}
            )

    def test_mismatched_column_lengths_rejected(self, small_workload):
        from repro.hw.accelerator import ViTCoDAccelerator

        with pytest.raises(ValueError, match="disagree on length"):
            ViTCoDAccelerator().simulate_attention_grid(
                small_workload,
                {"num_mac_lines": np.array([16, 32]),
                 "ae_compression": np.array([0.5])},
            )

    def test_empty_columns_is_own_design_point(self, small_workload):
        from repro.hw.accelerator import ViTCoDAccelerator

        accel = ViTCoDAccelerator()
        seconds, energy = accel.simulate_attention_grid(small_workload, {})
        report = accel.simulate_attention(small_workload)
        assert seconds.shape == (1,) and energy.shape == (1,)
        assert seconds[0] == report.seconds
        assert energy[0] == report.energy_joules

    def test_ablation_flags_respected(self, small_workload):
        """The grid walk inherits non-swept accelerator flags (dataflow,
        two_pronged) from the instance, like per-point construction
        would."""
        from repro.hw.accelerator import ViTCoDAccelerator

        for kwargs in ({"two_pronged": False},
                       {"dataflow": "s_stationary"},
                       {"use_ae": False}):
            accel = ViTCoDAccelerator(**kwargs)
            cols = {"num_mac_lines": np.array([32, 64], dtype=np.int64)}
            seconds, energy = accel.simulate_attention_grid(small_workload,
                                                            cols)
            for i, lines in enumerate((32, 64)):
                from dataclasses import replace

                ref = ViTCoDAccelerator(
                    config=replace(VITCOD_DEFAULT, num_mac_lines=lines),
                    **kwargs,
                ).simulate_attention(small_workload)
                assert seconds[i] == ref.seconds
                assert energy[i] == ref.energy_joules


class TestGridAllocator:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_array_total_lines_matches_scalar(self, data):
        from repro.hw import allocate_mac_lines, allocate_mac_lines_batched

        lines = data.draw(st.lists(st.integers(2, 512), min_size=1,
                                   max_size=4))
        denser = data.draw(st.lists(st.integers(0, 10**9), min_size=1,
                                    max_size=4))
        sparser = data.draw(st.lists(
            st.integers(0, 10**9), min_size=len(denser),
            max_size=len(denser)))
        lines_col = np.array(lines, dtype=np.int64)[:, None]
        d_grid, s_grid = allocate_mac_lines_batched(
            lines_col, np.array(denser), np.array(sparser)
        )
        assert d_grid.shape == (len(lines), len(denser))
        for i, total in enumerate(lines):
            for j, (d, s) in enumerate(zip(denser, sparser)):
                ref = allocate_mac_lines(total, d, s)
                assert (d_grid[i, j], s_grid[i, j]) == \
                    (ref.denser_lines, ref.sparser_lines)

    def test_array_total_lines_below_two_rejected(self):
        from repro.hw import allocate_mac_lines_batched

        with pytest.raises(ValueError, match="at least 2 MAC lines"):
            allocate_mac_lines_batched(np.array([4, 1]), [10], [10])

    def test_huge_workload_fallback_with_array_lines(self):
        from repro.hw import allocate_mac_lines, allocate_mac_lines_batched

        lines = np.array([64, 127], dtype=np.int64)[:, None]
        denser = np.array([10**17, 2**53 + 1])
        sparser = np.array([1, 2**53 - 1])
        d_grid, s_grid = allocate_mac_lines_batched(lines, denser, sparser)
        for i, total in enumerate((64, 127)):
            for j in range(2):
                ref = allocate_mac_lines(total, int(denser[j]),
                                         int(sparser[j]))
                assert (d_grid[i, j], s_grid[i, j]) == \
                    (ref.denser_lines, ref.sparser_lines)


class TestParetoMaskAgreement:
    """Satellite: the O(n log n) 2-D mask vs the pairwise reference on
    duplicated and tied objective values."""

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_sorted_mask_equals_pairwise_with_ties(self, data):
        n = data.draw(st.integers(1, 40))
        # Tiny value alphabet forces duplicate points and per-axis ties.
        values = np.array(
            data.draw(st.lists(
                st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=n, max_size=n,
            )),
            dtype=np.float64,
        )
        sorted_mask = dse_module._pareto_mask_sorted_2d(values)
        pairwise_mask = dse_module._pareto_mask_pairwise(values)
        assert (sorted_mask == pairwise_mask).all()
