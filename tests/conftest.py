"""Shared fixtures: small trained models and paper-scale workloads.

Training fixtures are session-scoped (one training run shared by the whole
suite) and deliberately tiny — the algorithm under test operates on attention
maps whose structure is scale-independent.
"""

import numpy as np
import pytest

from repro.models import pretrained
from repro.hw import synthetic_attention_workload
from repro.sparsity import synthetic_vit_attention, split_and_conquer

FAST_DATASET = dict(num_samples=192, num_classes=3)


@pytest.fixture(scope="session")
def tiny_vit():
    """A trained deit-tiny sim-scale model (shared across the suite)."""
    return pretrained("deit-tiny", epochs=3, dataset_kwargs=FAST_DATASET)


@pytest.fixture(scope="session")
def tiny_levit():
    return pretrained("levit-128", epochs=3, dataset_kwargs=FAST_DATASET)


@pytest.fixture(scope="session")
def paper_scale_result():
    """Split-and-conquer at paper scale (197 tokens, 12 heads, 90%)."""
    maps = synthetic_vit_attention(197, num_heads=12, seed=7)
    return split_and_conquer(maps, target_sparsity=0.9, theta_d=0.25)


@pytest.fixture(scope="session")
def paper_scale_workload():
    return synthetic_attention_workload(197, 12, 64, sparsity=0.9, seed=7)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
