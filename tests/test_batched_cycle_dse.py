"""Grid-batched cycle-accurate DSE: the batch axis must be invisible.

The contract under test: scoring a grid chunk with
``BatchedCycleSimEvaluator.evaluate_batch`` (one (points × layers × jobs)
max-plus walk) is **bit-for-bit** the per-point ``CycleSimEvaluator``
loop — points, ordering, Pareto frontier, failure attribution, structural
rejections.  Property-tested over random grids of every parameter the
cycle simulator models; plus the width-band sub-batching invariants, the
whole-chunk ``ParetoFront.offer_all`` equivalence, and the adaptive
hybrid fine phase.  This is the CI-enforced guarantee that makes batching
an execution detail rather than a model change.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.harness import dse as dse_module
from repro.harness.dse import (
    DesignPoint,
    ParetoFront,
    iter_design_space,
    iter_indexed_design_points,
    pareto_frontier,
    sweep_design_space,
)
from repro.hw import model_workload, synthetic_attention_workload
from repro.hw.params import VITCOD_DEFAULT
from repro.hw import cycle_sim as cycle_sim_module
from repro.hw.cycle_sim import CycleAccurateSimulator, _width_bands
from repro.models import get_config
from repro.sim import (
    BatchedCycleSimEvaluator,
    BatchEvaluator,
    CycleSimEvaluator,
    HybridEvaluator,
    UnsupportedParameterError,
    evaluator_from_spec,
    evaluator_spec,
    resolve_evaluator,
)
from repro.sim.evaluator import _DSE_PARAMETERS


@pytest.fixture(scope="module")
def small_workload():
    return model_workload(get_config("deit-tiny"), sparsity=0.9)


# ----------------------------------------------------------------------
# Random grids over every cycle-modelled parameter
# ----------------------------------------------------------------------
def cycle_grid_strategy():
    """Random DSE grids over the knobs the cycle simulator models
    (``q_forwarding_hit_rate`` is structurally rejected — tested
    separately), including the edge values (AE off via ``None``,
    fractional buffer sizes, minimum MAC lines)."""
    mac_lines = st.lists(st.integers(2, 512), min_size=1, max_size=3,
                         unique=True)
    bandwidth = st.lists(
        st.sampled_from([9.6, 19.2, 38.4, 76.8, 153.6, 307.2]),
        min_size=1, max_size=2, unique=True,
    )
    act_buffer = st.lists(st.sampled_from([0.5, 32, 64, 128, 320, 512]),
                          min_size=1, max_size=2, unique=True)
    ae = st.lists(st.sampled_from([None, 0.25, 0.5, 0.75, 1.0]),
                  min_size=1, max_size=3, unique=True)
    options = {
        "mac_lines": mac_lines,
        "bandwidth_gbps": bandwidth,
        "act_buffer_kb": act_buffer,
        "ae_compression": ae,
    }
    return st.sets(
        st.sampled_from(sorted(options)), min_size=1, max_size=4
    ).flatmap(lambda names: st.fixed_dictionaries(
        {name: options[name] for name in names}
    ))


class TestBitExactness:
    @given(grid=cycle_grid_strategy())
    @settings(max_examples=12, deadline=None)
    def test_batched_sweep_equals_per_point(self, small_workload, grid):
        """Points, grid ordering and frontier are bit-identical."""
        per_point = sweep_design_space(small_workload, grid,
                                       evaluator=CycleSimEvaluator())
        batched = sweep_design_space(small_workload, grid,
                                     evaluator="cycle")
        assert batched == per_point  # DesignPoint eq: every field bit-equal
        assert pareto_frontier(batched) == pareto_frontier(per_point)

    @given(grid=cycle_grid_strategy())
    @settings(max_examples=8, deadline=None)
    def test_evaluate_batch_matches_call_loop(self, small_workload, grid):
        """The raw batch surface, without the DSE engine in between."""
        from itertools import product

        names = sorted(grid)
        rows = list(product(*(grid[n] for n in names)))
        evaluator = BatchedCycleSimEvaluator()
        batch = evaluator.evaluate_batch(small_workload, VITCOD_DEFAULT,
                                         names, rows)
        assert len(batch) == len(rows)
        for row, metrics in zip(rows, batch):
            expected = dse_module._evaluate_design_point(
                small_workload, VITCOD_DEFAULT, names, row,
                CycleSimEvaluator(),
            )
            assert metrics.seconds == expected.seconds
            assert metrics.energy_joules == expected.energy_joules

    def test_fused_scan_batches_identically(self, small_workload):
        grid = {"mac_lines": [16, 64], "ae_compression": [None, 0.5]}
        per_point = sweep_design_space(
            small_workload, grid, evaluator=CycleSimEvaluator(scan="fused")
        )
        batched = sweep_design_space(
            small_workload, grid,
            evaluator=BatchedCycleSimEvaluator(scan="fused"),
        )
        assert batched == per_point

    def test_indexed_subset_matches_per_point(self, small_workload):
        grid = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}
        per_point = dict(iter_indexed_design_points(
            small_workload, grid, [5, 0, 3],
            evaluator=CycleSimEvaluator(),
        ))
        batched = dict(iter_indexed_design_points(
            small_workload, grid, [5, 0, 3], evaluator="cycle",
        ))
        assert batched == per_point

    def test_parallel_and_forced_pool_match_serial(self, small_workload):
        grid = {"mac_lines": [16, 32, 64], "bandwidth_gbps": [19.2, 76.8]}
        serial = sweep_design_space(small_workload, grid, evaluator="cycle")
        assert sweep_design_space(small_workload, grid, n_jobs=3,
                                  evaluator="cycle") == serial
        assert sweep_design_space(small_workload, grid, n_jobs=3,
                                  min_parallel_s=0.0,
                                  evaluator="cycle") == serial

    def test_sub_batched_walk_matches(self, small_workload, monkeypatch):
        """A tiny cell budget forces many design-point sub-batches; the
        walk must stay bit-identical (sub-batching is memory bounding,
        not a semantics change)."""
        grid = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}
        reference = sweep_design_space(small_workload, grid,
                                       evaluator="cycle")
        monkeypatch.setattr(cycle_sim_module, "_GRID_CELL_BUDGET", 1)
        assert sweep_design_space(small_workload, grid,
                                  evaluator="cycle") == reference


class TestBatchEngine:
    def test_cycle_resolves_batch_capable(self):
        evaluator = resolve_evaluator("cycle")
        assert isinstance(evaluator, BatchedCycleSimEvaluator)
        assert isinstance(evaluator, CycleSimEvaluator)  # same strategy
        assert isinstance(evaluator, BatchEvaluator)
        assert dse_module._batch_capable(evaluator)
        assert not dse_module._batch_capable(CycleSimEvaluator())

    def test_scalar_engine_never_batches(self, small_workload):
        """The scalar event loop is the independent oracle: its evaluator
        must keep the per-point path even though the class has an
        ``evaluate_batch`` method."""
        scalar = BatchedCycleSimEvaluator(engine="scalar")
        assert not scalar.batch_capable
        assert not dse_module._batch_capable(scalar)
        assert BatchedCycleSimEvaluator().batch_capable
        grid = {"mac_lines": [16, 64]}
        assert sweep_design_space(small_workload, grid,
                                  evaluator=scalar) == \
            sweep_design_space(small_workload, grid, evaluator="cycle")

    def test_spec_round_trip_shared_with_per_point(self):
        spec = {"name": "cycle", "engine": "vectorized", "scan": "split"}
        assert evaluator_spec(BatchedCycleSimEvaluator()) == spec
        assert evaluator_spec(CycleSimEvaluator()) == spec
        rebuilt = evaluator_from_spec(spec)
        assert isinstance(rebuilt, BatchedCycleSimEvaluator)
        assert evaluator_spec(rebuilt) == spec

    def test_serial_sweep_uses_batch_calls(self, small_workload,
                                           monkeypatch):
        """The engine really routes cycle chunks through evaluate_batch."""
        calls = []
        real = BatchedCycleSimEvaluator.evaluate_batch

        def spying(self, workload, base_config, names, rows):
            rows = list(rows)
            calls.append(len(rows))
            return real(self, workload, base_config, names, rows)

        monkeypatch.setattr(BatchedCycleSimEvaluator, "evaluate_batch",
                            spying)
        grid = {"mac_lines": [16, 32, 64], "ae_compression": [None, 0.5]}
        points = sweep_design_space(small_workload, grid, evaluator="cycle")
        assert len(points) == 6
        assert sum(calls) == 6  # every point scored through the batch axis

    def test_invalid_point_falls_back_to_per_point_failures(
            self, small_workload):
        """A chunk holding an invalid point (1 MAC line breaks the
        allocator) must fail per point, exactly like the unbatched sweep
        — good points kept, bad point warn-dropped."""
        grid = {"mac_lines": [1, 32, 64]}
        with pytest.warns(RuntimeWarning, match="MAC lines"):
            per_point = sweep_design_space(small_workload, grid,
                                           evaluator=CycleSimEvaluator())
        with pytest.warns(RuntimeWarning, match="MAC lines"):
            batched = sweep_design_space(small_workload, grid,
                                         evaluator="cycle")
        assert batched == per_point
        assert [p.parameter("mac_lines") for p in batched] == [32, 64]

    def test_invalid_ae_falls_back_per_point(self, small_workload):
        grid = {"ae_compression": [1.5, 0.5]}
        with pytest.warns(RuntimeWarning, match="ae_compression"):
            batched = sweep_design_space(small_workload, grid,
                                         evaluator="cycle")
        with pytest.warns(RuntimeWarning, match="ae_compression"):
            per_point = sweep_design_space(small_workload, grid,
                                           evaluator=CycleSimEvaluator())
        assert batched == per_point
        assert [p.parameter("ae_compression") for p in batched] == [0.5]

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_unsupported_parameter_raises_cleanly(self, small_workload,
                                                  n_jobs):
        """Sweeping a knob the cycle simulator does not model is a
        structural error in batched mode exactly as per point — raised
        clean, with no fallback RuntimeWarning noise."""
        grid = {"mac_lines": [16, 32], "q_forwarding_hit_rate": [0.0, 0.9]}
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(UnsupportedParameterError,
                               match="q_forwarding_hit_rate"):
                sweep_design_space(small_workload, grid, n_jobs=n_jobs,
                                   evaluator="cycle")

    def test_supported_kwargs_derived_from_table(self):
        """Satellite: the per-point rejection set comes from the shared
        DSE parameter table, so batched and per-point paths cannot
        drift."""
        expected = frozenset(
            key
            for parameter in _DSE_PARAMETERS.values()
            if parameter.cycle_modelled
            for key in parameter.kwargs_keys
        )
        assert CycleSimEvaluator._SUPPORTED_KWARGS == expected
        assert BatchedCycleSimEvaluator._SUPPORTED_KWARGS == expected
        assert expected == frozenset({"use_ae", "ae_compression"})
        # Every parameter the table declares routes through both forms.
        assert set(_DSE_PARAMETERS) == {
            "mac_lines", "bandwidth_gbps", "act_buffer_kb",
            "ae_compression", "q_forwarding_hit_rate",
        }


class TestWidthBands:
    @given(widths=st.lists(st.integers(0, 5000), max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_band_partition_invariants(self, widths):
        """Every positive-width row lands in exactly one band; inside a
        band the widest row is less than twice the narrowest, so no row
        is ever padded across bands (padding overhead < 2x by
        construction)."""
        bands = _width_bands(np.array(widths, dtype=np.int64))
        covered = np.concatenate([rows for rows in bands]) if bands else \
            np.array([], dtype=np.int64)
        expected = [i for i, w in enumerate(widths) if w > 0]
        assert sorted(covered.tolist()) == expected
        for rows in bands:
            band_widths = [widths[i] for i in rows.tolist()]
            assert min(band_widths) > 0
            assert max(band_widths) < 2 * min(band_widths)

    def test_geometry_pads_within_band_only(self):
        """The grid geometry's padded matrices are exactly each band's
        own width — a narrow denser row never pays for the sparser
        engine's width (the failure mode that made "fused" lose to
        "split" in the whole-model scans)."""
        layers = [synthetic_attention_workload(96, 2, 32, sparsity=s, seed=i)
                  for i, s in enumerate((0.95, 0.7))]
        sim = CycleAccurateSimulator()
        geometry = sim._grid_geometry(layers)
        n_d, n_s = geometry["n_d"], geometry["n_s"]
        all_widths = np.concatenate([n_d, n_s])
        seen = []
        for band in geometry["compute_bands"]:
            rows = np.where(band["is_d"], band["layer"],
                            band["layer"] + len(layers))
            seen.extend(rows.tolist())
            widths = all_widths[rows]
            assert band["pad"].shape[1] == widths.max()
            assert (band["lengths"] == widths).all()
            assert widths.max() < 2 * widths.min()
        assert sorted(seen) == sorted(
            i for i, w in enumerate(all_widths) if w > 0
        )
        for band in geometry["compute_bands"]:
            # Softmax slack offsets: finite exactly on the real job
            # slots (padded slots must stay +inf so the max-reduce
            # ignores them).
            assert band["sm_off"].shape == band["pad"].shape
            assert np.isfinite(band["sm_off"][~band["mask"]]).all()
            assert np.isinf(band["sm_off"][band["mask"]]).all()


class TestSimulateAttentionGrid:
    def test_unknown_column_rejected(self, small_workload):
        with pytest.raises(ValueError, match="unknown design-point"):
            CycleAccurateSimulator().simulate_attention_grid(
                small_workload, {"voltage": np.array([0.9])}
            )

    def test_mismatched_column_lengths_rejected(self, small_workload):
        with pytest.raises(ValueError, match="disagree on length"):
            CycleAccurateSimulator().simulate_attention_grid(
                small_workload,
                {"num_mac_lines": np.array([16, 32]),
                 "ae_compression": np.array([0.5])},
            )

    def test_empty_columns_is_own_design_point(self, small_workload):
        sim = CycleAccurateSimulator()
        totals = sim.simulate_attention_grid(small_workload, {})
        result = sim.simulate_attention(small_workload)
        assert totals["makespan"].shape == (1,)
        for name in ("makespan", "sddmm_makespan", "spmm_makespan",
                     "denser_busy", "sparser_busy", "dram_busy",
                     "softmax_busy"):
            assert totals[name][0] == getattr(result, name)
        assert totals["jobs_executed"] == result.jobs_executed

    def test_custom_dram_model_rejected(self, small_workload):
        from repro.hw.dram import DramModel

        class StatefulDram(DramModel):
            pass

        sim = CycleAccurateSimulator(dram=StatefulDram())
        with pytest.raises(ValueError, match="plain DramModel"):
            sim.simulate_attention_grid(small_workload, {})


class TestOfferAll:
    @staticmethod
    def _points(values):
        return [
            DesignPoint(parameters=(("i", i),), seconds=float(s),
                        energy_joules=float(e), area_proxy=0.0)
            for i, (s, e) in enumerate(values)
        ]

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_offer_all_equals_sequential_offers(self, data):
        """Whole-chunk pruning is bit-for-bit the offer() loop: same kept
        points (at offer time), same final frontier, same counter —
        including duplicate and tied objective values, and any chunk
        split of the same stream."""
        n = data.draw(st.integers(1, 30))
        values = data.draw(st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=n, max_size=n,
        ))
        points = self._points(values)
        sequential = ParetoFront()
        kept_seq = [p for p in points if sequential.offer(p)]
        chunked = ParetoFront()
        kept_chunks = []
        remaining = points
        while remaining:
            size = data.draw(st.integers(1, len(remaining)))
            kept_chunks.extend(chunked.offer_all(remaining[:size]))
            remaining = remaining[size:]
        assert kept_chunks == kept_seq
        assert chunked.points == sequential.points
        assert chunked.offered == sequential.offered

    def test_streaming_frontier_matches_per_point_offers(
            self, small_workload):
        """iter_design_space's chunked frontier pruning yields the same
        candidates and final frontier as per-point offers."""
        grid = {"mac_lines": [8, 16, 32, 64, 128],
                "ae_compression": [None, 0.5]}
        batched_front = ParetoFront()
        batched = list(iter_design_space(small_workload, grid,
                                         frontier=batched_front,
                                         evaluator="cycle"))
        per_point_front = ParetoFront()
        per_point = list(iter_design_space(small_workload, grid,
                                           frontier=per_point_front,
                                           evaluator=CycleSimEvaluator()))
        assert batched == per_point
        assert batched_front.points == per_point_front.points
        assert batched_front.offered == per_point_front.offered


class TestHybrid:
    def test_hybrid_fine_phase_batches_identically(self, small_workload):
        grid = {"mac_lines": [8, 16, 32, 64], "ae_compression": [None, 0.5]}
        from repro.sim import AnalyticalEvaluator

        batched = sweep_design_space(small_workload, grid,
                                     evaluator="hybrid")
        per_point = sweep_design_space(
            small_workload, grid,
            evaluator=HybridEvaluator(coarse=AnalyticalEvaluator(),
                                      fine=CycleSimEvaluator()),
        )
        assert batched == per_point

    def test_adaptive_prunes_but_preserves_fine_frontier(
            self, small_workload):
        """Satellite: the adaptive fine phase may skip frontier-adjacent
        survivors, but the fine Pareto frontier must match the full
        re-score's, and the survivor list must be a subset of it."""
        grid = {"mac_lines": [8, 16, 32, 64, 128, 256],
                "bandwidth_gbps": [19.2, 76.8, 153.6],
                "ae_compression": [None, 0.25, 0.5, 1.0]}
        full = sweep_design_space(small_workload, grid, evaluator="hybrid")
        adaptive = sweep_design_space(
            small_workload, grid, evaluator=HybridEvaluator(adaptive=True)
        )
        assert pareto_frontier(adaptive) == pareto_frontier(full)
        assert set(p.parameters for p in adaptive) <= \
            set(p.parameters for p in full)
        assert len(adaptive) <= len(full)

    def test_adaptive_is_deterministic_across_n_jobs(self, small_workload):
        grid = {"mac_lines": [8, 16, 32, 64, 128],
                "ae_compression": [None, 0.5]}
        evaluator = HybridEvaluator(adaptive=True)
        serial = sweep_design_space(small_workload, grid,
                                    evaluator=evaluator)
        parallel = sweep_design_space(small_workload, grid, n_jobs=3,
                                      evaluator=evaluator)
        assert parallel == serial

    def test_adaptive_spec_round_trip(self):
        evaluator = HybridEvaluator(adaptive=True, band_slack=0.1)
        spec = evaluator_spec(evaluator)
        assert spec["adaptive"] is True and spec["band_slack"] == 0.1
        rebuilt = evaluator_from_spec(spec)
        assert rebuilt.adaptive and rebuilt.band_slack == 0.1
        # Non-adaptive hybrids keep the historical spec (manifest compat).
        assert "adaptive" not in evaluator_spec(HybridEvaluator())

    def test_band_slack_validated(self):
        with pytest.raises(ValueError, match="band_slack"):
            HybridEvaluator(adaptive=True, band_slack=1.5)


class TestDistShards:
    def test_cycle_shards_batched_vs_per_point_stores_identical(
            self, small_workload, tmp_path):
        """A batched cycle shard writes the records a per-point shard
        would — byte-identical stores, so mixed fleets are safe."""
        from repro.dist import merge_store, run_shard

        grid = {"mac_lines": [1, 16, 32, 64], "ae_compression": [None, 0.5]}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for shard in ("1/2", "2/2"):
                run_shard(small_workload, grid, shard,
                          tmp_path / "batched", evaluator="cycle")
                run_shard(small_workload, grid, shard,
                          tmp_path / "per_point",
                          evaluator=CycleSimEvaluator())
            batched = merge_store(tmp_path / "batched",
                                  workload=small_workload)
            per_point = merge_store(tmp_path / "per_point",
                                    workload=small_workload)
        assert batched.points == per_point.points
        assert batched.frontier == per_point.frontier
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            direct = sweep_design_space(small_workload, grid,
                                        evaluator="cycle")
        assert list(batched.points) == direct

    def test_merge_rejects_adaptive_hybrid(self, small_workload, tmp_path):
        from repro.dist import merge_store, run_shard

        grid = {"mac_lines": [16, 32]}
        run_shard(small_workload, grid, "1/1", tmp_path,
                  evaluator=HybridEvaluator())
        with pytest.raises(ValueError, match="adaptive"):
            merge_store(tmp_path, workload=small_workload,
                        evaluator=HybridEvaluator(adaptive=True))
