"""Tests for the compiler pipeline: parser, codegen, functional executor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    Opcode,
    compile_layers,
    dense_masked_attention_reference,
    execute_attention_layer,
    parse_layers,
)
from repro.sparsity import split_and_conquer, synthetic_vit_attention


@pytest.fixture(scope="module")
def layer_results():
    return [
        split_and_conquer(
            synthetic_vit_attention(48, num_heads=4, seed=s),
            target_sparsity=0.85, theta_d=0.25,
        )
        for s in range(3)
    ]


class TestParser:
    def test_one_config_per_layer(self, layer_results):
        cfgs = parse_layers(layer_results, head_dim=16)
        assert len(cfgs) == 3
        assert [c.layer_index for c in cfgs] == [0, 1, 2]

    def test_nnz_split_matches(self, layer_results):
        cfgs = parse_layers(layer_results, head_dim=16)
        for cfg, res in zip(cfgs, layer_results):
            assert cfg.denser_nnz == sum(p.denser_nnz for p in res.partitions)
            assert cfg.sparser_nnz == sum(p.sparser_nnz for p in res.partitions)

    def test_lines_sum_to_array(self, layer_results):
        for cfg in parse_layers(layer_results, head_dim=16):
            assert cfg.denser_lines + cfg.sparser_lines == 64

    def test_sparsity_property(self, layer_results):
        cfg = parse_layers(layer_results, head_dim=16)[0]
        assert abs(cfg.sparsity - 0.85) < 0.03


class TestCodegen:
    def test_program_structure(self, layer_results):
        cfgs = parse_layers(layer_results, head_dim=16)
        prog = compile_layers(cfgs, use_ae=True)
        assert prog.count(Opcode.SDDMM_DENSE) == 3
        assert prog.count(Opcode.SDDMM_SPARSE) == 3
        assert prog.count(Opcode.SOFTMAX) == 3
        assert prog.count(Opcode.SPMM) == 3
        assert prog.count(Opcode.DECODE) == 6  # Q and K per layer
        assert prog.count(Opcode.CONFIGURE) == 6  # inter- and intra-PE modes

    def test_no_decode_without_ae(self, layer_results):
        cfgs = parse_layers(layer_results, head_dim=16)
        prog = compile_layers(cfgs, use_ae=False)
        assert prog.count(Opcode.DECODE) == 0

    def test_pipeline_order_within_layer(self, layer_results):
        cfgs = parse_layers(layer_results[:1], head_dim=16)
        ops = [inst.opcode for inst in compile_layers(cfgs)]
        assert ops.index(Opcode.LOAD_INDEX) < ops.index(Opcode.SDDMM_SPARSE)
        assert ops.index(Opcode.SDDMM_DENSE) < ops.index(Opcode.SOFTMAX)
        assert ops.index(Opcode.SOFTMAX) < ops.index(Opcode.SPMM)
        assert ops.index(Opcode.SPMM) < ops.index(Opcode.STORE)

    def test_listing_renders(self, layer_results):
        cfgs = parse_layers(layer_results[:1], head_dim=16)
        listing = compile_layers(cfgs).listing()
        assert "sddmm_sparse" in listing
        assert "configure" in listing


class TestExecutor:
    def test_matches_dense_reference(self, layer_results, rng):
        res = layer_results[0]
        q, k, v = rng.standard_normal((3, 4, 48, 16))
        out = execute_attention_layer(q, k, v, res)
        ref = dense_masked_attention_reference(q, k, v, res.mask)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_shape_mismatch_raises(self, layer_results, rng):
        res = layer_results[0]
        q, k, v = rng.standard_normal((3, 4, 32, 16))  # wrong token count
        with pytest.raises(ValueError):
            execute_attention_layer(q, k, v, res)

    def test_custom_scale(self, layer_results, rng):
        res = layer_results[0]
        q, k, v = rng.standard_normal((3, 4, 48, 16))
        out = execute_attention_layer(q, k, v, res, scale=0.1)
        ref = dense_masked_attention_reference(q, k, v, res.mask, scale=0.1)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_reference_rows_are_distributions(self, layer_results, rng):
        res = layer_results[0]
        q, k, v = rng.standard_normal((3, 4, 48, 16))
        ones = np.ones_like(v)
        out = execute_attention_layer(q, k, ones, res)
        # With V = 1, every output row must be exactly 1 (weights sum to 1).
        np.testing.assert_allclose(out, 1.0, atol=1e-10)

    @given(
        seed=st.integers(min_value=0, max_value=300),
        sparsity=st.floats(min_value=0.5, max_value=0.95),
    )
    @settings(max_examples=15, deadline=None)
    def test_executor_equivalence_property(self, seed, sparsity):
        """The polarized two-engine execution is numerically equivalent to
        dense masked attention for any mask produced by Algorithm 1."""
        rng = np.random.default_rng(seed)
        maps = synthetic_vit_attention(24, num_heads=2, seed=seed)
        res = split_and_conquer(maps, target_sparsity=sparsity, theta_d=0.3)
        q, k, v = rng.standard_normal((3, 2, 24, 8))
        out = execute_attention_layer(q, k, v, res)
        ref = dense_masked_attention_reference(q, k, v, res.mask)
        np.testing.assert_allclose(out, ref, atol=1e-9)
