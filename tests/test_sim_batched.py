"""Batched whole-model simulation == per-layer loop, bit for bit.

The batched cycle-sim pipeline runs every layer in one 2-D max-plus scan
with per-layer reset rows; durations live on the ``2**-20``-cycle grid, so
the batched and per-layer event algebras are exact in double precision and
must agree exactly (same argument as the scalar/vectorized equivalence).
The batched analytical model mirrors the per-layer phase expressions
operation for operation, so it is held to exact equality too.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import (
    AttentionWorkload,
    CycleAccurateSimulator,
    HeadWorkload,
    ViTCoDAccelerator,
    dense_attention_workload,
    merge_cycle_results,
    model_workload,
    synthetic_attention_workload,
)
from repro.models import get_config


def random_layer(data, tag):
    """One hand-rolled AttentionWorkload with explicit per-column counts."""
    num_tokens = data.draw(st.integers(4, 40), label=f"{tag}-tokens")
    head_dim = data.draw(st.integers(2, 32), label=f"{tag}-dim")
    num_heads = data.draw(st.integers(1, 3), label=f"{tag}-heads")
    heads = []
    for h in range(num_heads):
        ngt = data.draw(st.integers(0, num_tokens), label=f"{tag}-ngt{h}")
        col_nnz = np.asarray(
            data.draw(
                st.lists(st.integers(0, num_tokens),
                         min_size=num_tokens - ngt,
                         max_size=num_tokens - ngt),
                label=f"{tag}-nnz{h}",
            ),
            dtype=np.int64,
        )
        heads.append(HeadWorkload(
            num_tokens=num_tokens,
            head_dim=head_dim,
            num_global_tokens=ngt,
            denser_nnz=ngt * num_tokens,
            sparser_nnz=int(col_nnz.sum()),
            sparser_index_bytes=int(4 * (col_nnz.size + 1) + col_nnz.sum()),
            sparser_column_nnz=col_nnz,
        ))
    return AttentionWorkload(num_tokens=num_tokens, num_heads=num_heads,
                             head_dim=head_dim, heads=heads)


def assert_batched_equals_layer_loop(layers, **sim_kwargs):
    """Whole-model batched == per-layer loop for BOTH engines, exactly."""
    vec = CycleAccurateSimulator(engine="vectorized", **sim_kwargs)
    scalar = CycleAccurateSimulator(engine="scalar", **sim_kwargs)
    batched = vec.simulate_attention(layers)
    vec_loop = merge_cycle_results(vec.simulate_layer(l) for l in layers)
    scalar_loop = scalar.simulate_attention(layers)
    assert dataclasses.astuple(batched) == dataclasses.astuple(vec_loop)
    assert dataclasses.astuple(batched) == dataclasses.astuple(scalar_loop)
    return batched


class TestCycleSimBatched:
    def test_deit_base_model(self):
        wl = model_workload(get_config("deit-base"), sparsity=0.9)
        total = assert_batched_equals_layer_loop(wl.attention_layers)
        assert len(total.per_layer) == 12

    def test_mixed_shape_layers(self):
        """LeViT-style stage changes: token count, heads and dims differ."""
        wl = model_workload(get_config("levit-128"), sparsity=0.9)
        assert_batched_equals_layer_loop(wl.attention_layers)

    def test_dense_and_sparse_mix(self):
        layers = [
            dense_attention_workload(24, 2, 16),
            synthetic_attention_workload(48, 2, 16, sparsity=0.9, seed=3),
            synthetic_attention_workload(48, 2, 16, sparsity=0.7, seed=4),
        ]
        assert_batched_equals_layer_loop(layers)

    def test_single_layer(self):
        wl = synthetic_attention_workload(32, 2, 16, sparsity=0.8, seed=1)
        total = assert_batched_equals_layer_loop([wl])
        assert len(total.per_layer) == 1

    @pytest.mark.parametrize("use_ae,compression", [
        (True, 0.5), (True, 0.25), (False, 0.5),
    ])
    def test_ae_variants(self, use_ae, compression):
        wl = model_workload(get_config("deit-tiny"), sparsity=0.9)
        assert_batched_equals_layer_loop(
            wl.attention_layers[:4], use_ae=use_ae,
            ae_compression=compression,
        )

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_random_multilayer(self, data):
        """Random multi-layer stacks (mixed shapes, empty engines, zero
        columns) agree bit-for-bit between batched and the layer loop."""
        num_layers = data.draw(st.integers(1, 4), label="num_layers")
        layers = [random_layer(data, f"l{i}") for i in range(num_layers)]
        assert_batched_equals_layer_loop(layers)

    def test_totals_are_field_sums(self):
        wl = model_workload(get_config("deit-tiny"), sparsity=0.9)
        total = CycleAccurateSimulator().simulate_attention(wl)
        for f in dataclasses.fields(total):
            if f.name == "per_layer":
                continue
            assert getattr(total, f.name) == pytest.approx(
                sum(getattr(r, f.name) for r in total.per_layer)
            )


def assert_fused_equals_split(layers, **sim_kwargs):
    """Fused (2L × jobs) scans == per-engine split scans, bit for bit."""
    fused = CycleAccurateSimulator(scan="fused", **sim_kwargs)
    split = CycleAccurateSimulator(scan="split", **sim_kwargs)
    a = fused.simulate_attention(layers)
    b = split.simulate_attention(layers)
    assert dataclasses.astuple(a) == dataclasses.astuple(b)
    return a


class TestFusedScan:
    """One (2L × jobs) compute scan + one (L × jobs) softmax scan must be
    indistinguishable from the per-engine scans (and hence from the scalar
    event loop, which the split path is already held to)."""

    def test_split_is_the_default(self):
        """Measured choice: split is the width-banded optimum (the fused
        fold pads the ~15×-narrower denser engine to the sparser width)."""
        assert CycleAccurateSimulator().scan == "split"

    def test_unknown_scan_rejected(self):
        with pytest.raises(ValueError, match="unknown scan"):
            CycleAccurateSimulator(scan="diagonal")

    @pytest.mark.parametrize("model", ["deit-tiny", "levit-128"])
    def test_models(self, model):
        wl = model_workload(get_config(model), sparsity=0.9)
        assert_fused_equals_split(wl.attention_layers)

    def test_dense_and_sparse_mix(self):
        layers = [
            dense_attention_workload(24, 2, 16),
            synthetic_attention_workload(48, 2, 16, sparsity=0.9, seed=3),
            synthetic_attention_workload(48, 2, 16, sparsity=0.7, seed=4),
        ]
        assert_fused_equals_split(layers)

    def test_empty_engines(self):
        """Layers with no denser jobs, no sparser jobs, or no jobs at all
        exercise the fused scan's zero-width and carry-through paths."""
        no_denser = AttentionWorkload(
            num_tokens=8, num_heads=1, head_dim=4,
            heads=[HeadWorkload(
                num_tokens=8, head_dim=4, num_global_tokens=0,
                denser_nnz=0, sparser_nnz=6, sparser_index_bytes=40,
                sparser_column_nnz=np.array([3, 0, 0, 1, 0, 0, 2, 0]),
            )],
        )
        no_sparser = dense_attention_workload(8, 1, 4)
        no_jobs = AttentionWorkload(
            num_tokens=8, num_heads=1, head_dim=4,
            heads=[HeadWorkload(
                num_tokens=8, head_dim=4, num_global_tokens=0,
                denser_nnz=0, sparser_nnz=0, sparser_index_bytes=36,
                sparser_column_nnz=np.zeros(8, dtype=np.int64),
            )],
        )
        assert_fused_equals_split([no_denser, no_sparser, no_jobs])
        assert_fused_equals_split([no_jobs])

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_fused_equals_split(self, data):
        """Random multi-layer stacks: fused == split == scalar, exactly."""
        num_layers = data.draw(st.integers(1, 4), label="num_layers")
        layers = [random_layer(data, f"l{i}") for i in range(num_layers)]
        fused = assert_fused_equals_split(layers)
        scalar = CycleAccurateSimulator(engine="scalar").simulate_attention(
            layers
        )
        assert dataclasses.astuple(fused) == dataclasses.astuple(scalar)


class TestAnalyticalBatched:
    """ViTCoDAccelerator(batched=True) vs the per-layer reference fold."""

    def assert_reports_identical(self, wl, **kwargs):
        batched = ViTCoDAccelerator(**kwargs)
        loop = ViTCoDAccelerator(batched=False, **kwargs)
        for method in ("simulate_attention", "simulate_model"):
            a = getattr(batched, method)(wl)
            b = getattr(loop, method)(wl)
            assert dataclasses.astuple(a.latency) == dataclasses.astuple(b.latency)
            assert dataclasses.astuple(a.energy) == dataclasses.astuple(b.energy)
            assert (a.platform, a.workload, a.details) == \
                (b.platform, b.workload, b.details)

    @pytest.mark.parametrize("model", ["deit-tiny", "levit-128"])
    def test_models(self, model):
        self.assert_reports_identical(
            model_workload(get_config(model), sparsity=0.9)
        )

    @pytest.mark.parametrize("kwargs", [
        {"use_ae": False},
        {"two_pronged": False, "use_ae": False},
        {"dataflow": "s_stationary"},
        {"q_forwarding_hit_rate": 0.0},
        {"ae_compression": 0.25},
    ])
    def test_config_variants(self, kwargs):
        wl = model_workload(get_config("deit-tiny"), sparsity=0.8)
        self.assert_reports_identical(wl, **kwargs)

    def test_unreordered_masks(self):
        wl = model_workload(get_config("deit-tiny"), sparsity=0.9,
                            reordered=False)
        self.assert_reports_identical(wl)

    def test_dense_model(self):
        wl = model_workload(get_config("deit-tiny"), sparsity=None)
        self.assert_reports_identical(wl)

    @pytest.mark.parametrize("sparsity", [0.6, 0.95])
    def test_sparsity_extremes(self, sparsity):
        wl = model_workload(get_config("deit-tiny"), sparsity=sparsity)
        self.assert_reports_identical(wl)


class TestWorkloadStatArrays:
    """The cached head-stat arrays must agree with the per-head walks."""

    def test_stats_match_heads(self):
        wl = synthetic_attention_workload(48, 4, 16, sparsity=0.9, seed=5)
        stats = wl.head_stats()
        assert stats.tokens.tolist() == [h.num_tokens for h in wl.heads]
        assert stats.sparser_nnz.tolist() == [h.sparser_nnz for h in wl.heads]
        assert wl.total_nnz == sum(h.total_nnz for h in wl.heads)
        assert wl.sddmm_macs == sum(
            h.denser_macs + h.sparser_macs for h in wl.heads
        )
        assert wl.spmm_macs == sum(h.spmm_macs for h in wl.heads)
        assert wl.index_bytes() == sum(h.sparser_index_bytes for h in wl.heads)
        assert wl.scattered_nnz == sum(
            int(round(h.sparser_nnz * (1.0 - h.sparser_locality)))
            for h in wl.heads
        )

    def test_stat_arrays_are_cached(self):
        wl = synthetic_attention_workload(32, 2, 16, sparsity=0.9, seed=1)
        assert wl.head_stats() is wl.head_stats()
        assert wl.sparser_job_products() is wl.sparser_job_products()
        assert wl.denser_job_products() is wl.denser_job_products()

    def test_job_products_conserve_nnz(self):
        """Fallback heads (no per-column counts) keep every product."""
        head = HeadWorkload(num_tokens=16, head_dim=8, num_global_tokens=3,
                            denser_nnz=48, sparser_nnz=40,
                            sparser_index_bytes=0)
        wl = AttentionWorkload(num_tokens=16, num_heads=1, head_dim=8,
                               heads=[head])
        assert int(wl.sparser_job_products().sum()) == 40
        assert int(wl.denser_job_products().sum()) == 3 * 16

    def test_pickle_strips_cached_arrays(self):
        """Warm geometry caches must not inflate the pickled workload
        (parallel DSE ships it once per chunk)."""
        import pickle

        wl = synthetic_attention_workload(48, 4, 16, sparsity=0.9, seed=5)
        cold = len(pickle.dumps(wl))
        wl.head_stats()
        wl.denser_job_products()
        wl.sparser_job_products()
        assert len(pickle.dumps(wl)) == cold
        clone = pickle.loads(pickle.dumps(wl))
        assert clone.total_nnz == wl.total_nnz
        assert (clone.sparser_job_products()
                == wl.sparser_job_products()).all()


class TestBatchedAllocator:
    def test_matches_scalar_allocator(self):
        from repro.hw import allocate_mac_lines, allocate_mac_lines_batched

        rng = np.random.default_rng(11)
        denser = rng.integers(0, 10**10, size=200)
        sparser = rng.integers(0, 10**10, size=200)
        d_lines, s_lines = allocate_mac_lines_batched(64, denser, sparser)
        for i in range(denser.size):
            alloc = allocate_mac_lines(64, int(denser[i]), int(sparser[i]))
            assert (d_lines[i], s_lines[i]) == \
                (alloc.denser_lines, alloc.sparser_lines)

    def test_huge_workloads_fall_back_exactly(self):
        """Beyond float64 exactness the batched allocator must defer to the
        big-int scalar path instead of silently diverging."""
        from repro.hw import allocate_mac_lines, allocate_mac_lines_batched

        cases = [(10**17, 1), (2**53 + 1, 2**53 - 1), (0, 10**18)]
        d_lines, s_lines = allocate_mac_lines_batched(
            127, [d for d, _ in cases], [s for _, s in cases]
        )
        for i, (d, s) in enumerate(cases):
            alloc = allocate_mac_lines(127, d, s)
            assert (d_lines[i], s_lines[i]) == \
                (alloc.denser_lines, alloc.sparser_lines)
