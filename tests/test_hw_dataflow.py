"""Tests for dataflow cycle models, PE allocation, and trace bookkeeping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import (
    LatencyBreakdown,
    EnergyBreakdown,
    SimReport,
    allocate_mac_lines,
    dense_gemm_cycles,
    k_stationary_sddmm_cycles,
    output_stationary_spmm_cycles,
    s_stationary_sddmm_cycles,
    softmax_cycles,
)


class TestKStationary:
    def test_single_product(self):
        # One dot product of dk=64 on one 8-MAC line: 8 cycles.
        assert k_stationary_sddmm_cycles(1, 64, 1) == 8

    def test_parallel_lines(self):
        # 64 products over 64 lines: one wave.
        assert k_stationary_sddmm_cycles(64, 64, 64) == 8

    def test_waves(self):
        assert k_stationary_sddmm_cycles(65, 64, 64) == 16

    def test_head_dim_padding(self):
        # dk=60 on 8 MACs still needs ceil(60/8)=8 cycles per product.
        assert k_stationary_sddmm_cycles(1, 60, 1) == 8

    def test_zero_products(self):
        assert k_stationary_sddmm_cycles(0, 64, 16) == 0

    def test_invalid_lines(self):
        with pytest.raises(ValueError):
            k_stationary_sddmm_cycles(1, 64, 0)

    def test_linear_scaling_in_products(self):
        base = k_stationary_sddmm_cycles(640, 64, 64)
        double = k_stationary_sddmm_cycles(1280, 64, 64)
        assert double == 2 * base


class TestSStationary:
    def test_dense_wave(self):
        # 512 scores on 512 MACs: one wave of dk cycles.
        assert s_stationary_sddmm_cycles(512, 64, 512) == 64

    def test_pack_efficiency_slows(self):
        full = s_stationary_sddmm_cycles(1024, 64, 512, 1.0)
        half = s_stationary_sddmm_cycles(1024, 64, 512, 0.5)
        assert half == 2 * full

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            s_stationary_sddmm_cycles(10, 64, 512, 0.0)
        with pytest.raises(ValueError):
            s_stationary_sddmm_cycles(10, 64, 512, 1.1)

    def test_zero(self):
        assert s_stationary_sddmm_cycles(0, 64, 512) == 0


class TestSpmmAndGemm:
    def test_spmm_basic(self):
        # 64 nnz over 64 lines, dk=64: one wave of 8 cycles.
        assert output_stationary_spmm_cycles(64, 64, 64) == 8

    def test_spmm_zero(self):
        assert output_stationary_spmm_cycles(0, 64, 64) == 0

    def test_gemm_cycles(self):
        # 512 MACs at full utilization: macs/512 cycles.
        assert dense_gemm_cycles(8, 8, 8, 512, utilization=1.0) == 1

    def test_gemm_utilization(self):
        full = dense_gemm_cycles(64, 64, 64, 512, utilization=1.0)
        derated = dense_gemm_cycles(64, 64, 64, 512, utilization=0.5)
        assert derated == 2 * full

    def test_gemm_invalid(self):
        with pytest.raises(ValueError):
            dense_gemm_cycles(1, 1, 1, 0)
        with pytest.raises(ValueError):
            dense_gemm_cycles(1, 1, 1, 512, utilization=0.0)

    def test_softmax(self):
        # One exp per score + two row touches, retired `lanes` wide.
        assert softmax_cycles(80, 10, lanes=8) == (80 + 20 + 7) // 8
        assert softmax_cycles(0, 0, lanes=8) == 0
        with pytest.raises(ValueError):
            softmax_cycles(10, 1, lanes=0)


class TestAllocator:
    def test_proportional_split(self):
        alloc = allocate_mac_lines(64, 300, 100)
        assert alloc.denser_lines == 48 and alloc.sparser_lines == 16

    def test_total_preserved(self):
        for d, s in [(1, 1), (5, 95), (1000, 3)]:
            alloc = allocate_mac_lines(64, d, s)
            assert alloc.total == 64

    def test_reserve_minimum(self):
        alloc = allocate_mac_lines(64, 10_000, 1)
        assert alloc.sparser_lines >= 1

    def test_zero_workloads(self):
        alloc = allocate_mac_lines(64, 0, 0)
        assert alloc.total == 64

    def test_one_sided(self):
        assert allocate_mac_lines(64, 100, 0).denser_lines == 64
        assert allocate_mac_lines(64, 0, 100).sparser_lines == 64

    def test_errors(self):
        with pytest.raises(ValueError):
            allocate_mac_lines(1, 1, 1)
        with pytest.raises(ValueError):
            allocate_mac_lines(64, -1, 1)

    @given(
        denser=st.integers(min_value=0, max_value=10**9),
        sparser=st.integers(min_value=0, max_value=10**9),
        lines=st.integers(min_value=2, max_value=256),
    )
    @settings(max_examples=60, deadline=None)
    def test_allocation_invariants(self, denser, sparser, lines):
        alloc = allocate_mac_lines(lines, denser, sparser)
        assert alloc.total == lines
        assert alloc.denser_lines >= 0 and alloc.sparser_lines >= 0
        if denser > 0 and sparser > 0:
            assert alloc.denser_lines >= 1 and alloc.sparser_lines >= 1


class TestTrace:
    def test_latency_addition(self):
        a = LatencyBreakdown(compute=10, preprocess=2, data_movement=5)
        b = LatencyBreakdown(compute=1, preprocess=1, data_movement=1)
        c = a + b
        assert c.total == 20
        assert c.compute == 11

    def test_fractions_sum_to_one(self):
        lat = LatencyBreakdown(compute=3, preprocess=1, data_movement=6)
        fracs = lat.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert LatencyBreakdown().fractions()["compute"] == 0.0

    def test_energy_addition(self):
        a = EnergyBreakdown(mac=1, sram=2, dram=3, other=4, static=5)
        b = EnergyBreakdown(mac=1)
        assert (a + b).total == 16

    def test_report_seconds(self):
        r = SimReport(platform="x", workload="w",
                      latency=LatencyBreakdown(compute=500),
                      frequency_hz=500e6)
        assert r.seconds == pytest.approx(1e-6)

    def test_speedup_over(self):
        fast = SimReport("a", "w", LatencyBreakdown(compute=100),
                         frequency_hz=1e9)
        slow = SimReport("b", "w", LatencyBreakdown(compute=1000),
                         frequency_hz=1e9)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_merged_accumulates(self):
        a = SimReport("p", "w1", LatencyBreakdown(compute=10),
                      EnergyBreakdown(mac=5), frequency_hz=1e9)
        b = SimReport("p", "w2", LatencyBreakdown(compute=20),
                      EnergyBreakdown(mac=7), frequency_hz=1e9)
        m = a.merged(b)
        assert m.cycles == 30 and m.energy.mac == 12

    def test_merged_frequency_mismatch(self):
        a = SimReport("p", "w", LatencyBreakdown(), frequency_hz=1e9)
        b = SimReport("p", "w", LatencyBreakdown(), frequency_hz=5e8)
        with pytest.raises(ValueError):
            a.merged(b)
