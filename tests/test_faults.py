"""Tests for seeded fault injection (:mod:`repro.faults`).

The contract under test: plans are deterministic in their seed, a true
no-op when inactive, ride the evaluator wire format unchanged, and the
dist layer's retry/repair machinery converges a faulty study to the
bit-identical healthy result.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.dist import (
    ResultStore,
    build_manifest,
    decode_record,
    encode_record,
    merge_store,
    model_workload_spec,
    run_shard,
    store_status,
)
from repro.dist.store import JsonlAppender, load_jsonl, record_payload
from repro.faults import (
    FaultInjectedError,
    FaultPlan,
    FaultPlanError,
    FaultyEvaluator,
    TransientError,
    activate,
    active_plan,
    plan_from_spec,
)
from repro.harness.dse import PointFailure, sweep_design_space
from repro.obs.events import EventLog
from repro.perf import cached_model_workload
from repro.sim.evaluator import (
    AnalyticalEvaluator,
    evaluator_from_spec,
    evaluator_spec,
)

GRID = {"mac_lines": (16, 32, 64), "ae_compression": (None, 0.5)}
SPEC = model_workload_spec("deit-tiny", sparsity=0.9)


@pytest.fixture(scope="module")
def workload():
    return cached_model_workload("deit-tiny", sparsity=0.9)


class TestFaultPlan:
    def test_spec_round_trip(self):
        spec = {"seed": 7, "evaluator_error_rate": 0.25, "torn_write": True,
                "kill_after_records": 3}
        assert plan_from_spec(spec).spec() == spec

    def test_defaults_serialize_empty(self):
        assert FaultPlan().spec() == {}

    def test_scope_never_serialized(self, tmp_path):
        plan = plan_from_spec({"torn_write": True}).scoped(tmp_path)
        assert plan.scope == tmp_path
        assert "scope" not in plan.spec()

    @pytest.mark.parametrize("bad", [
        {"nope": 1},
        {"seed": "x"},
        {"evaluator_error_rate": 1.5},
        {"evaluator_error_rate": True},
        {"evaluator_error_attempts": 0},
        {"evaluator_hang_s": -1},
        {"torn_write": 1},
        {"kill_after_records": 0},
        "not-a-dict",
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(FaultPlanError):
            plan_from_spec(bad)

    def test_selection_is_seed_deterministic(self):
        plan = FaultPlan(seed=3, evaluator_error_rate=0.3)
        keys = [f"point-{i}" for i in range(200)]
        picked = {k for k in keys
                  if plan._selected("evaluator_error", k, 0.3)}
        again = {k for k in keys
                 if plan._selected("evaluator_error", k, 0.3)}
        assert picked == again
        assert 0 < len(picked) < len(keys)  # a real subset
        other = FaultPlan(seed=4, evaluator_error_rate=0.3)
        assert picked != {k for k in keys
                          if other._selected("evaluator_error", k, 0.3)}

    def test_one_shot_marker_is_durable_across_instances(self, tmp_path):
        first = plan_from_spec({"torn_write": True}).scoped(tmp_path)
        assert first.torn_write_fault(tmp_path / "a.jsonl")
        # A relaunched process builds a fresh plan over the same scope:
        # the marker file says the fault was already spent.
        second = plan_from_spec({"torn_write": True}).scoped(tmp_path)
        assert not second.torn_write_fault(tmp_path / "a.jsonl")

    def test_out_of_scope_paths_untouched(self, tmp_path):
        plan = plan_from_spec({"torn_write": True,
                               "fsync_error": True}).scoped(tmp_path / "in")
        assert not plan.torn_write_fault(tmp_path / "outside.jsonl")
        plan.fsync_fault(tmp_path / "outside.jsonl")  # no raise

    def test_no_plan_active_by_default(self):
        assert active_plan() is None

    def test_activation_scopes_and_restores(self):
        plan = FaultPlan()
        with activate(plan) as active:
            assert active is plan and active_plan() is plan
        assert active_plan() is None

    def test_claim_delay_sleeps(self):
        plan = FaultPlan(claim_delay_s=0.05)
        begin = time.monotonic()
        plan.claim_fault()
        assert time.monotonic() - begin >= 0.04


class TestFaultyEvaluator:
    def test_transient_then_identical_result(self, workload):
        inner = AnalyticalEvaluator()
        faulty = FaultyEvaluator(
            inner, {"evaluator_error_rate": 1.0, "evaluator_error_attempts": 2}
        )
        from repro.hw.params import VITCOD_DEFAULT
        kwargs = {}
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                faulty(workload, VITCOD_DEFAULT, kwargs)
        assert faulty(workload, VITCOD_DEFAULT, kwargs) == inner(
            workload, VITCOD_DEFAULT, kwargs
        )

    def test_injected_error_is_transient(self):
        assert issubclass(FaultInjectedError, TransientError)
        failure = PointFailure(parameters={}, error="x", transient=True)
        assert failure.transient

    def test_spec_rides_the_inner_evaluator(self):
        faulty = FaultyEvaluator("analytical", {"evaluator_error_rate": 0.5})
        spec = evaluator_spec(faulty)
        assert spec["name"] == "analytical"
        assert spec["faults"] == {"evaluator_error_rate": 0.5}
        rebuilt = evaluator_from_spec(spec)
        assert isinstance(rebuilt, FaultyEvaluator)
        assert rebuilt.fault_plan.spec() == {"evaluator_error_rate": 0.5}

    def test_bad_wire_plan_rejected(self):
        with pytest.raises(ValueError, match="bad 'faults' plan"):
            evaluator_from_spec({"name": "analytical", "faults": {"zap": 1}})

    def test_hybrid_nested_faults_rejected(self):
        with pytest.raises(ValueError, match="top-level"):
            evaluator_from_spec({
                "name": "hybrid",
                "coarse": {"name": "analytical", "faults": {"seed": 1}},
                "fine": {"name": "cycle"},
            })


class TestShardRetries:
    def test_transients_retried_to_healthy_records(self, tmp_path, workload):
        """Every seeded transient heals in-process; merge == serial sweep."""
        faulty = FaultyEvaluator(
            AnalyticalEvaluator(),
            {"seed": 5, "evaluator_error_rate": 0.5},
        )
        store = tmp_path / "store"
        run = run_shard(workload, GRID, "1/1", store, evaluator=faulty,
                        workload_spec=SPEC)
        assert run.complete and run.failed == 0
        assert run.retried > 0
        merged = merge_store(store)
        assert list(merged.points) == sweep_design_space(workload, GRID)

    def test_retry_counts_land_in_records_not_payload(self, tmp_path,
                                                      workload):
        faulty = FaultyEvaluator(
            AnalyticalEvaluator(), {"seed": 5, "evaluator_error_rate": 0.5}
        )
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/1", store, evaluator=faulty,
                  workload_spec=SPEC)
        from repro.dist.sharding import ShardSpec
        records = load_jsonl(
            ResultStore(store).shard_path(ShardSpec(1, 1))
        )
        retried = [r for r in records if r.get("r")]
        assert retried, "the seeded plan should have retried something"
        # ``r`` is bookkeeping like ``t``: identical results from a
        # retried and an untouched evaluation must compare equal.
        healthy = encode_record(*decode_record(retried[0]))
        assert record_payload(healthy) == record_payload(retried[0])
        status = store_status(store)
        assert status.retries == sum(r["r"] for r in retried)

    def test_deterministic_failures_persist_once(self, tmp_path, workload):
        """Non-transient evaluator bugs are not retried."""

        class Broken:
            calls = 0

            def __call__(self, workload, config, accel_kwargs):
                type(self).calls += 1
                raise ValueError("deterministic bug")

        store = tmp_path / "store"
        grid = {"mac_lines": (16,)}
        run = run_shard(workload, grid, "1/1", store, evaluator=Broken(),
                        workload_spec=SPEC)
        assert run.failed == 1 and run.retried == 0
        assert Broken.calls == 1

    def test_manifest_merge_strips_faults(self, tmp_path, workload):
        """The merge host re-scores healthily: no faults key leaks out."""
        faulty = FaultyEvaluator(
            AnalyticalEvaluator(), {"seed": 1, "evaluator_error_rate": 0.2}
        )
        store = tmp_path / "store"
        run_shard(workload, GRID, "1/1", store, evaluator=faulty,
                  workload_spec=SPEC)
        manifest = ResultStore(store).read_manifest()
        assert manifest["evaluator"]["name"] == "analytical"
        assert manifest["evaluator"]["faults"] == {
            "seed": 1, "evaluator_error_rate": 0.2,
        }
        merged = merge_store(store)  # rebuilds the evaluator sans faults
        assert list(merged.points) == sweep_design_space(workload, GRID)


class TestTornWriteInjection:
    def test_torn_tail_repaired_on_reopen(self, tmp_path, workload):
        """Deterministic injection of the killed-writer torn tail."""
        store = tmp_path / "store"
        from repro.hw.params import VITCOD_DEFAULT
        manifest = build_manifest(GRID, 1, AnalyticalEvaluator(),
                                  VITCOD_DEFAULT, SPEC)
        ResultStore.create_or_attach(store, manifest)
        from repro.dist.sharding import ShardSpec
        path = ResultStore(store).shard_path(ShardSpec(1, 1))
        plan = plan_from_spec({"torn_write": True}).scoped(store)
        appender = JsonlAppender(path)
        appender.append(encode_record(0, sweep_design_space(
            workload, {"mac_lines": (16,)})[0]))
        point = sweep_design_space(workload, {"mac_lines": (32,)})[0]
        with activate(plan):
            with pytest.raises(FaultInjectedError):
                appender.append(encode_record(1, point))
        appender.close()
        raw = path.read_bytes()
        assert not raw.endswith(b"\n")  # genuinely torn mid-line
        # The next writer (a relaunched shard) repairs the tail and
        # the store reads back only whole records.
        healed = JsonlAppender(path)
        healed.append(encode_record(1, point))
        healed.close()
        records = load_jsonl(path)
        assert [r["i"] for r in records] == [0, 1]

    def test_faulty_shard_rerun_converges(self, tmp_path, workload):
        """Torn write kills the run; a plain re-run completes the store."""
        faulty = FaultyEvaluator(
            AnalyticalEvaluator(), {"seed": 2, "torn_write": True}
        )
        store = tmp_path / "store"
        with pytest.raises(FaultInjectedError):
            run_shard(workload, GRID, "1/1", store, evaluator=faulty,
                      workload_spec=SPEC)
        run = run_shard(workload, GRID, "1/1", store, evaluator=faulty,
                        workload_spec=SPEC)  # marker spent: heals through
        assert run.complete
        merged = merge_store(store)
        assert list(merged.points) == sweep_design_space(workload, GRID)


class TestFsyncInjection:
    def test_event_log_append_survives_fsync_error(self, tmp_path):
        """The record is durable even when the fsync barrier errors."""
        log = EventLog(tmp_path / "events.jsonl")
        log.append({"event": "ok"})
        plan = plan_from_spec({"fsync_error": True}).scoped(tmp_path)
        with activate(plan):
            with pytest.raises(OSError, match="injected fsync"):
                log.append({"event": "unlucky"})
            log.append({"event": "after"})  # one-shot: spent
        events = log.read()
        assert [e["event"] for e in events] == ["ok", "unlucky", "after"]

    def test_store_sync_fsync_error_leaves_records_whole(self, tmp_path):
        path = tmp_path / "s.jsonl"
        plan = plan_from_spec({"fsync_error": True}).scoped(tmp_path)
        appender = JsonlAppender(path)
        appender.append({"i": 0})
        with activate(plan):
            with pytest.raises(OSError, match="injected fsync"):
                appender.close()  # the close barrier hits the fault
        appender.close()  # one-shot spent: the real fsync runs
        assert load_jsonl(path) == [{"i": 0}]


class TestHeartbeat:
    def test_heartbeat_touched_per_record(self, tmp_path, workload):
        heartbeat = tmp_path / "hb" / "shard.hb"
        run_shard(workload, GRID, "1/1", tmp_path / "store",
                  workload_spec=SPEC, heartbeat=heartbeat)
        assert heartbeat.is_file()


class TestCliFaultPlans:
    def test_dse_rejects_hybrid_with_faults(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="sharded path"):
            main(["dse", "--evaluator", "hybrid", "--faults",
                  '{"seed": 1}'])

    def test_bad_plan_rejected_before_work(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="--faults"):
            main(["dse", "--faults", '{"zap": 1}'])
        with pytest.raises(SystemExit, match="--faults"):
            main(["dse", "--faults", "not json {"])

    def test_plan_file_accepted(self, tmp_path, capsys):
        from repro.cli import main
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"seed": 9}))
        assert main(["dse", "--models", "deit-tiny", "--grid",
                     "mac_lines=16", "--faults", str(plan)]) == 0
        assert "1 points" in capsys.readouterr().out
