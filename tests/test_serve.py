"""Tests for the DSE service (:mod:`repro.serve`).

The load-bearing guarantees: served results are byte-identical to
``python -m repro dse --json`` on the same study (for every evaluator),
identical re-submissions hit the result cache without re-scoring, jobs
survive a server kill and resume from their completion records, and
malformed submissions bounce with a 400 before touching the disk.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import cli
from repro.dist import (
    ResultStore,
    StoreMismatchError,
    build_manifest,
    model_workload_spec,
)
from repro.serve import (
    JobFailedError,
    JobManager,
    ServeClient,
    ServeError,
    ServeRequestError,
    UnknownJobError,
    serving,
    study_fingerprint,
)
from repro.hw.params import VITCOD_DEFAULT
from repro.sim.evaluator import evaluator_from_spec

GRID = {"mac_lines": [16, 32], "ae_compression": [None, 0.5]}
GRID_ARGS = ["--grid", "mac_lines=16,32", "--grid", "ae_compression=none,0.5"]


def _cli_reference(tmp_path, evaluator) -> bytes:
    """The ``dse`` command's JSON for the test study — the golden bytes."""
    out = tmp_path / f"cli-{evaluator}.json"
    cli.main(
        ["dse", "--models", "deit-tiny", "--evaluator", evaluator,
         "--json", str(out)] + GRID_ARGS
    )
    return out.read_bytes()


def _drain(manager):
    while manager.run_next():
        pass


def _request(**overrides):
    request = {"grid": GRID, "evaluator": "analytical", "model": "deit-tiny"}
    request.update(overrides)
    return request


class TestStudyFingerprint:
    def _manifest(self, n_shards=1, grid=GRID):
        return build_manifest(
            grid, n_shards, evaluator_from_spec("analytical"), VITCOD_DEFAULT,
            model_workload_spec("deit-tiny", sparsity=0.9),
        )

    def test_shard_count_is_an_execution_detail(self):
        assert study_fingerprint(self._manifest(1)) == study_fingerprint(
            self._manifest(3)
        )

    def test_study_content_changes_the_id(self):
        other = {"mac_lines": [16, 64], "ae_compression": [None, 0.5]}
        assert study_fingerprint(self._manifest(grid=other)) != study_fingerprint(
            self._manifest()
        )

    def test_shape(self):
        digest = study_fingerprint(self._manifest())
        assert len(digest) == 16
        assert set(digest) <= set("0123456789abcdef")


class TestJobManager:
    """Deterministic white-box runs: ``workers=0`` + :meth:`run_next`."""

    def test_submit_run_results(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        info = manager.submit(_request(n_shards=2))
        assert info["created"] is True
        assert info["cache_hit"] is False
        assert info["state"] == "queued"
        assert info["grid_size"] == 4
        _drain(manager)
        status = manager.status(info["id"])
        assert status["state"] == "done"
        assert status["done"] == status["grid_size"] == 4
        text, partial = manager.results(info["id"])
        assert partial is False
        payload = json.loads(text)
        assert len(payload["points"]) == 4
        assert payload["evaluator"] == "analytical"

    def test_partial_results_stream_from_the_ledger(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        info = manager.submit(_request(n_shards=2))
        assert manager.run_next() is True  # exactly one shard ran
        text, partial = manager.results(info["id"])
        assert partial is True
        payload = json.loads(text)
        assert payload["partial"] is True
        assert payload["state"] == "running"
        assert 0 < payload["done"] < payload["grid_size"]
        assert len(payload["points"]) == payload["done"]
        indices = [point["index"] for point in payload["points"]]
        assert indices == sorted(indices)
        status = manager.status(info["id"])
        assert status["state"] == "running"
        assert status["done"] == payload["done"]
        _drain(manager)
        _, partial = manager.results(info["id"])
        assert partial is False

    def test_cache_hit_skips_all_scoring(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        first = manager.submit(_request(n_shards=2))
        _drain(manager)
        store = ResultStore(tmp_path / "jobs" / first["id"] / "store")
        stamps = {
            path: path.stat().st_mtime_ns
            for _, _, path in store.shard_files()
        }
        assert manager.stats["shards_run"] == 2
        again = manager.submit(_request(n_shards=2))
        assert again["cache_hit"] is True
        assert again["created"] is False
        assert again["id"] == first["id"]
        assert manager.run_next() is False  # nothing was queued
        assert manager.stats["shards_run"] == 2
        for path, stamp in stamps.items():
            assert path.stat().st_mtime_ns == stamp

    def test_different_shard_count_still_hits_the_cache(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        first = manager.submit(_request(n_shards=1))
        _drain(manager)
        again = manager.submit(_request(n_shards=4))
        assert again["id"] == first["id"]
        assert again["cache_hit"] is True

    def test_identical_submission_deduplicates_while_queued(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        first = manager.submit(_request(n_shards=2))
        second = manager.submit(_request(n_shards=2))
        assert second["id"] == first["id"]
        assert second["created"] is False
        assert second["cache_hit"] is False
        assert manager.stats["deduplicated"] == 1
        _drain(manager)
        assert manager.stats["shards_run"] == 2  # one job's worth, not two

    def test_sharded_results_match_serial(self, tmp_path):
        serial = JobManager(tmp_path / "a", workers=0)
        sharded = JobManager(tmp_path / "b", workers=0)
        one = serial.submit(_request(n_shards=1))
        three = sharded.submit(_request(n_shards=3))
        assert one["id"] == three["id"]
        _drain(serial)
        _drain(sharded)
        assert serial.results(one["id"])[0] == sharded.results(three["id"])[0]

    def test_failed_job_reports_and_retries(self, tmp_path, monkeypatch):
        manager = JobManager(tmp_path, workers=0)
        info = manager.submit(_request(n_shards=1))

        def boom(*args, **kwargs):
            raise RuntimeError("shard exploded")

        import repro.serve.jobs as jobs_module

        monkeypatch.setattr(jobs_module, "run_shard", boom)
        _drain(manager)
        status = manager.status(info["id"])
        assert status["state"] == "failed"
        assert "shard exploded" in status["error"]
        assert (tmp_path / "jobs" / info["id"] / "error.json").is_file()
        with pytest.raises(JobFailedError, match="shard exploded"):
            manager.results(info["id"])
        monkeypatch.undo()
        retry = manager.submit(_request(n_shards=1))
        assert retry["id"] == info["id"]
        assert retry["state"] == "queued"
        assert retry["cache_hit"] is False
        assert not (tmp_path / "jobs" / info["id"] / "error.json").exists()
        _drain(manager)
        assert manager.status(info["id"])["state"] == "done"

    def test_resume_picks_up_unfinished_jobs(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        info = manager.submit(_request(n_shards=2))
        assert manager.run_next() is True  # half the job, then "crash"
        reborn = JobManager(tmp_path, workers=0)
        resumed = reborn.resume()
        assert resumed == [info["id"]]
        _drain(reborn)
        assert reborn.status(info["id"])["state"] == "done"
        # Resumption skipped the recorded shard: only the missing one ran.
        assert reborn.stats["shards_run"] == 2
        store = ResultStore(tmp_path / "jobs" / info["id"] / "store")
        total = sum(count for _, count, _ in store.shard_files())
        assert total == 4  # no index evaluated twice

    def test_resume_registers_finished_and_failed_jobs(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        done = manager.submit(_request(n_shards=1))
        _drain(manager)
        reborn = JobManager(tmp_path, workers=0)
        assert reborn.resume() == []
        assert reborn.status(done["id"])["state"] == "done"
        text, partial = reborn.results(done["id"])
        assert partial is False
        assert text == manager.results(done["id"])[0]

    def test_unknown_job(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        with pytest.raises(UnknownJobError):
            manager.status("0" * 16)
        with pytest.raises(UnknownJobError):
            manager.results("0" * 16)


class TestValidation:
    @pytest.fixture()
    def manager(self, tmp_path):
        return JobManager(tmp_path, workers=0, max_grid_points=64, max_shards=4)

    @pytest.mark.parametrize(
        "request_patch, match",
        [
            ({"grid": None}, "grid"),
            ({"grid": {}}, "grid"),
            ({"grid": {"warp_drives": [1]}}, "unknown grid parameter"),
            ({"grid": {"mac_lines": []}}, "non-empty list"),
            ({"grid": {"mac_lines": 16}}, "non-empty list"),
            ({"grid": {"mac_lines": [16, "wat"]}}, "must be a number"),
            ({"grid": {"mac_lines": [True]}}, "must be a number"),
            ({"evaluator": "quantum"}, "evaluator"),
            ({"evaluator": {"name": "cycle", "engine": "abacus"}}, "engine"),
            (
                {"evaluator": {"name": "hybrid", "adaptive": True}},
                "adaptive",
            ),
            ({"n_shards": 0}, "n_shards"),
            ({"n_shards": 99}, "n_shards"),
            ({"n_shards": 2.5}, "n_shards"),
            ({"handicap": -1}, "handicap"),
            ({"model": 7}, "model"),
            ({"flux_capacitor": True}, "unknown request field"),
            (
                {"workload_spec": {"kind": "model", "model": "deit-tiny"},
                 "model": "deit-tiny"},
                "not both",
            ),
            ({"workload_spec": {"kind": "opaque"}}, "kind='model'"),
            (
                {"workload_spec": {"kind": "model", "model": "deit-tiny",
                                   "blur": 1}},
                "unknown workload_spec field",
            ),
        ],
    )
    def test_rejects_before_touching_disk(self, manager, tmp_path,
                                          request_patch, match):
        request = _request()
        if "workload_spec" in request_patch and "model" not in request_patch:
            request.pop("model")  # the shorthand would conflict first
        request.update(request_patch)
        with pytest.raises(ServeRequestError, match=match):
            manager.submit(request)
        assert list((tmp_path / "jobs").iterdir()) == []
        assert manager.run_next() is False

    def test_rejects_oversized_grids(self, manager):
        with pytest.raises(ServeRequestError, match="limit"):
            manager.submit(_request(grid={"mac_lines": list(range(1, 100))}))

    def test_rejects_unknown_models(self, manager):
        with pytest.raises(ServeRequestError, match="workload"):
            manager.submit(_request(model="resnet-9000"))

    def test_rejects_non_dict_bodies(self, manager):
        with pytest.raises(ServeRequestError, match="JSON object"):
            manager.submit(["not", "a", "study"])

    def test_spec_spellings_share_one_job(self, manager):
        """Implicit and explicit workload defaults fingerprint identically."""
        shorthand = manager.submit(_request())
        explicit = manager.submit(
            {
                "grid": GRID,
                "evaluator": {"name": "analytical"},
                "workload_spec": {
                    "kind": "model", "model": "deit-tiny", "sparsity": 0.9,
                    "theta_d": 0.25, "seed": 0, "index_format": "csc",
                    "reordered": True,
                },
            }
        )
        assert explicit["id"] == shorthand["id"]
        assert manager.stats["deduplicated"] == 1


class TestHTTPService:
    """End-to-end over a real socket: the byte-identity contract."""

    @pytest.mark.parametrize("evaluator", ["analytical", "cycle", "hybrid"])
    def test_served_results_byte_identical_to_cli(self, tmp_path, evaluator):
        expected = _cli_reference(tmp_path, evaluator)
        with serving(tmp_path / "data", workers=2) as server:
            client = ServeClient(server.url)
            info = client.submit(_request(evaluator=evaluator, n_shards=2))
            status = client.wait(info["id"], timeout=300)
            assert status["state"] == "done"
            assert client.raw_results(info["id"]) == expected
            again = client.submit(_request(evaluator=evaluator, n_shards=2))
            assert again["cache_hit"] is True
            assert client.raw_results(again["id"]) == expected

    def test_http_validation_and_routing(self, tmp_path):
        with serving(tmp_path / "data", workers=0) as server:
            client = ServeClient(server.url)
            assert client.health()["ok"] is True
            assert client.jobs() == []
            with pytest.raises(ServeError) as excinfo:
                client.submit(_request(grid={"warp_drives": [1]}))
            assert excinfo.value.status == 400
            with pytest.raises(ServeError) as excinfo:
                client.status("0" * 16)
            assert excinfo.value.status == 404
            with pytest.raises(ServeError) as excinfo:
                client.status("not-a-job-id")
            assert excinfo.value.status == 404
            with pytest.raises(ServeError) as excinfo:
                client._request("/jobs", data=b"{not json")
            assert excinfo.value.status == 400

    def test_submission_returns_201_only_on_creation(self, tmp_path):
        import urllib.request

        with serving(tmp_path / "data", workers=2) as server:
            body = json.dumps(_request()).encode()

            def post():
                request = urllib.request.Request(
                    f"{server.url}/jobs", data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status, json.loads(response.read())

            first_code, first = post()
            assert first_code == 201
            ServeClient(server.url).wait(first["id"], timeout=120)
            second_code, second = post()
            assert second_code == 200
            assert second["cache_hit"] is True


class _ServerProcess:
    """A real ``python -m repro serve`` child on an ephemeral port."""

    def __init__(self, tmp_path, data_dir):
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root] + ([env["PYTHONPATH"]] if "PYTHONPATH" in env
                              else [])
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--data-dir", str(data_dir)],
            cwd=str(tmp_path), env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        banner = self.proc.stdout.readline()
        assert "listening on http://" in banner, banner
        self.url = banner.split("listening on ")[1].split()[0]

    def kill(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)
        self.proc.stdout.close()


class TestRestartResume:
    """Acceptance: a killed server's jobs finish after a restart."""

    def test_job_survives_a_server_kill(self, tmp_path):
        expected = _cli_reference(tmp_path, "analytical")
        data_dir = tmp_path / "data"
        first = _ServerProcess(tmp_path, data_dir)
        job_id = None
        try:
            client = ServeClient(first.url)
            # The handicap slows each recorded point so the kill lands
            # mid-grid deterministically, not by racing a fast sweep.
            info = client.submit(_request(n_shards=2, handicap=0.4))
            job_id = info["id"]
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                status = client.status(job_id)
                if status["done"] >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("server never recorded a completed point")
            assert status["done"] < status["grid_size"], (
                "job finished before the kill; raise the handicap"
            )
        finally:
            first.kill()

        second = _ServerProcess(tmp_path, data_dir)
        try:
            client = ServeClient(second.url)
            status = client.wait(job_id, timeout=120)
            assert status["state"] == "done"
            assert client.raw_results(job_id) == expected
            # And the finished study now serves straight from the cache.
            again = client.submit(_request(n_shards=2, handicap=0.4))
            assert again["id"] == job_id
            assert again["cache_hit"] is True
        finally:
            second.kill()


class TestCreateOrAttach:
    """The shared create-or-attach helper is race-safe (O_EXCL publish)."""

    def _manifest(self, grid=GRID):
        return build_manifest(
            grid, 2, evaluator_from_spec("analytical"), VITCOD_DEFAULT,
            model_workload_spec("deit-tiny", sparsity=0.9),
        )

    def test_concurrent_identical_creations_all_succeed(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        manifest = self._manifest()
        root = tmp_path / "store"
        with ThreadPoolExecutor(max_workers=8) as pool:
            stores = list(
                pool.map(
                    lambda _: ResultStore.create_or_attach(root, manifest),
                    range(8),
                )
            )
        assert all(store.read_manifest() == stores[0].read_manifest()
                   for store in stores)
        assert not list(root.glob("*.tmp.*"))  # losers cleaned up

    def test_concurrent_mismatched_creation_one_winner(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        manifest_a = self._manifest()
        manifest_b = self._manifest(
            grid={"mac_lines": [16, 64], "ae_compression": [None, 0.5]}
        )
        root = tmp_path / "store"

        def attempt(manifest):
            try:
                ResultStore.create_or_attach(root, manifest)
                return "ok"
            except StoreMismatchError:
                return "mismatch"

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(
                pool.map(attempt, [manifest_a, manifest_b] * 4)
            )
        published = ResultStore(root).read_manifest()
        assert published in (manifest_a, manifest_b)
        winner = manifest_a if published == manifest_a else manifest_b
        expected = ["ok" if m == winner else "mismatch"
                    for m in [manifest_a, manifest_b] * 4]
        assert outcomes == expected
        assert not list(root.glob("*.tmp.*"))

    def test_attach_validates_against_existing(self, tmp_path):
        root = tmp_path / "store"
        ResultStore.create_or_attach(root, self._manifest())
        with pytest.raises(StoreMismatchError):
            ResultStore.create_or_attach(
                root,
                self._manifest(
                    grid={"mac_lines": [16], "ae_compression": [None]}
                ),
            )


class TestBackpressure:
    """Bounded queue: overflow is a 503 + Retry-After, never silent loss."""

    def test_overload_raises_before_touching_disk(self, tmp_path):
        from repro.serve import ServeOverloadError

        manager = JobManager(tmp_path, workers=0, max_pending=1)
        with pytest.raises(ServeOverloadError) as err:
            manager.submit(_request(n_shards=2))
        assert err.value.retry_after >= 1.0
        assert manager.stats["overload_rejections"] == 1
        assert not any(manager.jobs_root.iterdir()), (
            "a rejected submission must not leave a job directory"
        )

    def test_resume_is_exempt_from_the_bound(self, tmp_path):
        roomy = JobManager(tmp_path, workers=0, max_pending=16)
        info = roomy.submit(_request(n_shards=4))
        # A restarted server re-queues accepted work even when the bound
        # would reject the same study as a fresh submission.
        tight = JobManager(tmp_path, workers=0, max_pending=1)
        assert info["id"] in tight.resume()
        assert tight._jobs[info["id"]].state == "queued"
        _drain(tight)
        assert tight._jobs[info["id"]].state == "done"

    def test_http_overload_is_503_with_retry_after(self, tmp_path):
        import urllib.error
        import urllib.request

        with serving(tmp_path / "data", workers=0, max_pending=1) as server:
            body = json.dumps(_request(n_shards=2)).encode()
            request = urllib.request.Request(
                f"{server.url}/jobs", data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 503
            assert float(err.value.headers["Retry-After"]) >= 1
            payload = json.loads(err.value.read())
            assert "retry_after" in payload

    def test_client_surfaces_503_without_retries(self, tmp_path):
        with serving(tmp_path / "data", workers=0, max_pending=1) as server:
            client = ServeClient(server.url, retries=0)
            with pytest.raises(ServeError) as err:
                client.submit(_request(n_shards=2))
            assert err.value.status == 503


class TestTaskRetries:
    """Shard-task failures spend a budget before poisoning the job."""

    def test_injected_fsync_failure_heals_within_budget(self, tmp_path):
        expected = _cli_reference(tmp_path, "analytical")
        manager = JobManager(tmp_path / "data", workers=0, task_retries=2)
        info = manager.submit(_request(
            evaluator={"name": "analytical", "faults": {"fsync_error": True}}
        ))
        _drain(manager)
        job = manager._jobs[info["id"]]
        assert job.state == "done"
        assert manager.stats["task_retries"] == 1
        text, partial = manager.results(info["id"])
        assert not partial and text.encode() == expected
        events = [e["event"] for e in manager.events(info["id"])]
        assert "shard_retry" in events

    def test_transient_evaluator_faults_cost_no_task_retries(self, tmp_path):
        """In-shard point retries absorb seeded evaluator errors."""
        expected = _cli_reference(tmp_path, "analytical")
        manager = JobManager(tmp_path / "data", workers=0)
        info = manager.submit(_request(
            evaluator={
                "name": "analytical",
                "faults": {"seed": 3, "evaluator_error_rate": 0.5},
            }
        ))
        _drain(manager)
        assert manager._jobs[info["id"]].state == "done"
        assert manager.stats["task_retries"] == 0
        text, _ = manager.results(info["id"])
        assert text.encode() == expected

    def test_exhausted_budget_fails_the_job(self, tmp_path, monkeypatch):
        import repro.serve.jobs as jobs_mod

        def explode(*args, **kwargs):
            raise RuntimeError("persistent shard crash")

        monkeypatch.setattr(jobs_mod, "run_shard", explode)
        manager = JobManager(tmp_path, workers=0, task_retries=1)
        info = manager.submit(_request())
        _drain(manager)
        job = manager._jobs[info["id"]]
        assert job.state == "failed"
        assert "persistent shard crash" in job.error
        assert manager.stats["task_retries"] == 1
        assert manager.stats["jobs_failed"] == 1

    def test_kill_fault_plans_are_rejected(self, tmp_path):
        manager = JobManager(tmp_path, workers=0)
        with pytest.raises(ServeRequestError, match="kill_after_records"):
            manager.submit(_request(
                evaluator={"name": "analytical",
                           "faults": {"kill_after_records": 1}}
            ))


class TestTaskWatchdog:
    def test_hung_task_times_out_and_fails(self, tmp_path):
        manager = JobManager(
            tmp_path, workers=0, task_timeout=0.3, task_retries=0
        )
        # handicap sleeps per recorded point: 4 points x 0.5s >> 0.3s.
        info = manager.submit(_request(handicap=0.5))
        _drain(manager)
        job = manager._jobs[info["id"]]
        assert job.state == "failed"
        assert "task timeout" in job.error
        assert manager.stats["task_timeouts"] >= 1

    def test_fast_tasks_never_meet_the_watchdog(self, tmp_path):
        manager = JobManager(tmp_path, workers=0, task_timeout=60.0)
        info = manager.submit(_request())
        _drain(manager)
        assert manager._jobs[info["id"]].state == "done"
        assert manager.stats["task_timeouts"] == 0


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        server = _ServerProcess(tmp_path, tmp_path / "data")
        server.proc.send_signal(signal.SIGTERM)
        assert server.proc.wait(timeout=30) == 0
        out = server.proc.stdout.read()
        server.proc.stdout.close()
        assert "draining" in out

    def test_sigterm_mid_job_resumes_cleanly(self, tmp_path):
        expected = _cli_reference(tmp_path, "analytical")
        data_dir = tmp_path / "data"
        first = _ServerProcess(tmp_path, data_dir)
        try:
            client = ServeClient(first.url)
            info = client.submit(_request(n_shards=2, handicap=0.4))
            job_id = info["id"]
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if client.status(job_id)["done"] >= 1:
                    break
                time.sleep(0.02)
        finally:
            first.proc.send_signal(signal.SIGTERM)
        assert first.proc.wait(timeout=60) == 0
        first.proc.stdout.close()

        second = _ServerProcess(tmp_path, data_dir)
        try:
            client = ServeClient(second.url)
            status = client.wait(job_id, timeout=120)
            assert status["state"] == "done"
            assert client.raw_results(job_id) == expected
        finally:
            second.kill()


class TestClientRetries:
    def test_5xx_retries_honour_retry_after(self):
        import threading
        from http.server import BaseHTTPRequestHandler, HTTPServer

        hits = []

        class Flaky(BaseHTTPRequestHandler):
            def do_GET(self):
                hits.append(self.path)
                if len(hits) == 1:
                    body = b'{"error": "warming up"}'
                    self.send_response(503)
                    self.send_header("Retry-After", "0")
                else:
                    body = b'{"ok": true, "stats": {}}'
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Flaky)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(
                f"http://127.0.0.1:{httpd.server_address[1]}",
                retries=2, backoff_s=0.01,
            )
            assert client.health()["ok"] is True
            assert len(hits) == 2
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)

    def test_4xx_never_retries(self, tmp_path):
        with serving(tmp_path / "data", workers=0) as server:
            client = ServeClient(server.url, retries=3, backoff_s=0.01)
            begin = time.monotonic()
            with pytest.raises(ServeError) as err:
                client.submit({"grid": {"bogus": [1]}})
            assert err.value.status == 400
            assert time.monotonic() - begin < 1.0  # no backoff sleeps

    def test_connection_errors_retry_then_raise(self):
        import urllib.error

        client = ServeClient("http://127.0.0.1:9", retries=2, backoff_s=0.01)
        with pytest.raises(urllib.error.URLError):
            client.health()
