"""Tests for the roofline model (Fig. 3)."""

import pytest

from repro.hw import VITCOD_DEFAULT
from repro.roofline import (
    RooflinePoint,
    attainable_gops,
    ridge_intensity,
    sddmm_roofline_points,
)


class TestRoofs:
    def test_compute_roof_is_256_gops(self):
        assert VITCOD_DEFAULT.peak_gops == pytest.approx(256.0)

    def test_ridge(self):
        # 256 GOPS / 76.8 GB/s = 3.33 Ops/Byte.
        assert ridge_intensity() == pytest.approx(256 / 76.8)

    def test_attainable_below_ridge_is_bandwidth(self):
        assert attainable_gops(1.0) == pytest.approx(76.8)

    def test_attainable_above_ridge_is_peak(self):
        assert attainable_gops(100.0) == pytest.approx(256.0)

    def test_negative_intensity_raises(self):
        with pytest.raises(ValueError):
            attainable_gops(-1.0)


class TestPoints:
    def test_three_regimes(self):
        pts = {p.name: p for p in sddmm_roofline_points()}
        assert set(pts) == {"dense-vits", "sparse-vits", "vitcod"}

    def test_sparse_is_memory_bound(self):
        pts = {p.name: p for p in sddmm_roofline_points()}
        assert pts["sparse-vits"].bound == "memory"
        # Paper: ~0.6 Ops/Byte — deep in the bandwidth-bound region.
        assert pts["sparse-vits"].intensity < 1.0

    def test_dense_is_compute_bound(self):
        pts = {p.name: p for p in sddmm_roofline_points()}
        assert pts["dense-vits"].bound == "compute"

    def test_vitcod_recovers_intensity(self):
        pts = {p.name: p for p in sddmm_roofline_points()}
        assert (pts["sparse-vits"].intensity
                < pts["vitcod"].intensity
                <= pts["dense-vits"].intensity)

    def test_vitcod_fastest_runtime(self):
        """ViTCoD does the sparse op count at (near-)compute-bound
        throughput: fastest of the three regimes."""
        pts = {p.name: p for p in sddmm_roofline_points()}
        assert pts["vitcod"].runtime_seconds < pts["sparse-vits"].runtime_seconds
        assert pts["vitcod"].runtime_seconds < pts["dense-vits"].runtime_seconds

    def test_lower_locality_lowers_intensity(self):
        high = {p.name: p for p in sddmm_roofline_points(locality=0.95)}
        low = {p.name: p for p in sddmm_roofline_points(locality=0.3)}
        assert low["vitcod"].intensity < high["vitcod"].intensity

    def test_ae_off_halves_intensity(self):
        on = {p.name: p for p in sddmm_roofline_points(ae_compression=0.5)}
        off = {p.name: p for p in sddmm_roofline_points(ae_compression=1.0)}
        assert off["vitcod"].intensity == pytest.approx(
            on["vitcod"].intensity / 2
        )

    def test_point_with_zero_bytes(self):
        p = RooflinePoint("x", ops=10.0, bytes=0.0)
        assert p.intensity == float("inf")
        assert p.bound == "compute"

    def test_zero_ops_runtime(self):
        p = RooflinePoint("x", ops=0.0, bytes=10.0)
        assert p.runtime_seconds == 0.0
