"""Scan-based scheduler vs the scalar reference: exact-equality properties.

The vectorized engine must reproduce the scalar event loop *bit for bit*
(durations are quantized to a ``2**-20``-cycle grid precisely so that the
two associations of the same event algebra cannot round differently).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import (
    AttentionWorkload,
    CycleAccurateSimulator,
    HeadWorkload,
    VITCOD_DEFAULT,
    dense_attention_workload,
    synthetic_attention_workload,
)


def assert_results_identical(wl, **sim_kwargs):
    """Simulate ``wl`` with both engines and compare field-for-field."""
    vec = CycleAccurateSimulator(engine="vectorized", **sim_kwargs)
    ref = CycleAccurateSimulator(engine="scalar", **sim_kwargs)
    rv = vec.simulate_layer(wl)
    rs = ref.simulate_layer(wl)
    for f in dataclasses.fields(rv):
        assert getattr(rv, f.name) == getattr(rs, f.name), (
            f"field {f.name}: vectorized={getattr(rv, f.name)!r} "
            f"scalar={getattr(rs, f.name)!r}"
        )
    return rv


def head_from_col_nnz(num_tokens, head_dim, ngt, col_nnz):
    """Consistent HeadWorkload with explicit per-column sparser counts."""
    col_nnz = np.asarray(col_nnz, dtype=np.int64)
    return HeadWorkload(
        num_tokens=num_tokens,
        head_dim=head_dim,
        num_global_tokens=ngt,
        denser_nnz=ngt * num_tokens,
        sparser_nnz=int(col_nnz.sum()),
        sparser_index_bytes=int(4 * (col_nnz.size + 1) + col_nnz.sum()),
        sparser_column_nnz=col_nnz,
    )


class TestExactAgreement:
    @pytest.mark.parametrize("use_ae,compression", [
        (True, 0.5), (True, 0.25), (True, 1.0), (False, 0.5),
    ])
    def test_synthetic_workload(self, use_ae, compression):
        wl = synthetic_attention_workload(197, 12, 64, sparsity=0.9, seed=7)
        assert_results_identical(wl, use_ae=use_ae,
                                 ae_compression=compression)

    @pytest.mark.parametrize("sparsity", [0.7, 0.8, 0.95])
    def test_across_sparsity(self, sparsity):
        wl = synthetic_attention_workload(96, 4, 32, sparsity=sparsity, seed=3)
        assert_results_identical(wl)

    def test_dense_workload(self):
        assert_results_identical(dense_attention_workload(32, 2, 16))

    def test_scaled_hardware(self):
        wl = synthetic_attention_workload(48, 2, 16, sparsity=0.8, seed=1)
        assert_results_identical(wl, config=VITCOD_DEFAULT.scaled(4))

    def test_zero_nnz_columns(self):
        """Empty sparser columns are skipped by both engines."""
        heads = [
            head_from_col_nnz(16, 8, ngt=2, col_nnz=[5, 0, 3, 0, 0, 1] + [0] * 8),
            head_from_col_nnz(16, 8, ngt=0, col_nnz=[0] * 16),
        ]
        wl = AttentionWorkload(num_tokens=16, num_heads=2, head_dim=8,
                               heads=heads)
        r = assert_results_identical(wl)
        # head 0: 2 denser + 3 non-empty sparser; head 1: nothing; +2 streams
        assert r.jobs_executed == 2 + 3 + 2

    def test_mean_density_fallback(self):
        """``sparser_column_nnz=None`` falls back to spread counts."""
        heads = [HeadWorkload(
            num_tokens=16, head_dim=8, num_global_tokens=3,
            denser_nnz=48, sparser_nnz=40, sparser_index_bytes=64,
        )]
        wl = AttentionWorkload(num_tokens=16, num_heads=1, head_dim=8,
                               heads=heads)
        assert_results_identical(wl)

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_random_workloads(self, data):
        """Hand-rolled random workloads agree bit-for-bit."""
        num_tokens = data.draw(st.integers(4, 48), label="num_tokens")
        head_dim = data.draw(st.integers(2, 32), label="head_dim")
        num_heads = data.draw(st.integers(1, 4), label="num_heads")
        heads = []
        for h in range(num_heads):
            ngt = data.draw(st.integers(0, num_tokens), label=f"ngt{h}")
            col_nnz = data.draw(
                st.lists(st.integers(0, num_tokens),
                         min_size=num_tokens - ngt,
                         max_size=num_tokens - ngt),
                label=f"col_nnz{h}",
            )
            heads.append(head_from_col_nnz(num_tokens, head_dim, ngt, col_nnz))
        wl = AttentionWorkload(num_tokens=num_tokens, num_heads=num_heads,
                               head_dim=head_dim, heads=heads)
        use_ae = data.draw(st.booleans(), label="use_ae")
        assert_results_identical(wl, use_ae=use_ae)


class TestNnzConservation:
    """The mean-density fallback must not drop remainder products."""

    def _fallback_layer(self, num_tokens, ngt, sparser_nnz):
        head = HeadWorkload(
            num_tokens=num_tokens, head_dim=8, num_global_tokens=ngt,
            denser_nnz=ngt * num_tokens, sparser_nnz=sparser_nnz,
            sparser_index_bytes=0,
        )
        return AttentionWorkload(num_tokens=num_tokens, num_heads=1,
                                 head_dim=8, heads=[head])

    @pytest.mark.parametrize("num_tokens,ngt,nnz", [
        (16, 3, 40),   # 40 over 13 columns: remainder 1
        (16, 0, 17),   # prime nnz over 16 columns
        (10, 2, 7),    # fewer non-zeros than columns
        (10, 10, 0),   # no sparser columns at all
    ])
    def test_jobs_carry_all_products(self, num_tokens, ngt, nnz):
        wl = self._fallback_layer(num_tokens, ngt, nnz)
        sim = CycleAccurateSimulator()
        _, sparser_jobs = sim._build_jobs(wl)
        assert sum(j.products for j in sparser_jobs) == nnz
        _, sparser_products = sim._column_products(wl)
        assert int(sparser_products.sum()) == nnz

    def test_simulated_macs_match_workload(self):
        wl = self._fallback_layer(16, 3, 40)
        sim = CycleAccurateSimulator()
        _, sparser_jobs = sim._build_jobs(wl)
        simulated = sum(j.products for j in sparser_jobs) * wl.head_dim
        assert simulated == wl.heads[0].sparser_macs

    def test_fallback_matches_column_cv_distribution(self):
        """workload.column_cv and the job builder spread identically."""
        wl = self._fallback_layer(16, 3, 40)
        sim = CycleAccurateSimulator()
        _, sparser_jobs = sim._build_jobs(wl)
        job_products = sorted(j.products for j in sparser_jobs)
        # column_cv's product list: ngt global columns + per-column spread
        head = wl.heads[0]
        expected = [head.num_tokens] * head.num_global_tokens
        per, rem = divmod(head.sparser_nnz, head.num_tokens - head.num_global_tokens)
        expected += [per + 1] * rem + [per] * (16 - 3 - rem)
        assert sorted(p for p in expected[3:] if p > 0) == job_products


class TestEngineFlag:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            CycleAccurateSimulator(engine="gpu")

    def test_default_is_vectorized(self):
        assert CycleAccurateSimulator().engine == "vectorized"

    def test_multi_layer_agreement(self):
        wl = synthetic_attention_workload(48, 2, 16, sparsity=0.8, seed=1)
        layers = [wl, wl, wl]
        rv = CycleAccurateSimulator().simulate_attention(layers)
        rs = CycleAccurateSimulator(engine="scalar").simulate_attention(layers)
        assert dataclasses.astuple(rv) == dataclasses.astuple(rs)
