"""Legacy-installer shim; all metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
