"""Fig. 9b / Fig. 18: training trajectory of a ViT with AE modules.

Inserts the head-compression auto-encoder into a pretrained model and
finetunes jointly with `L = L_CE + L_Recons`; prints the per-epoch test
loss, reconstruction loss, and accuracy, showing (1) both losses falling
and (2) accuracy recovering to the vanilla level.

Run:  python examples/ae_training_trajectory.py
"""

from repro.autoencoder import finetune_with_autoencoder
from repro.harness import format_table
from repro.models import pretrained


def main():
    for model_name in ("deit-tiny", "levit-128"):
        pre = pretrained(model_name, epochs=4,
                         dataset_kwargs=dict(num_samples=256, num_classes=3))
        print(f"\n=== {model_name}: vanilla accuracy "
              f"{pre.test_accuracy:.3f} (dashed line in Fig. 9b) ===")
        result = finetune_with_autoencoder(
            pre.model, pre.dataset,
            baseline_accuracy=pre.test_accuracy,
            compression=0.5, epochs=5,
        )
        rows = [
            [h["epoch"], h["test_loss"], h["recon_loss"], h["test_accuracy"]]
            for h in result.history
        ]
        print(format_table(
            ["epoch", "test loss", "recon loss", "accuracy"], rows,
            float_fmt="{:.4f}"))
        print("accuracy drop after AE finetune: "
              f"{result.accuracy_drop:+.3f} (paper: <0.5%)")


if __name__ == "__main__":
    main()
