"""Quickstart: the full ViTCoD flow on a small trained ViT.

1. Train a sim-scale DeiT-Tiny on the synthetic patch dataset.
2. Run the unified ViTCoD pipeline (insert AE → finetune → split-and-conquer
   → finetune) at 90 % target attention sparsity.
3. Build a paper-scale hardware workload and compare the ViTCoD accelerator
   against all five baselines.

Run:  python examples/quickstart.py
"""

from repro.autoencoder import run_vitcod_pipeline
from repro.baselines import (
    SangerSimulator,
    SpAttenSimulator,
    cpu_platform,
    edgegpu_platform,
    gpu_platform,
)
from repro.harness import format_table
from repro.hw import ViTCoDAccelerator, model_workload
from repro.models import get_config, pretrained


def main():
    print("=== Step 1: train a small ViT (ImageNet stand-in) ===")
    pre = pretrained("deit-tiny", epochs=4,
                     dataset_kwargs=dict(num_samples=256, num_classes=3))
    print(f"baseline accuracy: {pre.test_accuracy:.3f}")

    print("\n=== Step 2: unified ViTCoD pipeline (Fig. 10) ===")
    result = run_vitcod_pipeline(pre, target_sparsity=0.9, compression=0.5,
                                 ae_epochs=2, mask_epochs=3)
    print(f"achieved attention sparsity: {result.achieved_sparsity:.1%}")
    print(f"accuracy: {result.baseline_accuracy:.3f} -> "
          f"{result.final_accuracy:.3f} "
          f"(drop {result.accuracy_drop:+.3f})")
    print("global tokens per layer:",
          [int(n.sum()) for n in result.num_global_tokens])

    print("\n=== Step 3: hardware comparison at paper scale (DeiT-Base) ===")
    workload = model_workload(get_config("deit-base"), sparsity=0.9)
    ours = ViTCoDAccelerator().simulate_attention(workload)
    rows = []
    for name, sim in [
        ("CPU", cpu_platform()),
        ("EdgeGPU", edgegpu_platform()),
        ("GPU", gpu_platform()),
        ("SpAtten", SpAttenSimulator()),
        ("Sanger", SangerSimulator()),
    ]:
        report = sim.simulate_attention(workload)
        rows.append([name, report.seconds * 1e3,
                     f"{ours.speedup_over(report):.1f}x"])
    rows.append(["ViTCoD (ours)", ours.seconds * 1e3, "1.0x"])
    print(format_table(["platform", "attention ms", "ViTCoD speedup"], rows,
                       float_fmt="{:.3f}"))


if __name__ == "__main__":
    main()
