"""Design-space exploration around the paper's accelerator design point.

Sweeps MAC count, DRAM bandwidth, buffer size, and AE compression on the
DeiT-Base 90 %-sparsity workload, prints sensitivity tables, and extracts
the latency/energy Pareto frontier — quantifying why the paper's 512-MAC /
76.8 GB/s / 0.5-compression point is a balanced choice.

Run:  python examples/design_space_exploration.py
"""

from repro.harness import format_table, pareto_frontier, sensitivity, sweep_design_space
from repro.hw import model_workload
from repro.models import get_config


def main():
    workload = model_workload(get_config("deit-base"), sparsity=0.9)

    print("=== sensitivity: MAC lines (paper: 64 lines = 512 MACs) ===")
    rows = sensitivity(workload, "mac_lines", [16, 32, 64, 128, 256])
    print(format_table(
        ["mac lines", "latency ms", "energy uJ", "EDP (nJ*s)"],
        [[r["mac_lines"], r["seconds"] * 1e3, r["energy_joules"] * 1e6,
          r["edp"] * 1e12] for r in rows],
    ))

    print("\n=== sensitivity: DRAM bandwidth (paper: 76.8 GB/s) ===")
    rows = sensitivity(workload, "bandwidth_gbps", [19.2, 38.4, 76.8, 153.6])
    print(format_table(
        ["GB/s", "latency ms", "energy uJ"],
        [[r["bandwidth_gbps"], r["seconds"] * 1e3,
          r["energy_joules"] * 1e6] for r in rows],
    ))

    print("\n=== sensitivity: AE compression (paper: 0.5) ===")
    rows = sensitivity(workload, "ae_compression", [None, 0.75, 0.5, 0.25])
    print(format_table(
        ["compression", "latency ms", "energy uJ"],
        [[str(r["ae_compression"]), r["seconds"] * 1e3,
          r["energy_joules"] * 1e6] for r in rows],
    ))

    print("\n=== 2-D sweep + Pareto frontier (latency vs energy) ===")
    grid = {"mac_lines": [32, 64, 128], "ae_compression": [None, 0.5],
            "bandwidth_gbps": [38.4, 76.8]}
    points = sweep_design_space(workload, grid)
    frontier = pareto_frontier(points)
    print(f"{len(points)} design points, {len(frontier)} on the frontier:")
    print(format_table(
        ["parameters", "latency ms", "energy uJ"],
        [[", ".join(f"{k}={v}" for k, v in p.parameters),
          p.seconds * 1e3, p.energy_joules * 1e6]
         for p in sorted(frontier, key=lambda p: p.seconds)],
    ))

    print("\n=== hybrid sweep: analytical prune, cycle-accurate re-score ===")
    survivors = sweep_design_space(workload, grid, evaluator="hybrid")
    print(format_table(
        ["parameters", "cycle-sim latency ms", "energy uJ"],
        [[", ".join(f"{k}={v}" for k, v in p.parameters),
          p.seconds * 1e3, p.energy_joules * 1e6]
         for p in survivors],
    ))


if __name__ == "__main__":
    main()
