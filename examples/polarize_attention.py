"""Algorithm 1 in action: prune + reorder a DeiT-Base-scale attention map.

Reproduces the Fig. 8 effect in ASCII: after split-and-conquer, each head's
mask shows a dense block of global-token columns on the left and a sparse
(mostly diagonal) remainder.

Run:  python examples/polarize_attention.py
"""


from repro.harness import format_table
from repro.sparsity import metrics, split_and_conquer, synthetic_vit_attention


def ascii_mask(mask, out_size=48):
    """Downsample a boolean mask to an ASCII density picture."""
    n = mask.shape[0]
    step = max(1, n // out_size)
    lines = []
    for i in range(0, n - step + 1, step):
        row = []
        for j in range(0, n - step + 1, step):
            block = mask[i:i + step, j:j + step]
            density = block.mean()
            row.append(" .:*#"[min(4, int(density * 5))])
        lines.append("".join(row))
    return "\n".join(lines)


def main():
    maps = synthetic_vit_attention(197, num_heads=12, seed=0)
    result = split_and_conquer(maps, target_sparsity=0.9, theta_d=0.25)

    print(f"attention sparsity: {result.sparsity:.1%}")
    print(f"theta_p found by bisection: {result.theta_p:.4f}\n")

    head = result.partitions[0]
    print(f"Head 0 — {head.num_global_tokens} global tokens, "
          f"denser density {head.denser_density:.2f}, "
          f"sparser density {head.sparser_density:.3f}")
    print("\nmask BEFORE reordering (original token order):")
    print(ascii_mask(result.mask[0]))
    print("\nmask AFTER reordering (global tokens moved to the left):")
    print(ascii_mask(head.reordered_mask))

    rows = []
    for h, part in enumerate(result.partitions):
        rows.append([
            f"head {h}",
            part.num_global_tokens,
            f"{part.denser_density:.2f}",
            f"{part.sparser_density:.3f}",
            "{:.3f}".format(metrics.polarization_score(
                part.reordered_mask[None], part.num_global_tokens)),
        ])
    print("\nper-head polarization:")
    print(format_table(
        ["head", "global tokens", "denser density", "sparser density",
         "polarization"], rows))

    summary = metrics.mask_summary(result.reordered_masks(),
                                   result.num_global_tokens)
    print("\nlayer summary:",
          {k: round(v, 3) for k, v in summary.items()})


if __name__ == "__main__":
    main()
