"""Fig. 15/19-style comparison across all seven ViT models.

For each model, simulates the core-attention workload at 90 % sparsity on
ViTCoD and all five baselines, then prints speedups, the ViTCoD latency
breakdown, the ablation (no AE / single engine / S-stationary), and energy.

Run:  python examples/accelerator_comparison.py
"""

from repro.baselines import (
    SangerSimulator,
    SpAttenSimulator,
    cpu_platform,
    edgegpu_platform,
    gpu_platform,
)
from repro.harness import ALL_MODELS, format_table
from repro.hw import ViTCoDAccelerator, model_workload
from repro.models import get_config


def main():
    sparsity = 0.9
    baselines = [
        ("cpu", cpu_platform()),
        ("edgegpu", edgegpu_platform()),
        ("gpu", gpu_platform()),
        ("spatten", SpAttenSimulator()),
        ("sanger", SangerSimulator()),
    ]
    vitcod = ViTCoDAccelerator()

    rows = []
    for name in ALL_MODELS:
        wl = model_workload(get_config(name), sparsity=sparsity)
        ours = vitcod.simulate_attention(wl)
        speedups = [
            ours.speedup_over(sim.simulate_attention(wl))
            for _, sim in baselines
        ]
        rows.append([name] + [f"{s:.1f}x" for s in speedups])
    print(f"Core-attention speedups at {sparsity:.0%} sparsity "
          "(paper Fig. 15a):")
    print(format_table(["model"] + [b for b, _ in baselines], rows))

    print("\nViTCoD ablation on DeiT-Base (attention only):")
    wl = model_workload(get_config("deit-base"), sparsity=sparsity)
    variants = [
        ("full (S&C + AE, two-pronged)", ViTCoDAccelerator()),
        ("no auto-encoder", ViTCoDAccelerator(use_ae=False)),
        ("single engine", ViTCoDAccelerator(use_ae=False, two_pronged=False)),
        ("S-stationary dataflow", ViTCoDAccelerator(dataflow="s_stationary")),
    ]
    base = variants[0][1].simulate_attention(wl)
    rows = []
    for label, acc in variants:
        r = acc.simulate_attention(wl)
        f = r.latency.fractions()
        rows.append([
            label, r.seconds * 1e3, f"{base.seconds / r.seconds:.2f}x",
            f"{f['compute']:.0%}", f"{f['preprocess']:.0%}",
            f"{f['data_movement']:.0%}",
        ])
    print(format_table(
        ["variant", "ms", "rel. speed", "compute", "preproc", "data mv"],
        rows, float_fmt="{:.3f}"))

    print("\nEnergy (DeiT-Base attention, lower is better):")
    rows = []
    for label, sim in [("ViTCoD", vitcod), ("Sanger", SangerSimulator()),
                       ("SpAtten", SpAttenSimulator())]:
        r = sim.simulate_attention(wl)
        rows.append([label, r.energy_joules * 1e6,
                     f"{r.energy_pj / base.energy_pj:.2f}x"])
    print(format_table(["design", "energy (uJ)", "vs ViTCoD"], rows))


if __name__ == "__main__":
    main()
