"""AR/VR scenario: sparse attention for the Strided Transformer (Human3.6M
stand-in).

The paper's third workload class is 3-D human pose estimation.  This example
trains the sequence model on synthetic pose data, extracts its attention
maps, applies split-and-conquer at 80 % sparsity, verifies the pose error
holds up after a short finetune, and reports simulated attention latency.

Run:  python examples/pose_estimation.py
"""

from repro.hw import ViTCoDAccelerator, model_workload
from repro.models import (
    evaluate_pose,
    extract_average_attention,
    get_config,
    pretrained,
)
from repro.models.zoo import train_pose_model
from repro.sparsity import split_and_conquer


def main():
    print("=== train Strided Transformer on synthetic pose sequences ===")
    pre = pretrained("strided-transformer", epochs=6,
                     dataset_kwargs=dict(num_samples=192))
    x_tr, y_tr, x_te, y_te = pre.dataset.split()
    base_err = evaluate_pose(pre.model, x_te, y_te)
    print(f"dense pose error (MSE): {base_err:.4f}")

    print("\n=== split-and-conquer on its attention maps (80% sparsity) ===")
    maps = extract_average_attention(pre.model, x_tr)
    results = [split_and_conquer(m, target_sparsity=0.8, theta_d=0.25)
               for m in maps]
    pre.model.set_masks([r.mask for r in results])
    print("per-layer sparsity:", [f"{r.sparsity:.1%}" for r in results])
    print("global tokens (anchor frames):",
          [int(r.num_global_tokens.sum()) for r in results])

    masked_err = evaluate_pose(pre.model, x_te, y_te)
    print(f"pose error with fixed masks (no finetune): {masked_err:.4f}")

    train_pose_model(pre.model, pre.dataset, epochs=3)
    final_err = evaluate_pose(pre.model, x_te, y_te)
    print(f"pose error after finetune: {final_err:.4f} "
          f"(dense baseline {base_err:.4f})")

    print("\n=== simulated attention latency at paper scale (351 frames) ===")
    cfg = get_config("strided-transformer")
    dense = ViTCoDAccelerator(use_ae=False).simulate_attention(
        model_workload(cfg, sparsity=None))
    sparse = ViTCoDAccelerator().simulate_attention(
        model_workload(cfg, sparsity=0.8))
    print(f"dense:  {dense.seconds * 1e3:.3f} ms")
    print(f"ViTCoD: {sparse.seconds * 1e3:.3f} ms "
          f"({dense.seconds / sparse.seconds:.1f}x faster)")


if __name__ == "__main__":
    main()
