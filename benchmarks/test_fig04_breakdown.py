"""Fig. 4 — FLOPs and EdgeGPU latency breakdowns for seven ViT models.

Paper: the self-attention module accounts for >50 % of end-to-end latency
on an EdgeGPU (up to 69 % for LeViT-128) although MLPs dominate FLOPs; the
Q/K/V matmuls and reshapes take up to 53 % of the SA module's latency.
"""

from repro.harness import ALL_MODELS, fig4_breakdown

from conftest import print_paper_vs_measured


def test_fig4_breakdowns(benchmark):
    rows_data = benchmark.pedantic(
        lambda: fig4_breakdown(models=ALL_MODELS), rounds=1, iterations=1
    )
    levit128 = next(r for r in rows_data if r["model"] == "levit-128")
    deit_base = next(r for r in rows_data if r["model"] == "deit-base")

    rows = [
        ("LeViT-128 SA latency frac", 0.69, levit128["sa_latency_fraction"]),
        ("DeiT-Base SA latency frac", ">0.5",
         deit_base["sa_latency_fraction"]),
        ("core matmul frac of SA", 0.53, deit_base["core_fraction_of_sa"]),
        ("DeiT-Base MLP FLOPs frac", ">attn",
         deit_base["flops_fraction"]["mlp"]),
    ]
    print_paper_vs_measured("Fig. 4 breakdowns (EdgeGPU model)", rows)

    for row in rows_data:
        # SA >= ~half the latency on every model.
        assert row["sa_latency_fraction"] > 0.45, row["model"]
        # ...although MLP leads in FLOPs for the classification ViTs.
        if row["model"].startswith(("deit", "levit")):
            assert (row["flops_fraction"]["mlp"]
                    > row["flops_fraction"]["attention_core"])
    # LeViT-128 is the extreme case, as in the paper.
    assert levit128["sa_latency_fraction"] == max(
        r["sa_latency_fraction"] for r in rows_data if "levit" in r["model"]
    )
    assert levit128["sa_latency_fraction"] > 0.6
