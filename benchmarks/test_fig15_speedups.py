"""Fig. 15 — core-attention and end-to-end speedups over five baselines.

Paper (90 % sparsity, averaged over the DeiT/LeViT models):
  core attention: 235.3x CPU, 142.9x EdgeGPU, 86.0x GPU,
                  10.1x SpAtten, 6.8x Sanger
  end-to-end:     33.8x CPU, 5.6x EdgeGPU, 3.1x SpAtten, 2.1x Sanger
"""


from repro.harness import DEFAULT_MODELS, fig15_speedups

from conftest import print_paper_vs_measured

PAPER_CORE = {"cpu": 235.3, "edgegpu": 142.9, "gpu": 86.0,
              "spatten": 10.1, "sanger": 6.8}
PAPER_E2E = {"cpu": 33.8, "edgegpu": 5.6, "spatten": 3.1, "sanger": 2.1}


def test_fig15a_core_attention_speedups(benchmark):
    data = benchmark.pedantic(
        lambda: fig15_speedups(sparsity=0.9, models=DEFAULT_MODELS),
        rounds=1, iterations=1,
    )
    rows = [(name, PAPER_CORE[name], data["mean"][name])
            for name in PAPER_CORE]
    print_paper_vs_measured("Fig. 15a core-attention speedups @90%", rows)

    mean = data["mean"]
    # Shape assertions: ordering and rough magnitudes.
    assert mean["cpu"] > mean["edgegpu"] > mean["gpu"] > mean["spatten"]
    assert mean["spatten"] > mean["sanger"] > 1.0
    for name, paper in PAPER_CORE.items():
        assert 0.4 * paper < mean[name] < 2.5 * paper, name


def test_fig15b_end_to_end_speedups(benchmark):
    data = benchmark.pedantic(
        lambda: fig15_speedups(sparsity=0.9, models=("deit-tiny", "deit-base",
                                                     "levit-128"),
                               end_to_end=True),
        rounds=1, iterations=1,
    )
    mean = data["mean"]
    rows = [(name, PAPER_E2E[name], mean[name]) for name in PAPER_E2E]
    print_paper_vs_measured("Fig. 15b end-to-end speedups @90%", rows)

    # End-to-end gains are much smaller than core-attention gains (Amdahl);
    # ViTCoD still wins against every platform.  Our accelerator-vs-
    # accelerator e2e margins (~1.1x) fall short of the paper's 2-3x because
    # the shared 512-MAC dense path dominates e2e in our model — see
    # EXPERIMENTS.md.
    core = fig15_speedups(sparsity=0.9, models=("deit-base",))
    assert mean["cpu"] < core["mean"]["cpu"]
    assert mean["cpu"] > 10.0
    assert mean["edgegpu"] > 2.5
    assert mean["sanger"] > 1.0
    assert mean["spatten"] > 1.0
