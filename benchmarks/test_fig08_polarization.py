"""Fig. 8 — attention-map polarization across 12 layers × 12 heads.

Paper: after pruning + reordering, every DeiT-Base head's mask shows a
clustered dense block on the left and a very sparse remainder (diagonal or
uniformly scattered), at 197x197 resolution.
"""

from repro.harness import fig8_polarization

from conftest import print_paper_vs_measured


def test_fig8_polarization(benchmark):
    data = benchmark.pedantic(
        lambda: fig8_polarization(num_tokens=197, num_heads=12,
                                  num_layers=12, sparsity=0.9),
        rounds=1, iterations=1,
    )
    rows = [
        ("mean polarization", "high (~1)", data["mean_polarization"]),
        ("layers analysed", 12, len(data["layers"])),
    ]
    print_paper_vs_measured("Fig. 8 polarization (DeiT-Base scale)", rows)

    assert len(data["layers"]) == 12
    assert data["mean_polarization"] > 0.8
    for layer in data["layers"]:
        # Pruning fixes the sparsity; reordering does not change nnz.
        assert abs(layer["prune_and_reorder"]["sparsity"] - 0.9) < 0.02
        assert (layer["prune_and_reorder"]["sparsity"]
                == layer["prune_only"]["sparsity"])
        # Every layer found at least one global token per head on average.
        assert sum(layer["num_global_tokens"]) >= 12
