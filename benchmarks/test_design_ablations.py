"""Design-choice ablations called out in DESIGN.md §5.

These back the paper's §V design discussion with measurements from our
simulators: K- vs S-stationary SDDMM dataflow, two-pronged vs single
engine, CSC vs COO indexing, the AE datapath, query-based forwarding, and
the event-driven simulator's validation against the analytical model.
"""

import pytest

from repro.hw import (
    CycleAccurateSimulator,
    ViTCoDAccelerator,
    synthetic_attention_workload,
)

from conftest import print_paper_vs_measured


@pytest.fixture(scope="module")
def deit_base_90(workload_cache):
    return workload_cache("deit-base", 0.9)


def test_dataflow_ablation(benchmark, deit_base_90):
    """§V-A Design Exploration 2: K-stationary beats S-stationary for the
    polarized masks."""

    def run():
        k = ViTCoDAccelerator().simulate_attention(deit_base_90)
        s = ViTCoDAccelerator(
            dataflow="s_stationary"
        ).simulate_attention(deit_base_90)
        return k, s

    k, s = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("K-stationary vs S-stationary", ">1x",
             s.seconds / k.seconds)]
    print_paper_vs_measured("Dataflow ablation (DeiT-Base @90%)", rows)
    assert s.seconds > k.seconds


def test_two_pronged_ablation(benchmark, deit_base_90):
    """§V-A Design Exploration 1: two engines beat one on polarized
    workloads (load-imbalance penalty on the single engine)."""

    def run():
        two = ViTCoDAccelerator(use_ae=False).simulate_attention(deit_base_90)
        one = ViTCoDAccelerator(
            use_ae=False, two_pronged=False
        ).simulate_attention(deit_base_90)
        return two, one

    two, one = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("two-pronged vs single engine", ">1x", one.seconds / two.seconds)]
    print_paper_vs_measured("Engine-count ablation", rows)
    assert one.seconds > two.seconds


def test_index_format_ablation(benchmark):
    """§V-B.1: CSC beats COO for the sparser engine's indexes on ViT masks
    (smaller index footprint -> smaller preload)."""

    def run():
        csc = synthetic_attention_workload(197, 12, 64, sparsity=0.9,
                                           seed=7, index_format="csc")
        coo = synthetic_attention_workload(197, 12, 64, sparsity=0.9,
                                           seed=7, index_format="coo")
        return csc, coo

    csc, coo = benchmark.pedantic(run, rounds=1, iterations=1)
    acc = ViTCoDAccelerator()
    r_csc = acc.simulate_attention_layer(csc)
    r_coo = acc.simulate_attention_layer(coo)
    rows = [
        ("CSC index bytes", "< COO", csc.index_bytes()),
        ("COO index bytes", "", coo.index_bytes()),
        ("CSC preprocess cycles", "< COO", r_csc.latency.preprocess),
    ]
    print_paper_vs_measured("Index-format ablation", rows)
    assert csc.index_bytes() < coo.index_bytes()
    assert r_csc.latency.preprocess < r_coo.latency.preprocess
    # Index buffer budget: the paper allocates 20KB per layer working set.
    per_head = csc.index_bytes() / csc.num_heads
    assert per_head < 20 * 1024


def test_ae_and_forwarding_ablation(benchmark, deit_base_90):
    """§IV-C / §V-B.1: the AE datapath and query-based forwarding each cut
    attention latency and DRAM traffic."""

    def run():
        full = ViTCoDAccelerator().simulate_attention(deit_base_90)
        no_ae = ViTCoDAccelerator(use_ae=False).simulate_attention(deit_base_90)
        no_fwd = ViTCoDAccelerator(
            q_forwarding_hit_rate=0.0
        ).simulate_attention(deit_base_90)
        return full, no_ae, no_fwd

    full, no_ae, no_fwd = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("AE speedup", "~2.5x (paper)", no_ae.seconds / full.seconds),
        ("forwarding speedup", ">=1x", no_fwd.seconds / full.seconds),
    ]
    print_paper_vs_measured("AE + forwarding ablation", rows)
    assert no_ae.seconds > full.seconds
    assert no_fwd.seconds >= full.seconds


def test_event_driven_validates_analytical(benchmark, deit_base_90):
    """DESIGN.md validation requirement: the event-driven simulator and the
    analytical model agree within a bounded factor and track each other
    across sparsity."""

    def run():
        event = CycleAccurateSimulator().simulate_attention(
            deit_base_90.attention_layers
        )
        analytic = ViTCoDAccelerator().simulate_attention(deit_base_90)
        return event, analytic

    event, analytic = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = event.makespan / analytic.cycles
    rows = [
        ("event/analytical makespan ratio", "~1", ratio),
        ("denser-engine utilization", "(reported)",
         event.denser_busy / event.makespan),
        ("DRAM utilization", "(reported)",
         event.dram_busy / event.makespan),
    ]
    print_paper_vs_measured("Event-driven vs analytical", rows)
    assert 0.5 < ratio < 4.0
    assert 0.0 < event.dram_busy / event.makespan <= 1.0


def test_batch_scaling(benchmark, workload_cache):
    """§VI-A: for large-batch GPU comparisons the accelerator is scaled to
    comparable peak throughput; scaling must reduce latency near-linearly
    for compute-bound workloads."""

    def run():
        wl = workload_cache("deit-base", 0.9)
        base = ViTCoDAccelerator()
        big = ViTCoDAccelerator(config=base.config.scaled(4, name="x4"))
        return (base.simulate_attention(wl), big.simulate_attention(wl))

    small, big = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = small.seconds / big.seconds
    rows = [("4x resources speedup", "~4x", gain)]
    print_paper_vs_measured("Resource-scaling ablation", rows)
    assert 2.0 < gain <= 4.5
