"""Fig. 3 — roofline analysis of the S = Q·Kᵀ bottleneck.

Paper: 256 GOPS compute roof, 76.8 GB/s bandwidth roof; dense ViTs sit near
intensity 3.9 (compute side), naive sparse ViTs fall to ~0.6 (deep in the
bandwidth-bound region), and ViTCoD's polarization + AE push the operating
point back toward / past the ridge.
"""

from repro.harness import fig3_roofline
from repro.hw import VITCOD_DEFAULT

from conftest import print_paper_vs_measured


def test_fig3_roofline(benchmark):
    data = benchmark.pedantic(fig3_roofline, rounds=1, iterations=1)
    by_name = {p["name"]: p for p in data["points"]}

    rows = [
        ("compute roof (GOPS)", 256.0, VITCOD_DEFAULT.peak_gops),
        ("sparse ViT intensity", 0.6, by_name["sparse-vits"]["intensity"]),
        ("sparse ViT bound", "memory", by_name["sparse-vits"]["bound"]),
        ("dense ViT bound", "compute", by_name["dense-vits"]["bound"]),
        ("ViTCoD bound", "compute", by_name["vitcod"]["bound"]),
    ]
    print_paper_vs_measured("Fig. 3 roofline", rows)

    assert VITCOD_DEFAULT.peak_gops == 256.0
    assert by_name["sparse-vits"]["bound"] == "memory"
    assert by_name["sparse-vits"]["intensity"] < 1.0  # paper: 0.6
    assert by_name["dense-vits"]["bound"] == "compute"
    # ViTCoD recovers intensity past the ridge (the arrow in Fig. 3).
    assert (by_name["vitcod"]["intensity"] > data["ridge_ops_per_byte"]
            > by_name["sparse-vits"]["intensity"])
    # ViTCoD attains full compute throughput on the sparse op count.
    assert by_name["vitcod"]["attainable_gops"] == 256.0
