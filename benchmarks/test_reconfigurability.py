"""§V-B.3 — reconfigurability: one-time compilation, amortized.

Paper: the accelerator adapts to new tasks (different masks / head counts)
through a one-time hardware-compilation pass whose "cost ... is amortized
across the execution lifetime of each task".  This bench measures that cost
against per-inference time and against Sanger's pay-every-input dynamic
prediction.
"""

from repro.baselines import SangerSimulator
from repro.compiler import estimate_compile_cost, parse_layers
from repro.compiler.reconfig import amortized_overhead, break_even_inferences
from repro.hw import ViTCoDAccelerator, attention_workload_from_masks
from repro.sparsity import split_and_conquer, synthetic_vit_attention

from conftest import print_paper_vs_measured


def test_compile_once_amortizes(benchmark):
    def run():
        results = [
            split_and_conquer(
                synthetic_vit_attention(197, num_heads=12, seed=s),
                target_sparsity=0.9,
            )
            for s in range(12)  # DeiT-Base depth
        ]
        cfgs = parse_layers(results, head_dim=64)
        cost = estimate_compile_cost(cfgs)
        acc = ViTCoDAccelerator()
        workloads = [attention_workload_from_masks(r, head_dim=64)
                     for r in results]
        inference = sum(
            acc.simulate_attention_layer(w).cycles for w in workloads
        )
        sanger = SangerSimulator()
        prediction = sum(
            sanger.simulate_attention_layer(w).latency.preprocess
            for w in workloads
        )
        return cost, inference, prediction

    cost, inference, prediction = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    overhead_100 = amortized_overhead(cost, inference, 100)
    breakeven = break_even_inferences(cost, prediction)
    rows = [
        ("compile cost / inference", "amortized",
         cost.total_cycles / inference),
        ("overhead after 100 inferences", "negligible", overhead_100),
        ("break-even vs Sanger prediction", "few inferences",
         float(breakeven)),
    ]
    print_paper_vs_measured("§V-B.3 reconfigurability", rows)

    # One task compile costs at most a few inferences' worth of cycles...
    assert cost.total_cycles < 10 * inference
    # ...is negligible after 100 inferences...
    assert overhead_100 < 0.05
    # ...and beats per-input dynamic prediction almost immediately.
    assert breakeven <= 5
