"""Fig. 1 — accuracy/BLEU vs sparsity: ViT fixed masks vs NLP dynamic.

Paper claims: ViTs tolerate 90-95 % fixed-mask sparsity with <=1.5 % drop;
NLP Transformers degrade clearly past 50-70 % even with dynamic patterns.

Two modes are benchmarked: the calibrated surrogate curves (paper-scale
axes) and a *measured* run on our small trained ViT (real masks, real
finetuning) confirming the flat-then-knee trend for real.
"""


from repro.autoencoder import run_vitcod_pipeline
from repro.harness import fig1_accuracy_sparsity
from repro.models import pretrained

from conftest import print_paper_vs_measured


def test_fig1_surrogate_curves(benchmark):
    data = benchmark.pedantic(fig1_accuracy_sparsity, rounds=1, iterations=1)
    sp = data["sparsities"]
    idx90 = sp.index(0.9)
    deit = data["curves"]["deit-base (fixed)"]
    nlp = data["curves"]["nlp predictor (dynamic)"]

    rows = [
        ("DeiT-B drop @90% (<=1.5)", 1.5, deit[0] - deit[idx90]),
        ("NLP drop @90% (severe)", ">3", nlp[0] - nlp[idx90]),
    ]
    print_paper_vs_measured("Fig. 1 accuracy vs sparsity", rows)

    assert deit[0] - deit[idx90] <= 1.5
    assert nlp[0] - nlp[idx90] > 2.0
    # Every curve is non-increasing in sparsity.
    for curve in data["curves"].values():
        assert all(a >= b - 1e-9 for a, b in zip(curve, curve[1:]))


def test_fig1_measured_on_trained_model(benchmark):
    """Real measurement: fixed masks at increasing sparsity on a trained
    sim-scale ViT keep accuracy flat until very high sparsity."""

    def run():
        accs = {}
        for sparsity in (0.5, 0.9):
            pre = pretrained("deit-tiny", epochs=3,
                             dataset_kwargs=dict(num_samples=192,
                                                 num_classes=3))
            result = run_vitcod_pipeline(
                pre, target_sparsity=sparsity, compression=None,
                ae_epochs=0, mask_epochs=2, seed=0,
            )
            accs[sparsity] = (result.baseline_accuracy,
                              result.final_accuracy)
        return accs

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"acc drop @{int(s*100)}% (paper <1%)", "<0.01",
         accs[s][0] - accs[s][1])
        for s in accs
    ]
    print_paper_vs_measured("Fig. 1 measured (sim-scale ViT)", rows)
    for sparsity, (base, final) in accs.items():
        assert final >= base - 0.12, f"accuracy collapsed at {sparsity}"
