"""Fig. 17 — accuracy vs attention latency, ViTCoD vs unpruned baselines.

Paper: the full ViTCoD algorithm (split-and-conquer at 90 % for DeiT / 80 %
for LeViT, plus the 50 %-compression AE) cuts attention-layer latency by
45.1-85.8 % (DeiT) and 72.0-84.3 % (LeViT) with <1 % accuracy drop.
"""

from repro.harness import DEFAULT_MODELS, fig17_accuracy_latency

from conftest import print_paper_vs_measured


def test_fig17_accuracy_latency(benchmark):
    rows_data = benchmark.pedantic(
        lambda: fig17_accuracy_latency(models=DEFAULT_MODELS),
        rounds=1, iterations=1,
    )
    deit = [r for r in rows_data if r["model"].startswith("deit")]
    levit = [r for r in rows_data if r["model"].startswith("levit")]

    rows = [
        ("DeiT latency reduction", "45.1-85.8%",
         f"{min(r['latency_reduction'] for r in deit):.0%}-"
         f"{max(r['latency_reduction'] for r in deit):.0%}"),
        ("LeViT latency reduction", "72.0-84.3%",
         f"{min(r['latency_reduction'] for r in levit):.0%}-"
         f"{max(r['latency_reduction'] for r in levit):.0%}"),
        ("max accuracy drop", "<1.0",
         max(r["dense_accuracy"] - r["vitcod_accuracy"]
             for r in rows_data)),
    ]
    print_paper_vs_measured("Fig. 17 accuracy vs latency", rows)

    for row in rows_data:
        assert 0.4 < row["latency_reduction"] < 0.95, row["model"]
        assert row["dense_accuracy"] - row["vitcod_accuracy"] < 1.0
        assert row["vitcod_latency_ms"] < row["dense_latency_ms"]
    # LeViT runs at the reduced 80% sparsity point (its knee, §VI-C).
    assert all(r["sparsity"] == 0.8 for r in levit)
    assert all(r["sparsity"] == 0.9 for r in deit)
