"""Whole-model simulation microbenchmarks: batched engine vs layer loops.

Smoke mode (plain ``pytest``) runs a small model and only checks that the
batched whole-model results agree bit-for-bit with the per-layer loops;
full mode (``--bench-out``) runs 12-layer DeiT-Base and asserts the
speedups.
"""

import dataclasses

from repro.hw import CycleAccurateSimulator, ViTCoDAccelerator, \
    merge_cycle_results
from repro.perf import benchit, cached_model_workload


def test_whole_model_batched_cycle_sim(bench_recorder, bench_mode):
    """Batched one-scan whole-model cycle sim vs the per-layer loops."""
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    wl = cached_model_workload(model, sparsity=0.9)
    layers = wl.attention_layers

    vec = CycleAccurateSimulator()
    scalar = CycleAccurateSimulator(engine="scalar")

    # Bit-exact agreement between the batched pipeline and both loops.
    batched_result = vec.simulate_attention(wl)
    loop_result = merge_cycle_results(vec.simulate_layer(l) for l in layers)
    assert dataclasses.astuple(batched_result) == dataclasses.astuple(loop_result)
    assert len(batched_result.per_layer) == len(layers)

    repeats = 20 if full else 2
    batched = benchit(lambda: vec.simulate_attention(wl),
                      name="batched", repeats=repeats, warmup=1)
    layer_vec = benchit(
        lambda: merge_cycle_results(vec.simulate_layer(l) for l in layers),
        name="per_layer_vectorized", repeats=repeats, warmup=1,
    )
    layer_scalar = benchit(lambda: scalar.simulate_attention(layers),
                           name="per_layer_scalar",
                           repeats=max(repeats // 6, 1), warmup=0)

    speedup_vs_loop = layer_scalar.best / batched.best
    speedup_vs_vec_loop = layer_vec.best / batched.best
    bench_recorder.record(
        "whole_model_cycle_sim",
        model=model,
        layers=len(layers),
        batched=batched.to_dict(),
        per_layer_vectorized=layer_vec.to_dict(),
        per_layer_scalar=layer_scalar.to_dict(),
        speedup_vs_layer_loop=speedup_vs_loop,
        speedup_vs_vectorized_layer_loop=speedup_vs_vec_loop,
    )
    assert batched.best > 0
    if full:
        assert speedup_vs_loop >= 5.0, (
            f"batched whole-model speedup only {speedup_vs_loop:.1f}x"
        )


def test_whole_model_batched_analytical(bench_recorder, bench_mode):
    """Array-geometry ViTCoDAccelerator vs its per-layer reference fold."""
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    wl = cached_model_workload(model, sparsity=0.9)

    batched_acc = ViTCoDAccelerator()
    loop_acc = ViTCoDAccelerator(batched=False)
    a = batched_acc.simulate_model(wl)
    b = loop_acc.simulate_model(wl)
    assert dataclasses.astuple(a.latency) == dataclasses.astuple(b.latency)
    assert dataclasses.astuple(a.energy) == dataclasses.astuple(b.energy)

    repeats = 30 if full else 2
    batched = benchit(lambda: batched_acc.simulate_model(wl),
                      name="batched", repeats=repeats, warmup=2)
    loop = benchit(lambda: loop_acc.simulate_model(wl),
                   name="per_layer_loop", repeats=max(repeats // 3, 1),
                   warmup=1)
    speedup = loop.best / batched.best
    bench_recorder.record(
        "whole_model_analytical",
        model=model,
        batched=batched.to_dict(),
        per_layer_loop=loop.to_dict(),
        speedup_vs_layer_loop=speedup,
    )
    if full:
        assert speedup >= 1.2, f"batched analytical only {speedup:.1f}x"
