"""Telemetry overhead: instrumentation must be (near) free when off.

Three timings of the same batched analytical sweep (1080 grid points in
full mode):

* ``uninstrumented`` — the floor: :mod:`repro.obs` swapped for inert
  stubs inside the DSE engine, so the hot path pays nothing but the
  calls the instrumentation added;
* ``disabled`` — the shipped default: a disabled registry, every
  accessor returning the shared no-op singleton;
* ``enabled`` — full collection, the serve layer's configuration.

The ``obs_overhead`` entry in ``BENCH_perf.json`` records all three;
full mode asserts disabled stays under 3% of the floor and enabled under
10% — the "instrumentation everywhere, cost opt-in" contract of
:mod:`repro.obs`.
"""

import math

from repro import obs
from repro.harness.dse import sweep_design_space
from repro.obs.registry import NOOP_METRIC, NOOP_SPAN, Registry
from repro.perf import benchit, cached_model_workload

import repro.harness.dse as dse_mod


class _InertRegistry:
    enabled = False
    tracer = None


class _InertObs:
    """The cheapest conceivable obs surface — the uninstrumented floor."""

    _registry = _InertRegistry()

    @staticmethod
    def get_registry():
        return _InertObs._registry

    @staticmethod
    def counter(name, help="", **labels):
        return NOOP_METRIC

    @staticmethod
    def gauge(name, help="", **labels):
        return NOOP_METRIC

    @staticmethod
    def histogram(name, help="", buckets=None, **labels):
        return NOOP_METRIC

    @staticmethod
    def span(name, **trace_args):
        return NOOP_SPAN


def test_obs_overhead(bench_recorder, bench_mode, monkeypatch):
    """Instrumented sweep vs telemetry-disabled vs the stubbed floor."""
    full = bench_mode == "full"
    model = "deit-tiny"
    if full:
        # 6 x 5 x 4 x 3 x 3 = 1080 points, every DSE knob swept.
        grid = {
            "mac_lines": [16, 32, 64, 128, 256, 512],
            "bandwidth_gbps": [19.2, 38.4, 76.8, 153.6, 307.2],
            "act_buffer_kb": [64, 128, 256, 512],
            "ae_compression": [None, 0.5, 0.25],
            "q_forwarding_hit_rate": [0.0, 0.3, 0.6],
        }
    else:
        grid = {"mac_lines": [32, 64], "ae_compression": [None, 0.5]}
    grid_points = math.prod(len(v) for v in grid.values())
    workload = cached_model_workload(model, sparsity=0.9)
    repeats = 7 if full else 2

    def sweep():
        return sweep_design_space(workload, grid)

    with monkeypatch.context() as mp:
        mp.setattr(dse_mod, "obs", _InertObs)
        expected = sweep()
        floor = benchit(sweep, name="uninstrumented", repeats=repeats, warmup=1)

    with obs.use_registry(Registry(enabled=False)):
        assert sweep() == expected  # telemetry never alters results
        disabled = benchit(sweep, name="disabled", repeats=repeats, warmup=1)

    with obs.use_registry(Registry(enabled=True)) as registry:
        assert sweep() == expected
        enabled = benchit(sweep, name="enabled", repeats=repeats, warmup=1)
        scored = registry.value("dse_points_scored")

    assert scored is not None and scored >= grid_points
    overhead_disabled = disabled.best / floor.best - 1.0
    overhead_enabled = enabled.best / floor.best - 1.0
    bench_recorder.record(
        "obs_overhead",
        model=model,
        grid_points=grid_points,
        uninstrumented=floor.to_dict(),
        disabled=disabled.to_dict(),
        enabled=enabled.to_dict(),
        overhead_disabled=overhead_disabled,
        overhead_enabled=overhead_enabled,
    )
    if full:
        assert overhead_disabled < 0.03, (
            f"disabled telemetry costs {overhead_disabled:.1%} (>3%)"
        )
        assert overhead_enabled < 0.10, (
            f"enabled telemetry costs {overhead_enabled:.1%} (>10%)"
        )
