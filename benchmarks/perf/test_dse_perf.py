"""Workload-construction and DSE-sweep microbenchmarks.

The DSE benchmark measures the end-to-end cost a sweep actually pays:
cold = rebuild the workload from masks, then evaluate the grid serially;
warm = cached workload + ``n_jobs`` worker fan-out.  Workload construction
dominates, which is exactly why :mod:`repro.perf` memoises it.
"""

import os

from repro.harness.dse import pareto_frontier, sweep_design_space
from repro.hw import model_workload
from repro.models import get_config
from repro.perf import KeyedCache, benchit, cached_model_workload
from repro.sim import AnalyticalEvaluator, CycleSimEvaluator, HybridEvaluator


def test_workload_build_cache(bench_recorder, bench_mode):
    """Cold split-and-conquer construction vs a cache hit."""
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    cfg = get_config(model)
    cache = KeyedCache()
    cold = benchit(lambda: model_workload(cfg, sparsity=0.9),
                   name="cold_build", repeats=3 if full else 1, warmup=0)
    cached_model_workload(model, sparsity=0.9, cache=cache)  # prime
    warm = benchit(lambda: cached_model_workload(model, sparsity=0.9,
                                                 cache=cache),
                   name="cache_hit", repeats=5, warmup=1)
    speedup = cold.best / warm.best
    bench_recorder.record(
        "workload_build",
        model=model,
        cold=cold.to_dict(),
        cached=warm.to_dict(),
        speedup_cached=speedup,
    )
    if full:
        assert speedup >= 10.0, f"cache hit only {speedup:.1f}x faster"


def test_dse_sweep_cached_parallel(bench_recorder, bench_mode):
    """Full sweep cost: cold build + serial grid vs cached + parallel grid."""
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    cfg = get_config(model)
    if full:
        grid = {"mac_lines": [16, 32, 64, 128, 256, 512],
                "bandwidth_gbps": [19.2, 38.4, 76.8, 153.6],
                "ae_compression": [None, 0.5]}
    else:
        grid = {"mac_lines": [32, 64], "ae_compression": [None, 0.5]}
    n_jobs = 4 if full else 2

    def cold_sweep():
        wl = model_workload(cfg, sparsity=0.9)
        return sweep_design_space(wl, grid)

    def warm_sweep():
        wl = cached_model_workload(model, sparsity=0.9)
        return sweep_design_space(wl, grid, n_jobs=n_jobs)

    cold = benchit(cold_sweep, name="cold_serial",
                   repeats=3 if full else 1, warmup=0)
    cached_model_workload(model, sparsity=0.9)  # prime the shared cache
    warm = benchit(warm_sweep, name="cached_parallel",
                   repeats=5 if full else 1, warmup=1)
    # Parallel + cached must not change the answer.
    points_cold = cold_sweep()
    points_warm = warm_sweep()
    assert points_warm == points_cold

    speedup = cold.best / warm.best
    frontier = pareto_frontier(points_warm)
    bench_recorder.record(
        "dse_sweep",
        model=model,
        grid_points=len(points_warm),
        n_jobs=n_jobs,
        frontier_size=len(frontier),
        cold_serial=cold.to_dict(),
        cached_parallel=warm.to_dict(),
        speedup_cached_parallel=speedup,
    )
    if full:
        assert speedup >= 2.0, f"cached+parallel sweep only {speedup:.1f}x"


def test_batched_analytical_dse(bench_recorder, bench_mode):
    """Grid-batched analytical scoring vs the per-point evaluator loop.

    The same streaming engine runs both: the per-point reference
    (`AnalyticalEvaluator`) pays one Python dispatch, config clone and
    whole-model array walk per grid point; the batched default
    (`BatchedAnalyticalEvaluator`) scores bounded chunks of the grid as
    single (points × layers) numpy walks.  Bit-exactness — points,
    ordering, frontier — is asserted before any timing.  The ≥10×
    assertion arms in full mode on a ≥1k-point grid or a ≥4-CPU box (the
    win is single-process vectorization, so grid scale is what exposes
    it); the honest ratio is recorded either way.
    """
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    if full:
        # 8 × 6 × 4 × 3 × 2 = 1152 points: paper-scale enough that the
        # per-point interpreter overhead is the dominant cost.
        grid = {"mac_lines": [8, 16, 32, 64, 128, 256, 384, 512],
                "bandwidth_gbps": [19.2, 38.4, 76.8, 153.6, 307.2, 614.4],
                "act_buffer_kb": [64, 128, 256, 512],
                "ae_compression": [None, 0.25, 0.5],
                "q_forwarding_hit_rate": [0.0, 0.3]}
    else:
        grid = {"mac_lines": [32, 64], "ae_compression": [None, 0.5]}
    wl = cached_model_workload(model, sparsity=0.9)

    per_point_points = sweep_design_space(wl, grid,
                                          evaluator=AnalyticalEvaluator())
    batched_points = sweep_design_space(wl, grid)
    # Bit-exactness before timing: same points, same grid order, same
    # frontier — batching must be invisible in the results.
    assert batched_points == per_point_points
    assert pareto_frontier(batched_points) == \
        pareto_frontier(per_point_points)

    repeats = 3 if full else 1
    per_point = benchit(
        lambda: sweep_design_space(wl, grid,
                                   evaluator=AnalyticalEvaluator()),
        name="per_point_serial", repeats=repeats, warmup=1)
    batched = benchit(
        lambda: sweep_design_space(wl, grid),
        name="batched_serial", repeats=repeats, warmup=1)

    speedup = per_point.best / batched.best
    bench_recorder.record(
        "batched_analytical_dse",
        model=model,
        grid_points=len(batched_points),
        cpu_count=os.cpu_count(),
        per_point_serial=per_point.to_dict(),
        batched_serial=batched.to_dict(),
        speedup_batched=speedup,
    )
    if full and (len(batched_points) >= 1000 or (os.cpu_count() or 1) >= 4):
        assert speedup >= 10.0, f"batched sweep only {speedup:.1f}x"


def test_batched_cycle_dse(bench_recorder, bench_mode):
    """Grid-batched cycle-accurate DSE vs the per-point event-driven loop.

    The tentpole measurement: ``"cycle"`` now resolves to
    `BatchedCycleSimEvaluator`, which runs a whole chunk of design points
    as one (points × layers × jobs) width-banded max-plus walk; the
    per-point reference (`CycleSimEvaluator`) replays the event-driven
    simulator once per grid point.  Bit-exactness — points, grid order,
    frontier — is asserted before any timing.  The hybrid sweeps ride
    along: the analytical prune plus batched fine re-score, and the
    adaptive variant that skips fine-scoring survivors the observed
    fine/coarse error band already proves dominated (its fine frontier
    must equal the full re-score's; the survivor reduction is recorded).
    The ≥5× assertion arms in full mode on a ≥1k-point grid or a ≥4-CPU
    box; the honest ratio is recorded either way.
    """
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    if full:
        # 9 × 6 × 5 × 4 = 1080 points: paper-scale, so the per-point
        # loop's interpreter dispatch and config cloning dominate.
        grid = {"mac_lines": [8, 16, 24, 32, 64, 128, 256, 384, 512],
                "bandwidth_gbps": [19.2, 38.4, 76.8, 153.6, 307.2, 614.4],
                "act_buffer_kb": [32, 64, 128, 256, 512],
                "ae_compression": [None, 0.25, 0.5, 0.75]}
    else:
        grid = {"mac_lines": [32, 64], "ae_compression": [None, 0.5]}
    wl = cached_model_workload(model, sparsity=0.9)

    per_point_points = sweep_design_space(wl, grid,
                                          evaluator=CycleSimEvaluator())
    batched_points = sweep_design_space(wl, grid, evaluator="cycle")
    # Bit-exactness before timing: batching must be invisible.
    assert batched_points == per_point_points
    assert pareto_frontier(batched_points) == \
        pareto_frontier(per_point_points)
    hybrid_points = sweep_design_space(wl, grid, evaluator="hybrid")
    adaptive_points = sweep_design_space(wl, grid,
                                         evaluator=HybridEvaluator(
                                             adaptive=True))
    # Adaptive pruning may skip dominated survivors but must keep the
    # fine frontier intact.
    assert pareto_frontier(adaptive_points) == pareto_frontier(hybrid_points)
    assert {p.parameters for p in adaptive_points} <= \
        {p.parameters for p in hybrid_points}

    repeats = 3 if full else 1
    per_point = benchit(
        lambda: sweep_design_space(wl, grid,
                                   evaluator=CycleSimEvaluator()),
        name="per_point_serial", repeats=repeats, warmup=1)
    batched = benchit(
        lambda: sweep_design_space(wl, grid, evaluator="cycle"),
        name="batched_serial", repeats=repeats, warmup=1)
    hybrid = benchit(
        lambda: sweep_design_space(wl, grid, evaluator="hybrid"),
        name="hybrid_serial", repeats=repeats, warmup=1)
    adaptive = benchit(
        lambda: sweep_design_space(wl, grid,
                                   evaluator=HybridEvaluator(adaptive=True)),
        name="hybrid_adaptive", repeats=repeats, warmup=1)

    speedup = per_point.best / batched.best
    survivors = len(hybrid_points)
    bench_recorder.record(
        "batched_cycle_dse",
        model=model,
        grid_points=len(batched_points),
        cpu_count=os.cpu_count(),
        survivors=survivors,
        survivors_adaptive=len(adaptive_points),
        adaptive_survivor_reduction=(
            1.0 - len(adaptive_points) / survivors if survivors else 0.0
        ),
        per_point_serial=per_point.to_dict(),
        batched_serial=batched.to_dict(),
        hybrid_serial=hybrid.to_dict(),
        hybrid_adaptive=adaptive.to_dict(),
        speedup_batched=speedup,
        speedup_hybrid_vs_batched_cycle=batched.best / hybrid.best,
        speedup_adaptive_vs_hybrid=hybrid.best / adaptive.best,
    )
    if full and (len(batched_points) >= 1000 or (os.cpu_count() or 1) >= 4):
        assert speedup >= 5.0, f"batched cycle sweep only {speedup:.1f}x"


def test_cycle_sim_dse(bench_recorder, bench_mode):
    """Cycle-accurate sweeps through the evaluator-pluggable engine.

    Three strategies over the same grid: the full event-driven sweep run
    serially, the same sweep fanned across workers, and the hybrid sweep
    (analytical prune, cycle-accurate re-score of the surviving frontier).
    The hybrid win scales with grid size over frontier size; the parallel
    ratio is recorded honestly — vectorized cycle-sim points are cheap
    enough (~2 ms) that pool overhead can eat the fan-out on small grids.
    """
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    if full:
        grid = {"mac_lines": [16, 32, 64, 128, 256, 512],
                "bandwidth_gbps": [19.2, 38.4, 76.8, 153.6],
                "ae_compression": [None, 0.5]}
    else:
        grid = {"mac_lines": [32, 64], "ae_compression": [None, 0.5]}
    n_jobs = 4 if full else 2
    wl = cached_model_workload(model, sparsity=0.9)
    evaluator = CycleSimEvaluator()

    serial_points = sweep_design_space(wl, grid, evaluator=evaluator)
    hybrid_points = sweep_design_space(wl, grid, evaluator="hybrid")
    # Sanity before timing: parallel == serial, hybrid == the cycle-scored
    # analytical frontier (a subset of the full cycle sweep's grid).
    assert sweep_design_space(wl, grid, evaluator=evaluator,
                              n_jobs=n_jobs) == serial_points
    assert sweep_design_space(wl, grid, evaluator="hybrid",
                              n_jobs=n_jobs) == hybrid_points
    assert {p.parameters for p in hybrid_points} <= \
        {p.parameters for p in serial_points}

    repeats = 3 if full else 1
    serial = benchit(
        lambda: sweep_design_space(wl, grid, evaluator=evaluator),
        name="cycle_serial", repeats=repeats, warmup=1)
    # Raw pool fan-out (min_parallel_s=0 bypasses the pilot): the number
    # that exposed the cheap-point regression — vectorized points cost
    # ~2 ms, so pool dispatch eats the fan-out on grids this small.
    forced = benchit(
        lambda: sweep_design_space(wl, grid, evaluator=evaluator,
                                   n_jobs=n_jobs, min_parallel_s=0.0),
        name="cycle_parallel_forced", repeats=repeats, warmup=1)
    # The adaptive default pilots the first points and stays serial when
    # the whole sweep is cheaper than spawning workers, so n_jobs > 1 is
    # no longer a footgun on cheap grids (the fix for the ~0.7× above).
    adaptive = benchit(
        lambda: sweep_design_space(wl, grid, evaluator=evaluator,
                                   n_jobs=n_jobs),
        name="cycle_parallel_adaptive", repeats=repeats, warmup=1)
    # Hybrid runs serially: the analytical prune costs well under a
    # millisecond per point, so pool overhead would swamp the phase-1 win
    # (fan-out pays off once per-point cost dwarfs worker dispatch).
    hybrid = benchit(
        lambda: sweep_design_space(wl, grid, evaluator="hybrid"),
        name="hybrid_serial", repeats=repeats, warmup=1)

    bench_recorder.record(
        "cycle_sim_dse",
        model=model,
        grid_points=len(serial_points),
        survivors=len(hybrid_points),
        n_jobs=n_jobs,
        cycle_serial=serial.to_dict(),
        cycle_parallel_forced=forced.to_dict(),
        cycle_parallel_adaptive=adaptive.to_dict(),
        hybrid_serial=hybrid.to_dict(),
        speedup_parallel_forced=serial.best / forced.best,
        speedup_parallel_adaptive=serial.best / adaptive.best,
        speedup_hybrid_vs_full_cycle=serial.best / hybrid.best,
    )
    if full:
        speedup = serial.best / hybrid.best
        assert speedup >= 2.0, f"hybrid sweep only {speedup:.2f}x"
        # The adaptive path must never lose much to the serial sweep:
        # its pilot is two points of real work plus one timing call.
        adaptive_ratio = serial.best / adaptive.best
        assert adaptive_ratio >= 0.8, \
            f"adaptive n_jobs sweep regressed to {adaptive_ratio:.2f}x"
