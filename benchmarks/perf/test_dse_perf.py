"""Workload-construction and DSE-sweep microbenchmarks.

The DSE benchmark measures the end-to-end cost a sweep actually pays:
cold = rebuild the workload from masks, then evaluate the grid serially;
warm = cached workload + ``n_jobs`` worker fan-out.  Workload construction
dominates, which is exactly why :mod:`repro.perf` memoises it.
"""

from repro.harness.dse import pareto_frontier, sweep_design_space
from repro.hw import model_workload
from repro.models import get_config
from repro.perf import KeyedCache, benchit, cached_model_workload


def test_workload_build_cache(bench_recorder, bench_mode):
    """Cold split-and-conquer construction vs a cache hit."""
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    cfg = get_config(model)
    cache = KeyedCache()
    cold = benchit(lambda: model_workload(cfg, sparsity=0.9),
                   name="cold_build", repeats=3 if full else 1, warmup=0)
    cached_model_workload(model, sparsity=0.9, cache=cache)  # prime
    warm = benchit(lambda: cached_model_workload(model, sparsity=0.9,
                                                 cache=cache),
                   name="cache_hit", repeats=5, warmup=1)
    speedup = cold.best / warm.best
    bench_recorder.record(
        "workload_build",
        model=model,
        cold=cold.to_dict(),
        cached=warm.to_dict(),
        speedup_cached=speedup,
    )
    if full:
        assert speedup >= 10.0, f"cache hit only {speedup:.1f}x faster"


def test_dse_sweep_cached_parallel(bench_recorder, bench_mode):
    """Full sweep cost: cold build + serial grid vs cached + parallel grid."""
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    cfg = get_config(model)
    if full:
        grid = {"mac_lines": [16, 32, 64, 128, 256, 512],
                "bandwidth_gbps": [19.2, 38.4, 76.8, 153.6],
                "ae_compression": [None, 0.5]}
    else:
        grid = {"mac_lines": [32, 64], "ae_compression": [None, 0.5]}
    n_jobs = 4 if full else 2

    def cold_sweep():
        wl = model_workload(cfg, sparsity=0.9)
        return sweep_design_space(wl, grid)

    def warm_sweep():
        wl = cached_model_workload(model, sparsity=0.9)
        return sweep_design_space(wl, grid, n_jobs=n_jobs)

    cold = benchit(cold_sweep, name="cold_serial",
                   repeats=3 if full else 1, warmup=0)
    cached_model_workload(model, sparsity=0.9)  # prime the shared cache
    warm = benchit(warm_sweep, name="cached_parallel",
                   repeats=5 if full else 1, warmup=1)
    # Parallel + cached must not change the answer.
    points_cold = cold_sweep()
    points_warm = warm_sweep()
    assert points_warm == points_cold

    speedup = cold.best / warm.best
    frontier = pareto_frontier(points_warm)
    bench_recorder.record(
        "dse_sweep",
        model=model,
        grid_points=len(points_warm),
        n_jobs=n_jobs,
        frontier_size=len(frontier),
        cold_serial=cold.to_dict(),
        cached_parallel=warm.to_dict(),
        speedup_cached_parallel=speedup,
    )
    if full:
        assert speedup >= 2.0, f"cached+parallel sweep only {speedup:.1f}x"
