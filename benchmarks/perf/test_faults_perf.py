"""Fault-injection overhead: chaos hooks must be (near) free when off.

Same methodology as ``obs_overhead``: three timings of the same sharded
run — the store write path is where the disabled hooks live
(``active_plan()`` consulted per record append and per fsync barrier):

* ``unhooked`` — the floor: ``active_plan`` swapped for an inert stub
  inside the store module, so the hot path pays only the call the hooks
  added;
* ``disabled`` — the shipped default: no plan active, every hook takes
  the module-global ``None`` branch;
* ``active`` — a zero-fault plan activated (scope bound, every rate 0),
  the cost of merely *carrying* a plan through a healthy run.

The ``faults_overhead`` entry in ``BENCH_perf.json`` records all three;
full mode asserts disabled stays under 3% of the floor — the same "no-op
until opted in" contract as :mod:`repro.obs`.
"""

import math
import tempfile

import repro.dist.store as store_mod
from repro.dist import merge_store, model_workload_spec, run_shard
from repro.faults import activate, plan_from_spec
from repro.harness.dse import sweep_design_space
from repro.perf import benchit, cached_model_workload


def test_faults_overhead(bench_recorder, bench_mode, monkeypatch, tmp_path):
    full = bench_mode == "full"
    model = "deit-tiny"
    if full:
        # 6 x 5 x 4 x 3 x 3 = 1080 records through the append path.
        grid = {
            "mac_lines": [16, 32, 64, 128, 256, 512],
            "bandwidth_gbps": [19.2, 38.4, 76.8, 153.6, 307.2],
            "act_buffer_kb": [64, 128, 256, 512],
            "ae_compression": [None, 0.5, 0.25],
            "q_forwarding_hit_rate": [0.0, 0.3, 0.6],
        }
    else:
        grid = {"mac_lines": [32, 64], "ae_compression": [None, 0.5]}
    grid_points = math.prod(len(v) for v in grid.values())
    spec = model_workload_spec(model, sparsity=0.9)
    workload = cached_model_workload(model, sparsity=0.9)
    expected = sweep_design_space(workload, grid)
    repeats = 7 if full else 2

    def sharded_run():
        # A fresh store per call: resume-skipping would otherwise turn
        # every repeat after the first into a no-op.
        store = tempfile.mkdtemp(dir=tmp_path)
        run_shard(workload, grid, "1/1", store, workload_spec=spec)
        return store

    assert list(merge_store(sharded_run()).points) == expected

    with monkeypatch.context() as mp:
        mp.setattr(store_mod, "active_plan", lambda: None)
        floor = benchit(sharded_run, name="unhooked", repeats=repeats,
                        warmup=1)

    disabled = benchit(sharded_run, name="disabled", repeats=repeats,
                       warmup=1)

    plan = plan_from_spec({"seed": 0}).scoped(tmp_path)
    with activate(plan):
        store = sharded_run()  # a carried plan never alters results
        assert list(merge_store(store).points) == expected
        active = benchit(sharded_run, name="active", repeats=repeats,
                         warmup=1)

    overhead_disabled = disabled.best / floor.best - 1.0
    overhead_active = active.best / floor.best - 1.0
    bench_recorder.record(
        "faults_overhead",
        model=model,
        grid_points=grid_points,
        unhooked=floor.to_dict(),
        disabled=disabled.to_dict(),
        active=active.to_dict(),
        overhead_disabled=overhead_disabled,
        overhead_active=overhead_active,
    )
    if full:
        assert overhead_disabled < 0.03, (
            f"disabled fault hooks cost {overhead_disabled:.1%} (>3%)"
        )
        assert overhead_active < 0.10, (
            f"a zero-fault plan costs {overhead_active:.1%} (>10%)"
        )
