"""Cycle-simulator microbenchmarks: scan scheduler vs scalar event loop.

Smoke mode (plain ``pytest``) runs small shapes and only checks that both
engines execute and agree; full mode (``--bench-out``) runs the
DeiT-base-scale layer and asserts the vectorized engine's speedup.
"""

import dataclasses

from repro.hw import CycleAccurateSimulator
from repro.perf import benchit, cached_model_workload, \
    cached_synthetic_attention_workload


def _assert_engines_agree(wl):
    rv = CycleAccurateSimulator().simulate_layer(wl)
    rs = CycleAccurateSimulator(engine="scalar").simulate_layer(wl)
    assert dataclasses.astuple(rv) == dataclasses.astuple(rs)


def test_cycle_sim_layer(bench_recorder, bench_mode):
    """One attention layer at DeiT-base scale (197 tokens × 12 heads)."""
    full = bench_mode == "full"
    tokens, heads, dim = (197, 12, 64) if full else (48, 4, 16)
    wl = cached_synthetic_attention_workload(tokens, heads, dim,
                                             sparsity=0.9, seed=7)
    _assert_engines_agree(wl)

    vec = CycleAccurateSimulator()
    ref = CycleAccurateSimulator(engine="scalar")
    repeats = 20 if full else 2
    rv = benchit(lambda: vec.simulate_layer(wl), name="vectorized",
                 repeats=repeats, warmup=1)
    rs = benchit(lambda: ref.simulate_layer(wl), name="scalar",
                 repeats=max(repeats // 4, 1), warmup=1)
    speedup = rs.best / rv.best
    bench_recorder.record(
        "cycle_sim_layer",
        shape={"num_tokens": tokens, "num_heads": heads, "head_dim": dim,
               "sparsity": 0.9},
        vectorized=rv.to_dict(),
        scalar=rs.to_dict(),
        speedup_vs_scalar=speedup,
    )
    assert rv.best > 0 and rs.best > 0
    if full:
        assert speedup >= 5.0, f"vectorized speedup only {speedup:.1f}x"


def test_fused_scan(bench_recorder, bench_mode):
    """Fused (2L × jobs) whole-model scans vs the per-engine split scans.

    The fused fold halves scan *launches* (4 → 2 per model) but must pad
    the denser and sparser engines to a common job width; polarized masks
    make the denser engine ~15× narrower, so the padding costs more than
    the launches save.  The measured ratio (≈0.75–1.0×, below 1 meaning
    the split path wins) is recorded to keep that finding visible; the
    benchmark asserts bit-exactness first, which is the property the fold
    must uphold.
    """
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    wl = cached_model_workload(model, sparsity=0.9)
    layers = wl.attention_layers

    fused = CycleAccurateSimulator(scan="fused")
    split = CycleAccurateSimulator(scan="split")
    assert dataclasses.astuple(fused.simulate_attention(layers)) == \
        dataclasses.astuple(split.simulate_attention(layers))

    repeats = 20 if full else 2
    rf = benchit(lambda: fused.simulate_attention(layers), name="fused",
                 repeats=repeats, warmup=1)
    rs = benchit(lambda: split.simulate_attention(layers), name="split",
                 repeats=repeats, warmup=1)
    ratio = rs.best / rf.best
    bench_recorder.record(
        "fused_scan",
        model=model,
        layers=len(layers),
        fused=rf.to_dict(),
        split=rs.to_dict(),
        fused_speedup_vs_split=ratio,
    )
    assert rf.best > 0 and rs.best > 0
    if full:
        # Guard against the fused fold regressing into pathology; it is
        # NOT expected to beat the split default (see docstring).
        assert ratio >= 0.5, f"fused scan collapsed to {ratio:.2f}x"


def test_cycle_sim_full_model(bench_recorder, bench_mode):
    """All attention layers of one model through ``simulate_attention``."""
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    wl = cached_model_workload(model, sparsity=0.9)

    vec = CycleAccurateSimulator()
    ref = CycleAccurateSimulator(engine="scalar")
    rv = benchit(lambda: vec.simulate_attention(wl.attention_layers),
                 name="vectorized", repeats=10 if full else 1, warmup=1)
    rs = benchit(lambda: ref.simulate_attention(wl.attention_layers),
                 name="scalar", repeats=3 if full else 1, warmup=0)
    speedup = rs.best / rv.best
    bench_recorder.record(
        "cycle_sim_full_model",
        model=model,
        layers=len(wl.attention_layers),
        vectorized=rv.to_dict(),
        scalar=rs.to_dict(),
        speedup_vs_scalar=speedup,
    )
    if full:
        assert speedup >= 5.0, f"vectorized speedup only {speedup:.1f}x"
