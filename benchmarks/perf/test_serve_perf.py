"""Closed-loop load smoke for the DSE service (:mod:`repro.serve`).

N concurrent clients each POST their *own* small analytical study (grids
differ in one swept value, so every request is a distinct job — no
accidental dedup flattering the numbers) and poll it to completion over
a real socket.  Measured: end-to-end job throughput, p50/p95 per-job
latency, and the failure rate; then every client re-POSTs its study and
the second pass must be served entirely from the result cache.

Smoke mode keeps the fleet tiny (2 clients) and asserts only semantics
— zero failures, all-cache second pass.  Full mode (``--bench-out``)
runs 8 clients and records the first row of the load/latency run table
the service roadmap item calls for.  Absolute throughput on the 1-CPU
CI container time-slices one core across the HTTP threads, the shard
workers, and the clients; the number is a regression tripwire, not a
capacity claim.
"""

import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from repro.serve import ServeClient, serving


def _study(bandwidth):
    """A distinct 4-point analytical study per client (unique fingerprint)."""
    return {
        "grid": {
            "mac_lines": [16, 32],
            "bandwidth_gbps": [bandwidth, bandwidth * 2],
        },
        "evaluator": "analytical",
        "model": "deit-tiny",
        "n_shards": 1,
    }


def _client_pass(url, bandwidth, timeout):
    """Submit one study and ride it to completion; returns timing info."""
    client = ServeClient(url, timeout=timeout)
    start = time.perf_counter()
    try:
        info = client.submit(_study(bandwidth))
        status = client.wait(info["id"], timeout=timeout, poll=0.05)
        if status["state"] != "done":
            return {"ok": False, "cache_hit": False, "seconds": 0.0}
        client.raw_results(info["id"])
        return {
            "ok": True,
            "cache_hit": info["cache_hit"],
            "seconds": time.perf_counter() - start,
        }
    except Exception:  # noqa: BLE001 - failures are the measurement
        return {"ok": False, "cache_hit": False, "seconds": 0.0}


def test_serve_closed_loop_load(bench_recorder, bench_mode, tmp_path):
    full = bench_mode == "full"
    clients = 8 if full else 2
    timeout = 300.0
    bandwidths = [8.0 + 4.0 * index for index in range(clients)]

    with serving(tmp_path / "data", workers=2) as server:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            first = list(
                pool.map(lambda b: _client_pass(server.url, b, timeout),
                         bandwidths)
            )
        elapsed = time.perf_counter() - started
        with ThreadPoolExecutor(max_workers=clients) as pool:
            second = list(
                pool.map(lambda b: _client_pass(server.url, b, timeout),
                         bandwidths)
            )
        stats = server.manager.stats

    failures = sum(1 for r in first + second if not r["ok"])
    failure_rate = failures / (2 * clients)
    latencies = sorted(r["seconds"] for r in first if r["ok"])
    p50 = statistics.median(latencies) if latencies else float("nan")
    p95 = latencies[max(0, int(round(0.95 * len(latencies))) - 1)] \
        if latencies else float("nan")
    throughput = len(latencies) / elapsed if elapsed > 0 else 0.0

    bench_recorder.record(
        "serve_load",
        clients=clients,
        grid_points_per_job=4,
        jobs_ok=len(latencies),
        throughput_jobs_per_s=throughput,
        p50_latency_s=p50,
        p95_latency_s=p95,
        failure_rate=failure_rate,
        cache_hits_second_pass=sum(1 for r in second if r["cache_hit"]),
        shards_run=stats["shards_run"],
    )

    # Semantics always hold, smoke or full: nothing failed, the first
    # pass scored each distinct study exactly once, and the second pass
    # was served entirely from the content-addressed cache.
    assert failure_rate == 0.0
    assert stats["shards_run"] == clients
    assert all(r["cache_hit"] for r in second)
    assert not any(r["cache_hit"] for r in first)
    if full:
        # Loose tripwire: tiny analytical jobs must clear 1 job/s even
        # on a time-sliced single core, or the service regressed badly.
        assert throughput > 1.0
