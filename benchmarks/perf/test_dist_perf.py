"""Shard-scaling microbenchmark for the :mod:`repro.dist` pipeline.

Measures the multi-host execution model at its smallest honest scale: the
same cycle-evaluator grid run as ONE local shard process versus FOUR,
every cost included — pool spawn, per-point JSONL persistence (flush +
periodic fsync), and the merge.  Bit-exactness against the in-memory
sweep is asserted before any timing.

The ratio is recorded with the machine's CPU count: shard fan-out can
only pay with real cores (the committed ``BENCH_perf.json`` may come from
a 1-CPU container, where 4 processes time-slice one core and the honest
ratio is ≤ 1×) — the speedup assertion therefore only arms on ≥ 4 CPUs,
and a loose anti-pathology floor guards the rest.  The target deployment
is N *hosts* against a shared store, which no single-machine benchmark
can represent; this entry tracks the overhead side of that story.
"""

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor

from repro.dist import merge_store, model_workload_spec, run_shard
from repro.harness.dse import sweep_design_space
from repro.perf import benchit, cached_model_workload, seed_worker_workload
from repro.sim import CycleSimEvaluator


def _shard_task(grid, shard, store, evaluator, spec):
    """One shard process's work (workload read from the pool seed)."""
    return run_shard(None, grid, shard, store, evaluator=evaluator,
                     workload_spec=spec)


def _steal_task(grid, shard, store, evaluator, spec, steal, steal_chunk,
                handicap):
    """One elastic-fleet shard (workload read from the pool seed)."""
    return run_shard(None, grid, shard, store, evaluator=evaluator,
                     workload_spec=spec, steal=steal,
                     steal_chunk=steal_chunk, handicap=handicap)


def test_dist_shard_scaling(bench_recorder, bench_mode, tmp_path):
    full = bench_mode == "full"
    model = "deit-base" if full else "deit-tiny"
    # Full mode uses the scalar engine: expensive points are the regime
    # where sharding is worth reaching for (the vectorized engine makes
    # paper-scale points so cheap that only much larger grids fan out).
    evaluator = CycleSimEvaluator(engine="scalar" if full else "vectorized")
    if full:
        grid = {"mac_lines": [16, 32, 64, 128],
                "ae_compression": [None, 0.5]}
    else:
        grid = {"mac_lines": [16, 32], "ae_compression": [None, 0.5]}
    spec = model_workload_spec(model, sparsity=0.9)
    workload = cached_model_workload(model, sparsity=0.9)

    def run_sharded(num_shards):
        store = tempfile.mkdtemp(dir=tmp_path)
        if num_shards == 1:
            run_shard(workload, grid, "1/1", store, evaluator=evaluator,
                      workload_spec=spec)
        else:
            with ProcessPoolExecutor(
                    max_workers=num_shards,
                    initializer=seed_worker_workload,
                    initargs=(workload,)) as pool:
                futures = [
                    pool.submit(_shard_task, grid, f"{k}/{num_shards}",
                                store, evaluator, spec)
                    for k in range(1, num_shards + 1)
                ]
                for future in futures:
                    assert future.result().complete
        return merge_store(store)

    # Bit-exactness first: the sharded stores must reproduce the
    # in-memory sweep exactly, at both shard counts.
    serial_points = sweep_design_space(workload, grid, evaluator=evaluator)
    assert list(run_sharded(1).points) == serial_points
    assert list(run_sharded(4).points) == serial_points

    repeats = 3 if full else 1
    one = benchit(lambda: run_sharded(1), name="one_shard",
                  repeats=repeats, warmup=0)
    four = benchit(lambda: run_sharded(4), name="four_shards",
                   repeats=repeats, warmup=0)
    speedup = one.best / four.best
    cpus = os.cpu_count() or 1
    bench_recorder.record(
        "dist_shard_scaling",
        model=model,
        engine=evaluator.engine,
        grid_points=len(serial_points),
        cpu_count=cpus,
        one_shard=one.to_dict(),
        four_shards=four.to_dict(),
        speedup_4_shards=speedup,
    )
    if full:
        if cpus >= 4:
            assert speedup >= 1.5, f"4 shards only {speedup:.2f}x on {cpus} CPUs"
        else:
            # Time-slicing one core cannot scale; only guard pathology
            # (store/merge overhead must not dominate the study).
            assert speedup >= 0.2, f"4 shards pathological: {speedup:.2f}x"


def test_dist_work_stealing(bench_recorder, bench_mode, tmp_path):
    """Elastic fleet vs static partitioning under a 4x straggler.

    Four shard processes share a store; shard 4 is handicapped with an
    artificial per-point sleep (the straggler).  The static fleet waits
    for it; the elastic fleet (``steal=True``) drains its slice through
    the idle shards' claim files.  The handicap is pure sleep, so the
    stolen wall-clock parallelises even on a time-sliced single core —
    but the ≥ 1.5x assertion still only arms with ≥ 4 real CPUs, where
    pool spawn and evaluation don't serialise against the straggler.
    """
    full = bench_mode == "full"
    model = "deit-tiny"
    evaluator = "analytical"
    if full:
        grid = {"mac_lines": [16, 32, 64, 128],
                "ae_compression": [None, 0.5],
                "bandwidth_gbps": [19.2, 38.4, 76.8]}
        handicap = 0.4
    else:
        grid = {"mac_lines": [16, 32], "ae_compression": [None, 0.5]}
        handicap = 0.05
    steal_chunk = 2
    num_shards = 4
    spec = model_workload_spec(model, sparsity=0.9)
    workload = cached_model_workload(model, sparsity=0.9)
    serial_points = sweep_design_space(workload, grid)

    def run_fleet(steal):
        store = tempfile.mkdtemp(dir=tmp_path)
        with ProcessPoolExecutor(
                max_workers=num_shards,
                initializer=seed_worker_workload,
                initargs=(workload,)) as pool:
            futures = [
                pool.submit(_steal_task, grid, f"{k}/{num_shards}", store,
                            evaluator, spec, steal, steal_chunk,
                            handicap if k == num_shards else 0.0)
                for k in range(1, num_shards + 1)
            ]
            results = [future.result() for future in futures]
        merged = merge_store(store)
        # Stealing must never cost correctness: every fleet run (timed
        # or not) reproduces the in-memory sweep bit for bit.
        assert list(merged.points) == serial_points
        return merged, results

    # One untimed elastic run to record the stealing activity itself.
    merged, results = run_fleet(steal=True)
    stolen_points = sum(r.stolen for r in results)
    straggler_evaluated = results[-1].evaluated

    repeats = 3 if full else 1
    static = benchit(lambda: run_fleet(False), name="static_fleet",
                     repeats=repeats, warmup=0)
    stealing = benchit(lambda: run_fleet(True), name="stealing_fleet",
                       repeats=repeats, warmup=0)
    speedup = static.best / stealing.best
    cpus = os.cpu_count() or 1
    bench_recorder.record(
        "dist_work_stealing",
        model=model,
        evaluator=evaluator,
        grid_points=len(serial_points),
        num_shards=num_shards,
        handicap_seconds=handicap,
        steal_chunk=steal_chunk,
        cpu_count=cpus,
        stolen_points=stolen_points,
        straggler_evaluated=straggler_evaluated,
        merge_duplicates=merged.duplicates,
        static=static.to_dict(),
        stealing=stealing.to_dict(),
        speedup_stealing=speedup,
    )
    if full:
        if cpus >= 4:
            assert speedup >= 1.5, \
                f"stealing only {speedup:.2f}x on {cpus} CPUs"
        else:
            # A 1-CPU container time-slices the fleet; sleep still
            # parallelises, so stealing should not *lose* badly.
            assert speedup >= 0.5, f"stealing pathological: {speedup:.2f}x"
