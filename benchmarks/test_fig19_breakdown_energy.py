"""Fig. 19 — latency breakdown and energy efficiency.

Paper: averaged over the DeiT/LeViT models,
  * split-and-conquer alone gives ~2.7x over Sanger; the AE adds ~2.5x more;
  * ViTCoD's data-movement share falls from 50 % to 28 % with the AE;
  * energy efficiency is 9.8x Sanger's.
"""

from repro.harness import fig19_breakdown_energy

from conftest import print_paper_vs_measured


def test_fig19_breakdown_and_energy(benchmark):
    data = benchmark.pedantic(
        lambda: fig19_breakdown_energy(
            models=("deit-tiny", "deit-small", "deit-base",
                    "levit-128", "levit-192", "levit-256"),
            sparsities=(0.6, 0.7, 0.8, 0.9),
        ),
        rounds=1, iterations=1,
    )
    bd = data["mean_breakdown_at_max_sparsity"]
    rows = [
        ("S&C-only speedup vs Sanger", 2.7, data["speedup_sc_only_vs_sanger"]),
        ("AE speedup on top", 2.5, data["speedup_ae_on_top"]),
        ("data-movement share w/o AE", 0.50,
         bd["vitcod_no_ae"]["data_movement"]),
        ("data-movement share w/ AE", 0.28, bd["vitcod"]["data_movement"]),
        ("energy efficiency vs Sanger", 9.8,
         data["energy_efficiency_vs_sanger"]),
    ]
    print_paper_vs_measured("Fig. 19 breakdown & energy (avg 60-90%)", rows)

    # Both innovations contribute multiplicatively.  Averaged over the full
    # 60-90% sweep the AE's contribution is diluted (low-sparsity points are
    # compute-bound in our model — documented deviation); at the 90% point
    # it is clearly visible, asserted below.
    assert data["speedup_sc_only_vs_sanger"] > 1.5
    assert data["speedup_ae_on_top"] > 1.02
    at90 = fig19_breakdown_energy(models=("deit-base",), sparsities=(0.9,))
    assert at90["speedup_ae_on_top"] > 1.3
    # The AE shifts the breakdown away from data movement.
    assert (bd["vitcod"]["data_movement"]
            < bd["vitcod_no_ae"]["data_movement"])
    # Sanger pays a visible preprocess (mask prediction) share; ViTCoD's
    # preprocess (CSC preload) is marginal.
    assert bd["sanger"]["preprocess"] > 3 * bd["vitcod"]["preprocess"]
    # Energy: direction reproduced; magnitude deviation documented in
    # EXPERIMENTS.md (our model charges both designs identical DRAM energy).
    assert data["energy_efficiency_vs_sanger"] > 1.5
