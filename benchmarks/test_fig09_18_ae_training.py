"""Fig. 9b / Fig. 18 — training trajectories of ViTs with AE modules.

Paper: with the auto-encoder inserted and trained jointly (Eq. 2), both the
test loss and the reconstruction loss fall, and accuracy recovers to within
0.5 % of the vanilla model (dashed lines) for DeiT and LeViT alike.
"""


from repro.autoencoder import finetune_with_autoencoder
from repro.models import pretrained

from conftest import print_paper_vs_measured

FAST = dict(num_samples=192, num_classes=3)


def run_trajectory(model_name):
    pre = pretrained(model_name, epochs=3, dataset_kwargs=FAST)
    return pre, finetune_with_autoencoder(
        pre.model, pre.dataset, baseline_accuracy=pre.test_accuracy,
        compression=0.5, epochs=4, seed=0,
    )


def test_fig9b_deit_trajectory(benchmark):
    pre, result = benchmark.pedantic(
        lambda: run_trajectory("deit-tiny"), rounds=1, iterations=1
    )
    rows = [
        ("recon loss falls", "yes",
         "yes" if result.recon_losses[-1] < result.recon_losses[0] else "no"),
        ("final acc drop (<0.5%)", 0.005, result.accuracy_drop),
    ]
    print_paper_vs_measured("Fig. 9b DeiT + AE trajectory", rows)

    assert result.recon_losses[-1] < result.recon_losses[0]
    assert result.final_accuracy >= pre.test_accuracy - 0.05
    # Test loss stays near its (already tiny) converged level.
    assert result.test_losses[-1] <= result.test_losses[0] + 0.15


def test_fig18_levit_trajectory(benchmark):
    pre, result = benchmark.pedantic(
        lambda: run_trajectory("levit-128"), rounds=1, iterations=1
    )
    rows = [
        ("recon loss falls", "yes",
         "yes" if result.recon_losses[-1] < result.recon_losses[0] else "no"),
        ("final acc drop (<0.5%)", 0.005, result.accuracy_drop),
    ]
    print_paper_vs_measured("Fig. 18 LeViT + AE trajectory", rows)

    assert result.recon_losses[-1] < result.recon_losses[0]
    assert result.final_accuracy >= pre.test_accuracy - 0.08
