"""§VI-B — NLP models discussion: ViTCoD vs Sanger on a BERT-Base workload.

Paper: charging Sanger its dynamic-prediction overhead, ViTCoD's attention
speedup on NLP is 1.93x at 60 % and 3.69x at 90 % — smaller than on ViTs
because NLP masks neither polarize nor sit on a diagonal; fixed masks also
cost accuracy on NLP (-1.18 % at 60 % on GLUE-MRPC), which is why ViTCoD
targets ViTs.
"""

from repro.harness import fig15_speedups, nlp_comparison

from conftest import print_paper_vs_measured


def test_nlp_vs_sanger(benchmark):
    rows_data = benchmark.pedantic(
        lambda: nlp_comparison(sparsities=(0.6, 0.9)), rounds=1, iterations=1
    )
    r60 = next(r for r in rows_data if r["sparsity"] == 0.6)
    r90 = next(r for r in rows_data if r["sparsity"] == 0.9)

    rows = [
        ("speedup vs Sanger @60%", 1.93, r60["speedup_vs_sanger"]),
        ("speedup vs Sanger @90%", 3.69, r90["speedup_vs_sanger"]),
        ("fixed-mask drop @60%", 1.18, r60["fixed_mask_bleu_drop"]),
    ]
    print_paper_vs_measured("§VI-B NLP comparison", rows)

    # Direction: ViTCoD still wins (static masks dodge prediction), gains
    # grow with sparsity, but the margin is smaller than on ViTs.
    assert 1.0 < r60["speedup_vs_sanger"] < r90["speedup_vs_sanger"]
    vit = fig15_speedups(sparsity=0.9, models=("deit-base",))
    assert r90["speedup_vs_sanger"] < vit["mean"]["sanger"]
    # Fixed masks cost accuracy on NLP (around a BLEU point at 60%).
    assert 0.5 < r60["fixed_mask_bleu_drop"] < 2.5
