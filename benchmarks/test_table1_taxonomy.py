"""Table I — taxonomy of sparse accelerators.

Qualitative table; the bench verifies the claims the paper's comparison
rests on, using the *simulators in this repo* where the property is
measurable (static vs dynamic masks, preprocess overheads, traffic).
"""

from repro.baselines import SangerSimulator, SpAttenSimulator
from repro.harness import table1_taxonomy
from repro.hw import ViTCoDAccelerator, model_workload
from repro.models import get_config

from conftest import print_paper_vs_measured


def test_table1_taxonomy(benchmark):
    rows_data = benchmark.pedantic(table1_taxonomy, rounds=1, iterations=1)
    by_name = {r["accelerator"]: r for r in rows_data}

    # Structural claims of the table.
    assert by_name["ViTCoD"]["field"] == "vit"
    assert by_name["ViTCoD"]["pattern"] == "static-denser-sparser"
    assert by_name["SpAtten"]["field"] == "nlp transformer"
    assert by_name["Sanger"]["dataflow"] == "s-stationary"
    codesigned = [r["accelerator"] for r in rows_data if r["codesign"]]
    assert set(codesigned) == {"OuterSpace", "SpAtten", "Sanger", "ViTCoD"}

    # Measurable claims: ViTCoD has LOW off-chip traffic and (near-)zero
    # dynamic-mask preprocess, Sanger/SpAtten the opposite.
    wl = model_workload(get_config("deit-base"), sparsity=0.9)
    ours = ViTCoDAccelerator().simulate_attention(wl)
    sanger = SangerSimulator().simulate_attention(wl)
    spatten = SpAttenSimulator().simulate_attention(wl)

    rows = [
        ("ViTCoD preprocess share", "~0 (static)",
         ours.latency.preprocess / ours.cycles),
        ("Sanger preprocess share", "high (dynamic)",
         sanger.latency.preprocess / sanger.cycles),
        ("SpAtten preprocess share", "medium (top-k)",
         spatten.latency.preprocess / spatten.cycles),
    ]
    print_paper_vs_measured("Table I measurable claims", rows)

    assert ours.latency.preprocess / ours.cycles < 0.05
    assert sanger.latency.preprocess / sanger.cycles > 0.2
