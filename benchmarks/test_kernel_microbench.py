"""Micro-benchmarks of the reproduction's own hot kernels.

These time the core library primitives (Algorithm 1, the CSC build, the
functional executor, and one full simulator evaluation) with repeated
rounds so `pytest-benchmark` produces meaningful statistics — useful when
optimising the reproduction itself.
"""

import numpy as np
import pytest

from repro.compiler import execute_attention_layer
from repro.formats import CSCMatrix
from repro.hw import ViTCoDAccelerator, attention_workload_from_masks
from repro.sparsity import (
    prune_attention_map,
    split_and_conquer,
    synthetic_vit_attention,
)


@pytest.fixture(scope="module")
def maps197():
    return synthetic_vit_attention(197, num_heads=12, seed=0)


@pytest.fixture(scope="module")
def result197(maps197):
    return split_and_conquer(maps197, target_sparsity=0.9, theta_d=0.25)


def test_bench_prune_attention_map(benchmark, maps197):
    mask = benchmark(prune_attention_map, maps197, 0.7)
    assert mask.shape == maps197.shape


def test_bench_split_and_conquer(benchmark, maps197):
    result = benchmark(split_and_conquer, maps197, 0.7)
    assert result.num_heads == 12


def test_bench_csc_build(benchmark, result197):
    sparser = result197.partitions[0].sparser_mask
    csc = benchmark(CSCMatrix.from_dense, sparser)
    assert csc.nnz == sparser.sum()


def test_bench_workload_construction(benchmark, result197):
    wl = benchmark(attention_workload_from_masks, result197, 64)
    assert wl.num_tokens == 197


def test_bench_accelerator_layer_sim(benchmark, result197):
    wl = attention_workload_from_masks(result197, 64)
    acc = ViTCoDAccelerator()
    report = benchmark(acc.simulate_attention_layer, wl)
    assert report.cycles > 0


def test_bench_functional_executor(benchmark):
    rng = np.random.default_rng(0)
    maps = synthetic_vit_attention(64, num_heads=4, seed=1)
    result = split_and_conquer(maps, target_sparsity=0.9)
    q, k, v = rng.standard_normal((3, 4, 64, 16))
    out = benchmark(execute_attention_layer, q, k, v, result)
    assert out.shape == (4, 64, 16)
