"""Shared benchmark fixtures: memoised paper-scale workloads."""

import pytest

from repro.hw import model_workload
from repro.models import get_config

_CACHE = {}


@pytest.fixture(scope="session")
def workload_cache():
    """Callable returning memoised ModelWorkloads: (model, sparsity) -> WL."""

    def get(model, sparsity, **kwargs):
        key = (model, sparsity, tuple(sorted(kwargs.items())))
        if key not in _CACHE:
            _CACHE[key] = model_workload(get_config(model), sparsity=sparsity,
                                         **kwargs)
        return _CACHE[key]

    return get


def print_paper_vs_measured(title, rows):
    """rows: list of (label, paper_value, measured_value) strings/floats."""
    print(f"\n=== {title} ===")
    width = max(len(str(r[0])) for r in rows) + 2
    print(f"{'metric'.ljust(width)}{'paper':>12}{'measured':>12}")
    for label, paper, measured in rows:
        paper_s = f"{paper:.2f}" if isinstance(paper, float) else str(paper)
        meas_s = (f"{measured:.2f}" if isinstance(measured, float)
                  else str(measured))
        print(f"{str(label).ljust(width)}{paper_s:>12}{meas_s:>12}")
