"""Shared benchmark fixtures: memoised workloads + the perf harness.

Two things live here:

* ``workload_cache`` — the historical fixture name, now backed by the
  process-wide :mod:`repro.perf` cache so benchmarks, experiment runners
  and DSE sweeps all share one set of constructed workloads;
* the ``benchmarks/perf`` microbenchmark harness: ``--bench-out PATH``
  switches the perf benchmarks from *smoke* mode (small shapes, no
  wall-clock assertions — what plain ``pytest`` runs) to *full* mode
  (paper-scale shapes, speedup assertions) and writes the machine-readable
  ``BENCH_perf.json`` trajectory to PATH at the end of the session.
"""

import json
import platform
import time

import pytest

from repro.perf import cached_model_workload


def pytest_addoption(parser):
    parser.addoption(
        "--bench-out", action="store", default=None, metavar="PATH",
        help="run the perf microbenchmarks at full scale and write the "
             "machine-readable results JSON (e.g. BENCH_perf.json) to PATH",
    )


@pytest.fixture(scope="session")
def workload_cache():
    """Callable returning memoised ModelWorkloads: (model, sparsity) -> WL."""

    def get(model, sparsity, **kwargs):
        return cached_model_workload(model, sparsity=sparsity, **kwargs)

    return get


@pytest.fixture(scope="session")
def bench_out(request):
    """Path of the requested benchmark JSON, or None for smoke mode."""
    return request.config.getoption("bench_out", default=None)


@pytest.fixture(scope="session")
def bench_mode(bench_out):
    """'full' (paper-scale shapes, wall-clock assertions) or 'smoke'."""
    return "full" if bench_out else "smoke"


class BenchRecorder:
    """Collects one dict per microbenchmark for ``BENCH_perf.json``."""

    def __init__(self, mode):
        self.mode = mode
        self.entries = []

    def record(self, name, **fields):
        entry = {"name": name, **fields}
        self.entries.append(entry)
        return entry


@pytest.fixture(scope="session")
def bench_recorder(bench_out, bench_mode):
    recorder = BenchRecorder(bench_mode)
    yield recorder
    if bench_out and recorder.entries:
        payload = {
            "schema": "repro-bench/1",
            "mode": recorder.mode,
            "created_unix": time.time(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "benchmarks": recorder.entries,
        }
        with open(bench_out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")


def print_paper_vs_measured(title, rows):
    """rows: list of (label, paper_value, measured_value) strings/floats."""
    print(f"\n=== {title} ===")
    width = max(len(str(r[0])) for r in rows) + 2
    print(f"{'metric'.ljust(width)}{'paper':>12}{'measured':>12}")
    for label, paper, measured in rows:
        paper_s = f"{paper:.2f}" if isinstance(paper, float) else str(paper)
        meas_s = (f"{measured:.2f}" if isinstance(measured, float)
                  else str(measured))
        print(f"{str(label).ljust(width)}{paper_s:>12}{meas_s:>12}")
