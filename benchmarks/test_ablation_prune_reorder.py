"""§VI-C ablation — pruning vs reordering contributions.

Paper (DeiT models, averaged over 60/70/80/90 % pruning ratios):
  * pruning contributes on-average 5.14x (8.14x at 90 %);
  * reordering contributes on-average 2.59x (2.03x at 90 %).
"""

from repro.harness import ablation_prune_reorder

from conftest import print_paper_vs_measured


def test_ablation_prune_vs_reorder(benchmark):
    data = benchmark.pedantic(
        lambda: ablation_prune_reorder(model="deit-base",
                                       sparsities=(0.6, 0.7, 0.8, 0.9)),
        rounds=1, iterations=1,
    )
    at_90 = next(r for r in data["rows"] if r["sparsity"] == 0.9)
    rows = [
        ("mean pruning benefit", 5.14, data["mean_pruning_benefit"]),
        ("pruning benefit @90%", 8.14, at_90["pruning_benefit"]),
        ("mean reordering benefit", 2.59, data["mean_reordering_benefit"]),
        ("reordering benefit @90%", 2.03, at_90["reordering_benefit"]),
    ]
    print_paper_vs_measured("§VI-C prune/reorder ablation", rows)

    # Shape: both matter; pruning's benefit grows with sparsity and clearly
    # dominates at 90% (paper: 8.14x vs 2.03x).  On the 60-90% average our
    # model slightly over-credits reordering (low-sparsity denser blocks are
    # processed densely, diluting the pruning side) — see EXPERIMENTS.md.
    assert data["mean_pruning_benefit"] > 1.3
    assert data["mean_reordering_benefit"] > 1.3
    assert at_90["pruning_benefit"] > at_90["reordering_benefit"]
    benefits = [r["pruning_benefit"] for r in data["rows"]]
    assert benefits == sorted(benefits)
    assert 0.5 * 5.14 < data["mean_pruning_benefit"] < 2.0 * 5.14
    assert 0.5 * 2.59 < data["mean_reordering_benefit"] < 2.0 * 2.59
