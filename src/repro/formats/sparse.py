"""Sparse matrix storage formats used by the accelerator model.

The sparser engine pre-loads non-zero *indexes* in **CSC** (compressed sparse
column) format — chosen over COO because the K-stationary dataflow produces
attention-map columns one at a time (§V-B.1), so walking a CSC column yields
exactly the Q rows a resident K vector must be multiplied with.  CSR and COO
are provided for comparison and for the format ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSCMatrix", "CSRMatrix", "COOMatrix", "index_bytes"]


def _validate_dense(dense):
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {dense.shape}")
    return dense


@dataclass(frozen=True)
class CSCMatrix:
    """Boolean sparsity pattern in compressed-sparse-column form."""

    shape: tuple
    col_ptr: np.ndarray  # (cols+1,)
    row_idx: np.ndarray  # (nnz,)

    @classmethod
    def from_dense(cls, dense):
        dense = _validate_dense(dense).astype(bool)
        rows, cols = dense.shape
        col_ptr = np.zeros(cols + 1, dtype=np.int64)
        col_ptr[1:] = np.cumsum(dense.sum(axis=0))
        row_idx = np.nonzero(dense.T)[1].astype(np.int64)
        return cls(shape=(rows, cols), col_ptr=col_ptr, row_idx=row_idx)

    @property
    def nnz(self):
        return int(self.col_ptr[-1])

    def column(self, j):
        """Row indices of non-zeros in column ``j``."""
        return self.row_idx[self.col_ptr[j] : self.col_ptr[j + 1]]

    def column_nnz(self):
        return np.diff(self.col_ptr)

    def to_dense(self):
        out = np.zeros(self.shape, dtype=bool)
        cols = np.repeat(np.arange(self.shape[1]), np.diff(self.col_ptr))
        out[self.row_idx, cols] = True
        return out

    def index_bytes(self, ptr_bytes=4, idx_bytes=1):
        """Storage for the index structure (paper: 20 KB index buffer).

        Row indices fit in one byte for N ≤ 256 (ViTs have ≤ 197 + CLS
        tokens); pointers are wider.
        """
        if self.shape[0] > 256 and idx_bytes == 1:
            idx_bytes = 2
        return len(self.col_ptr) * ptr_bytes + len(self.row_idx) * idx_bytes


@dataclass(frozen=True)
class CSRMatrix:
    """Boolean sparsity pattern in compressed-sparse-row form."""

    shape: tuple
    row_ptr: np.ndarray
    col_idx: np.ndarray

    @classmethod
    def from_dense(cls, dense):
        dense = _validate_dense(dense).astype(bool)
        rows, cols = dense.shape
        row_ptr = np.zeros(rows + 1, dtype=np.int64)
        row_ptr[1:] = np.cumsum(dense.sum(axis=1))
        col_idx = np.nonzero(dense)[1].astype(np.int64)
        return cls(shape=(rows, cols), row_ptr=row_ptr, col_idx=col_idx)

    @property
    def nnz(self):
        return int(self.row_ptr[-1])

    def row(self, i):
        return self.col_idx[self.row_ptr[i] : self.row_ptr[i + 1]]

    def row_nnz(self):
        return np.diff(self.row_ptr)

    def to_dense(self):
        out = np.zeros(self.shape, dtype=bool)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.row_ptr))
        out[rows, self.col_idx] = True
        return out

    def index_bytes(self, ptr_bytes=4, idx_bytes=1):
        if self.shape[1] > 256 and idx_bytes == 1:
            idx_bytes = 2
        return len(self.row_ptr) * ptr_bytes + len(self.col_idx) * idx_bytes


@dataclass(frozen=True)
class COOMatrix:
    """Boolean sparsity pattern as (row, col) coordinate pairs."""

    shape: tuple
    rows: np.ndarray
    cols: np.ndarray

    @classmethod
    def from_dense(cls, dense):
        dense = _validate_dense(dense).astype(bool)
        rows, cols = np.nonzero(dense)
        return cls(shape=dense.shape, rows=rows.astype(np.int64),
                   cols=cols.astype(np.int64))

    @property
    def nnz(self):
        return len(self.rows)

    def to_dense(self):
        out = np.zeros(self.shape, dtype=bool)
        out[self.rows, self.cols] = True
        return out

    def index_bytes(self, idx_bytes=1):
        if max(self.shape) > 256 and idx_bytes == 1:
            idx_bytes = 2
        # Two coordinates per non-zero — why CSC wins for our patterns.
        return 2 * self.nnz * idx_bytes


def index_bytes(mask, fmt="csc"):
    """Index storage for ``mask`` in the given format ('csc'|'csr'|'coo')."""
    classes = {"csc": CSCMatrix, "csr": CSRMatrix, "coo": COOMatrix}
    if fmt not in classes:
        raise ValueError(f"unknown format {fmt!r}; choose from {sorted(classes)}")
    return classes[fmt].from_dense(np.asarray(mask)).index_bytes()
