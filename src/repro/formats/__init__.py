"""Sparse storage formats and tiling utilities."""

from .sparse import CSCMatrix, CSRMatrix, COOMatrix, index_bytes
from .tiling import TileGrid, tile_1d, tiles_for_matmul, fits_in_buffer

__all__ = [
    "CSCMatrix",
    "CSRMatrix",
    "COOMatrix",
    "index_bytes",
    "TileGrid",
    "tile_1d",
    "tiles_for_matmul",
    "fits_in_buffer",
]
