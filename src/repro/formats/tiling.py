"""Tiling helpers for mapping matrices onto fixed-size buffers/PE arrays.

The denser engine tiles Q/K along the feature dimension and S/V along the
token dimension (paper Fig. 13); these helpers compute tile grids and check
buffer capacity so the simulator charges extra DRAM round-trips when an
operand does not fit on chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = ["TileGrid", "tile_1d", "tiles_for_matmul", "fits_in_buffer"]


@dataclass(frozen=True)
class TileGrid:
    """A 1-D tiling: ``count`` tiles covering ``total`` elements."""

    total: int
    tile: int

    def __post_init__(self):
        if self.total < 0 or self.tile <= 0:
            raise ValueError(f"invalid tiling total={self.total} tile={self.tile}")

    @property
    def count(self):
        return ceil(self.total / self.tile) if self.total else 0

    @property
    def last_tile(self):
        if self.total == 0:
            return 0
        rem = self.total % self.tile
        return rem if rem else self.tile

    def sizes(self):
        """Tile sizes in order (all ``tile`` except possibly the last)."""
        if self.count == 0:
            return []
        return [self.tile] * (self.count - 1) + [self.last_tile]


def tile_1d(total, tile):
    return TileGrid(total=total, tile=tile)


def tiles_for_matmul(m, k, n, tile_m, tile_k, tile_n):
    """Number of (m, k, n) tile triples for a blocked GEMM."""
    return (tile_1d(m, tile_m).count * tile_1d(k, tile_k).count
            * tile_1d(n, tile_n).count)


def fits_in_buffer(num_elements, bytes_per_element, buffer_bytes):
    return num_elements * bytes_per_element <= buffer_bytes
