"""Serialisation of simulation reports and experiment results.

Everything the harness produces can be exported to plain dicts / JSON / CSV
so external tooling (plotting notebooks, CI dashboards) can consume the
reproduction's numbers without importing the package.
"""

from __future__ import annotations

import csv
import io
import json

import numpy as np

from ..hw.trace import EnergyBreakdown, LatencyBreakdown, SimReport

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "reports_to_csv",
    "dse_result_payload",
    "to_json",
]


def _plain(value):
    """Recursively convert numpy scalars/arrays into JSON-safe types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def report_to_dict(report: SimReport) -> dict:
    """Flatten a :class:`SimReport` into a JSON-safe dict."""
    return {
        "platform": report.platform,
        "workload": report.workload,
        "frequency_hz": report.frequency_hz,
        "latency": {
            "compute": report.latency.compute,
            "preprocess": report.latency.preprocess,
            "data_movement": report.latency.data_movement,
        },
        "energy_pj": {
            "mac": report.energy.mac,
            "sram": report.energy.sram,
            "dram": report.energy.dram,
            "other": report.energy.other,
            "static": report.energy.static,
        },
        "seconds": report.seconds,
        "energy_joules": report.energy_joules,
        "details": _plain(report.details),
    }


def report_from_dict(data: dict) -> SimReport:
    """Inverse of :func:`report_to_dict` (derived fields recomputed)."""
    latency = LatencyBreakdown(**data["latency"])
    energy = EnergyBreakdown(**data["energy_pj"])
    return SimReport(
        platform=data["platform"],
        workload=data["workload"],
        latency=latency,
        energy=energy,
        frequency_hz=data["frequency_hz"],
        details=dict(data.get("details", {})),
    )


def reports_to_csv(reports) -> str:
    """Render reports as CSV (one row each, flat columns)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = [
        "platform",
        "workload",
        "seconds",
        "energy_joules",
        "compute_cycles",
        "preprocess_cycles",
        "data_movement_cycles",
    ]
    writer.writerow(header)
    for report in reports:
        row = [
            report.platform,
            report.workload,
            f"{report.seconds:.9g}",
            f"{report.energy_joules:.9g}",
            f"{report.latency.compute:.6g}",
            f"{report.latency.preprocess:.6g}",
            f"{report.latency.data_movement:.6g}",
        ]
        writer.writerow(row)
    return buffer.getvalue()


def dse_result_payload(model, sparsity, evaluator_name, grid, points) -> dict:
    """THE serialisable form of a finished DSE sweep.

    One payload builder shared by every surface that renders a sweep —
    ``python -m repro dse``, ``dse-merge``, and the serve layer's
    ``GET /jobs/<id>/results`` — so a merged sharded store and a job
    served over HTTP reproduce the single-process sweep's JSON **byte
    for byte** (``to_json`` of equal payloads is identical text: keys
    are sorted and floats round-trip through the shortest repr).
    """
    from .dse import pareto_frontier

    frontier = set(map(id, pareto_frontier(points)))
    return {
        "model": model,
        "sparsity": sparsity,
        "evaluator": evaluator_name,
        "grid": {name: list(values) for name, values in grid.items()},
        "points": [
            {
                "parameters": dict(point.parameters),
                "seconds": point.seconds,
                "energy_joules": point.energy_joules,
                "edp": point.edp,
                "pareto": id(point) in frontier,
            }
            for point in points
        ],
    }


def to_json(payload, indent=2) -> str:
    """JSON-dump any harness result (numpy types handled)."""
    return json.dumps(_plain(payload), indent=indent, sort_keys=True)
