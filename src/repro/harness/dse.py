"""Design-space exploration (DSE) over ViTCoD accelerator configurations.

The paper motivates its design-point choices (512 MACs, 76.8 GB/s, 320 KB
SRAM, 0.5 AE compression) qualitatively; this module makes the trade-offs
measurable: sweep any subset of {MAC lines, bandwidth, buffer size, AE
compression, forwarding hit rate} over a workload, collect latency/energy,
and extract the Pareto frontier.

Sweeps fan out across ``concurrent.futures`` workers when ``n_jobs > 1``
(the grid cross-product is embarrassingly parallel) and always return
points in deterministic grid order, so serial and parallel runs are
interchangeable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from functools import partial
from itertools import product
from typing import Dict, List, Sequence

import numpy as np

from ..hw.accelerator import ViTCoDAccelerator
from ..hw.params import VITCOD_DEFAULT, HardwareConfig
from ..hw.workload import ModelWorkload

__all__ = ["DesignPoint", "sweep_design_space", "pareto_frontier",
           "sensitivity"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    parameters: tuple  # sorted (name, value) pairs
    seconds: float
    energy_joules: float
    area_proxy: float  # MAC count (a first-order area stand-in)

    def parameter(self, name):
        return dict(self.parameters)[name]

    @property
    def edp(self):
        """Energy-delay product (J·s) — the usual DSE objective."""
        return self.seconds * self.energy_joules


def _apply(config: HardwareConfig, accel_kwargs: dict, name, value):
    """Route one swept parameter to the config or the accelerator."""
    if name == "mac_lines":
        return replace(config, num_mac_lines=int(value)), accel_kwargs
    if name == "bandwidth_gbps":
        return replace(
            config, dram_bandwidth_bytes_per_s=float(value) * 1e9
        ), accel_kwargs
    if name == "act_buffer_kb":
        return replace(config, act_buffer_bytes=int(value * 1024)), accel_kwargs
    if name == "ae_compression":
        if value is None:
            return config, {**accel_kwargs, "use_ae": False}
        return config, {**accel_kwargs, "use_ae": True,
                        "ae_compression": float(value)}
    if name == "q_forwarding_hit_rate":
        return config, {**accel_kwargs, "q_forwarding_hit_rate": float(value)}
    raise KeyError(
        f"unknown DSE parameter {name!r}; choose from mac_lines, "
        "bandwidth_gbps, act_buffer_kb, ae_compression, q_forwarding_hit_rate"
    )


def _evaluate_design_point(workload, base_config, names, values) -> DesignPoint:
    """Evaluate one grid point (module-level so process pools can pickle it)."""
    config = base_config
    accel_kwargs: dict = {}
    for name, value in zip(names, values):
        config, accel_kwargs = _apply(config, accel_kwargs, name, value)
    accel = ViTCoDAccelerator(config=config, **accel_kwargs)
    report = accel.simulate_attention(workload)
    return DesignPoint(
        parameters=tuple(zip(names, values)),
        seconds=report.seconds,
        energy_joules=report.energy_joules,
        area_proxy=config.total_macs,
    )


def sweep_design_space(workload: ModelWorkload, grid: Dict[str, Sequence],
                       base_config: HardwareConfig = None,
                       n_jobs: int = 1) -> List[DesignPoint]:
    """Evaluate the cross product of ``grid`` on ``workload``.

    ``n_jobs`` fans grid points across worker processes (``None`` means one
    per CPU); results are returned in grid order regardless, and a parallel
    sweep returns exactly what the serial sweep would.  Worker processes
    fall back to threads where process pools are unavailable (restricted
    sandboxes).

    Example
    -------
    >>> grid = {"mac_lines": [32, 64, 128], "ae_compression": [None, 0.5]}
    >>> points = sweep_design_space(workload, grid, n_jobs=4)
    """
    base_config = base_config or VITCOD_DEFAULT
    if not grid:
        raise ValueError("empty DSE grid")
    names = sorted(grid)
    combos = list(product(*(grid[n] for n in names)))
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    n_jobs = max(1, min(int(n_jobs), len(combos)))
    evaluate = partial(_evaluate_design_point, workload, base_config, names)
    if n_jobs == 1:
        return [evaluate(values) for values in combos]
    # One chunk per worker: the workload is pickled once per chunk, not per
    # point, and map() preserves submission order.  Only pool *creation* may
    # fall back to threads (sandboxes without process/semaphore support);
    # failures during evaluation — including BrokenProcessPool — propagate.
    chunksize = -(-len(combos) // n_jobs)
    try:
        pool = ProcessPoolExecutor(max_workers=n_jobs)
    except OSError:
        with ThreadPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(evaluate, combos))
    with pool:
        return list(pool.map(evaluate, combos, chunksize=chunksize))


def _pareto_mask_sorted_2d(values: np.ndarray) -> np.ndarray:
    """Non-dominated mask for two minimise-objectives via lexsort + scan.

    A point is dominated iff some point has both coordinates ``<=`` and at
    least one ``<`` — equal points never dominate each other.  After sorting
    by (a, b), a point is dominated exactly when the running minimum of ``b``
    over strictly-smaller ``a`` reaches it, or a same-``a`` point has a
    strictly smaller ``b``.
    """
    order = np.lexsort((values[:, 1], values[:, 0]))
    a = values[order, 0]
    b = values[order, 1]
    n = a.size
    group_start = np.ones(n, dtype=bool)
    group_start[1:] = a[1:] != a[:-1]
    group_id = np.cumsum(group_start) - 1
    starts = np.flatnonzero(group_start)
    cummin_b = np.minimum.accumulate(b)
    prev_min = np.full(starts.size, np.inf)
    prev_min[1:] = cummin_b[starts[1:] - 1]
    group_min_b = b[starts]
    dominated = (prev_min[group_id] <= b) | (b > group_min_b[group_id])
    keep = np.empty(n, dtype=bool)
    keep[order] = ~dominated
    return keep


def _pareto_mask_pairwise(values: np.ndarray) -> np.ndarray:
    """Non-dominated mask for any objective count via one broadcast."""
    less_eq = np.all(values[:, None, :] <= values[None, :, :], axis=2)
    strictly = np.any(values[:, None, :] < values[None, :, :], axis=2)
    dominated = np.any(less_eq & strictly, axis=0)
    return ~dominated


def pareto_frontier(points: Sequence[DesignPoint],
                    objectives=("seconds", "energy_joules")) -> List[DesignPoint]:
    """Non-dominated subset under the given minimise-objectives.

    The two-objective case (the common one) runs in O(n log n) via a sort
    and a prefix-minimum scan; other objective counts use a vectorized
    pairwise dominance check.  Points are returned in input order.
    """
    if not points:
        return []
    values = np.array(
        [[getattr(p, obj) for obj in objectives] for p in points],
        dtype=np.float64,
    )
    if values.shape[1] == 2:
        keep = _pareto_mask_sorted_2d(values)
    else:
        keep = _pareto_mask_pairwise(values)
    return [p for p, k in zip(points, keep) if k]


def sensitivity(workload: ModelWorkload, parameter, values,
                base_config: HardwareConfig = None,
                n_jobs: int = 1) -> List[dict]:
    """One-dimensional sensitivity: latency/energy vs one parameter."""
    points = sweep_design_space(workload, {parameter: list(values)},
                                base_config=base_config, n_jobs=n_jobs)
    return [
        {
            parameter: p.parameter(parameter),
            "seconds": p.seconds,
            "energy_joules": p.energy_joules,
            "edp": p.edp,
        }
        for p in points
    ]
