"""Design-space exploration (DSE) over ViTCoD accelerator configurations.

The paper motivates its design-point choices (512 MACs, 76.8 GB/s, 320 KB
SRAM, 0.5 AE compression) qualitatively; this module makes the trade-offs
measurable: sweep any subset of {MAC lines, bandwidth, buffer size, AE
compression, forwarding hit rate} over a workload, collect latency/energy,
and extract the Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, List, Sequence

import numpy as np

from ..hw.accelerator import ViTCoDAccelerator
from ..hw.params import VITCOD_DEFAULT, HardwareConfig
from ..hw.workload import ModelWorkload

__all__ = ["DesignPoint", "sweep_design_space", "pareto_frontier",
           "sensitivity"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    parameters: tuple  # sorted (name, value) pairs
    seconds: float
    energy_joules: float
    area_proxy: float  # MAC count (a first-order area stand-in)

    def parameter(self, name):
        return dict(self.parameters)[name]

    @property
    def edp(self):
        """Energy-delay product (J·s) — the usual DSE objective."""
        return self.seconds * self.energy_joules


def _apply(config: HardwareConfig, accel_kwargs: dict, name, value):
    """Route one swept parameter to the config or the accelerator."""
    if name == "mac_lines":
        return replace(config, num_mac_lines=int(value)), accel_kwargs
    if name == "bandwidth_gbps":
        return replace(
            config, dram_bandwidth_bytes_per_s=float(value) * 1e9
        ), accel_kwargs
    if name == "act_buffer_kb":
        return replace(config, act_buffer_bytes=int(value * 1024)), accel_kwargs
    if name == "ae_compression":
        if value is None:
            return config, {**accel_kwargs, "use_ae": False}
        return config, {**accel_kwargs, "use_ae": True,
                        "ae_compression": float(value)}
    if name == "q_forwarding_hit_rate":
        return config, {**accel_kwargs, "q_forwarding_hit_rate": float(value)}
    raise KeyError(
        f"unknown DSE parameter {name!r}; choose from mac_lines, "
        "bandwidth_gbps, act_buffer_kb, ae_compression, q_forwarding_hit_rate"
    )


def sweep_design_space(workload: ModelWorkload, grid: Dict[str, Sequence],
                       base_config: HardwareConfig = None) -> List[DesignPoint]:
    """Evaluate the cross product of ``grid`` on ``workload``.

    Example
    -------
    >>> grid = {"mac_lines": [32, 64, 128], "ae_compression": [None, 0.5]}
    >>> points = sweep_design_space(workload, grid)
    """
    base_config = base_config or VITCOD_DEFAULT
    if not grid:
        raise ValueError("empty DSE grid")
    names = sorted(grid)
    points = []
    for values in product(*(grid[n] for n in names)):
        config = base_config
        accel_kwargs: dict = {}
        for name, value in zip(names, values):
            config, accel_kwargs = _apply(config, accel_kwargs, name, value)
        accel = ViTCoDAccelerator(config=config, **accel_kwargs)
        report = accel.simulate_attention(workload)
        points.append(
            DesignPoint(
                parameters=tuple(zip(names, values)),
                seconds=report.seconds,
                energy_joules=report.energy_joules,
                area_proxy=config.total_macs,
            )
        )
    return points


def pareto_frontier(points: Sequence[DesignPoint],
                    objectives=("seconds", "energy_joules")) -> List[DesignPoint]:
    """Non-dominated subset under the given minimise-objectives."""
    if not points:
        return []
    values = np.array(
        [[getattr(p, obj) for obj in objectives] for p in points]
    )
    keep = []
    for i, row in enumerate(values):
        dominated = np.any(
            np.all(values <= row, axis=1)
            & np.any(values < row, axis=1)
        )
        if not dominated:
            keep.append(points[i])
    return keep


def sensitivity(workload: ModelWorkload, parameter, values,
                base_config: HardwareConfig = None) -> List[dict]:
    """One-dimensional sensitivity: latency/energy vs one parameter."""
    points = sweep_design_space(workload, {parameter: list(values)},
                                base_config=base_config)
    return [
        {
            parameter: p.parameter(parameter),
            "seconds": p.seconds,
            "energy_joules": p.energy_joules,
            "edp": p.edp,
        }
        for p in points
    ]
