"""Design-space exploration (DSE) over ViTCoD accelerator configurations.

The paper motivates its design-point choices (512 MACs, 76.8 GB/s, 320 KB
SRAM, 0.5 AE compression) qualitatively; this module makes the trade-offs
measurable: sweep any subset of {MAC lines, bandwidth, buffer size, AE
compression, forwarding hit rate} over a workload, collect latency/energy,
and extract the Pareto frontier.

All evaluation goes through ONE streaming engine:

* :func:`iter_design_space` lazily walks the grid cross-product and yields
  :class:`DesignPoint` objects as they complete — huge grids are never
  materialised, and an incremental :class:`ParetoFront` can prune the
  stream on the fly (pass ``frontier=``);
* :func:`sweep_design_space` is the eager wrapper: it drains the stream
  and restores deterministic grid order, so serial and parallel runs are
  interchangeable (and equal to the streaming results point for point).

Parallel runs fan grid points across ``concurrent.futures`` workers in
chunks (the workload is pickled once per chunk, not per point) with a
bounded number of chunks in flight, yielding chunks ``as_completed``.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from itertools import islice, product
from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from ..hw.accelerator import ViTCoDAccelerator
from ..hw.params import VITCOD_DEFAULT, HardwareConfig
from ..hw.workload import ModelWorkload

__all__ = ["DesignPoint", "ParetoFront", "iter_design_space",
           "sweep_design_space", "pareto_frontier", "sensitivity"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    parameters: tuple  # sorted (name, value) pairs
    seconds: float
    energy_joules: float
    area_proxy: float  # MAC count (a first-order area stand-in)

    def parameter(self, name):
        return dict(self.parameters)[name]

    @property
    def edp(self):
        """Energy-delay product (J·s) — the usual DSE objective."""
        return self.seconds * self.energy_joules


def _apply(config: HardwareConfig, accel_kwargs: dict, name, value):
    """Route one swept parameter to the config or the accelerator."""
    if name == "mac_lines":
        return replace(config, num_mac_lines=int(value)), accel_kwargs
    if name == "bandwidth_gbps":
        return replace(
            config, dram_bandwidth_bytes_per_s=float(value) * 1e9
        ), accel_kwargs
    if name == "act_buffer_kb":
        return replace(config, act_buffer_bytes=int(value * 1024)), accel_kwargs
    if name == "ae_compression":
        if value is None:
            return config, {**accel_kwargs, "use_ae": False}
        return config, {**accel_kwargs, "use_ae": True,
                        "ae_compression": float(value)}
    if name == "q_forwarding_hit_rate":
        return config, {**accel_kwargs, "q_forwarding_hit_rate": float(value)}
    raise KeyError(
        f"unknown DSE parameter {name!r}; choose from mac_lines, "
        "bandwidth_gbps, act_buffer_kb, ae_compression, q_forwarding_hit_rate"
    )


def _evaluate_design_point(workload, base_config, names, values) -> DesignPoint:
    """Evaluate one grid point (module-level so process pools can pickle it)."""
    config = base_config
    accel_kwargs: dict = {}
    for name, value in zip(names, values):
        config, accel_kwargs = _apply(config, accel_kwargs, name, value)
    accel = ViTCoDAccelerator(config=config, **accel_kwargs)
    report = accel.simulate_attention(workload)
    return DesignPoint(
        parameters=tuple(zip(names, values)),
        seconds=report.seconds,
        energy_joules=report.energy_joules,
        area_proxy=config.total_macs,
    )


def _evaluate_chunk(workload, base_config, names, chunk):
    """Evaluate a list of ``(grid_index, values)`` pairs in one task."""
    return [
        (index, _evaluate_design_point(workload, base_config, names, values))
        for index, values in chunk
    ]


class ParetoFront:
    """Incremental non-dominated set under minimise-objectives.

    Feed points one at a time with :meth:`offer`; at any moment
    :attr:`points` is exactly :func:`pareto_frontier` of everything offered
    so far (equal points never dominate each other, so duplicates of a
    frontier point are all kept — the same convention as the eager scan).
    This is what lets a streaming sweep prune a huge grid without ever
    holding more than the current frontier.
    """

    def __init__(self, objectives=("seconds", "energy_joules")):
        self.objectives = tuple(objectives)
        self._points: List = []
        self._values: List[np.ndarray] = []
        self.offered = 0

    def _objective_values(self, point):
        return np.array(
            [getattr(point, obj) for obj in self.objectives], dtype=np.float64
        )

    def offer(self, point) -> bool:
        """Add ``point`` if currently non-dominated; returns whether kept.

        A newly-kept point evicts any frontier members it dominates.
        """
        self.offered += 1
        value = self._objective_values(point)
        if self._values:
            values = np.vstack(self._values)
            less_eq = (values <= value).all(axis=1)
            strictly = (values < value).any(axis=1)
            if (less_eq & strictly).any():
                return False
            dominated = ((value <= values).all(axis=1)
                         & (value < values).any(axis=1))
            if dominated.any():
                keep = ~dominated
                self._points = [
                    p for p, k in zip(self._points, keep) if k
                ]
                self._values = [
                    v for v, k in zip(self._values, keep) if k
                ]
        self._points.append(point)
        self._values.append(value)
        return True

    def update(self, points: Iterable) -> "ParetoFront":
        """Offer every point of an iterable (draining it); returns self."""
        for point in points:
            self.offer(point)
        return self

    @property
    def points(self) -> List:
        """Current frontier, in first-seen order."""
        return list(self._points)

    def __len__(self):
        return len(self._points)

    def __iter__(self):
        return iter(self._points)


def _resolve_grid(grid):
    if not grid:
        raise ValueError("empty DSE grid")
    names = sorted(grid)
    return names, product(*(grid[n] for n in names))


def _chunked(iterable, size):
    """Yield lists of up to ``size`` items."""
    iterator = iter(iterable)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


#: Grid points bundled per parallel task: large enough to amortise the
#: per-task workload pickle, small enough to keep the stream responsive.
_STREAM_CHUNK = 16


def _iter_indexed_points(workload, grid, base_config, n_jobs,
                         chunksize=None) -> Iterator[tuple]:
    """Yield ``(grid_index, DesignPoint)`` pairs, lazily.

    Serial runs walk the cross-product in grid order without materialising
    it.  Parallel runs keep at most ``2 * n_jobs`` chunks in flight and
    yield chunks as they complete (so indices may arrive out of order —
    that IS the streaming contract; sort by index to recover grid order).
    Only pool *creation* may fall back to threads (sandboxes without
    process/semaphore support); failures during evaluation — including
    BrokenProcessPool — propagate.
    """
    base_config = base_config or VITCOD_DEFAULT
    names, combos = _resolve_grid(grid)
    indexed = enumerate(combos)
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    n_jobs = max(1, int(n_jobs))
    if n_jobs == 1:
        for index, values in indexed:
            yield index, _evaluate_design_point(
                workload, base_config, names, values
            )
        return
    chunks = _chunked(indexed, chunksize or _STREAM_CHUNK)
    try:
        pool = ProcessPoolExecutor(max_workers=n_jobs)
    except OSError:
        pool = ThreadPoolExecutor(max_workers=n_jobs)
    try:
        pending = set()
        for chunk in islice(chunks, 2 * n_jobs):
            pending.add(
                pool.submit(_evaluate_chunk, workload, base_config, names, chunk)
            )
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = next(chunks, None)
                if chunk is not None:
                    pending.add(
                        pool.submit(_evaluate_chunk, workload, base_config,
                                    names, chunk)
                    )
                yield from future.result()
        pool.shutdown(wait=True)
    finally:
        # An abandoned stream (consumer stopped early) must not block on
        # the in-flight chunks: cancel what hasn't started and return
        # without waiting for what has.
        pool.shutdown(wait=False, cancel_futures=True)


def iter_design_space(workload: ModelWorkload, grid: Dict[str, Sequence],
                      base_config: HardwareConfig = None, n_jobs: int = 1,
                      frontier: ParetoFront = None) -> Iterator[DesignPoint]:
    """Stream the grid cross-product: yield each :class:`DesignPoint` as it
    completes, never materialising the full grid.

    ``n_jobs > 1`` (or ``None`` for one per CPU) fans chunks of points
    across worker processes and yields them ``as_completed`` — out of grid
    order, but the multiset of points is exactly the eager sweep's.  With
    ``n_jobs == 1`` points arrive in grid order, lazily.

    Pass a :class:`ParetoFront` as ``frontier`` for incremental pruning:
    only points non-dominated *at the time they arrive* are yielded, and
    after the stream is drained ``frontier.points`` is exactly
    :func:`pareto_frontier` of the whole grid.

    Example
    -------
    >>> front = ParetoFront()
    >>> for point in iter_design_space(workload, grid, frontier=front):
    ...     print("candidate", point.parameters)   # prefix-frontier points
    >>> best = front.points                        # exact final frontier
    """
    stream = _iter_indexed_points(workload, grid, base_config, n_jobs)
    for _, point in stream:
        if frontier is not None and not frontier.offer(point):
            continue
        yield point


def sweep_design_space(workload: ModelWorkload, grid: Dict[str, Sequence],
                       base_config: HardwareConfig = None,
                       n_jobs: int = 1) -> List[DesignPoint]:
    """Evaluate the cross product of ``grid`` on ``workload``, eagerly.

    A drained, re-ordered :func:`iter_design_space`: ``n_jobs`` fans grid
    points across worker processes (``None`` means one per CPU); results
    are returned in grid order regardless, and a parallel sweep returns
    exactly what the serial sweep would.

    Example
    -------
    >>> grid = {"mac_lines": [32, 64, 128], "ae_compression": [None, 0.5]}
    >>> points = sweep_design_space(workload, grid, n_jobs=4)
    """
    if not grid:
        raise ValueError("empty DSE grid")
    # Normalise once: the grid is resolved both here (for sizing/ordering)
    # and inside the streaming engine, so one-shot iterables must not be
    # consumed twice.
    grid = {name: tuple(values) for name, values in grid.items()}
    names, combos = _resolve_grid(grid)
    combos = list(combos)
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    n_jobs = max(1, min(int(n_jobs), len(combos)))
    # One chunk per worker (the historical sweep batching): the workload is
    # pickled once per chunk and every worker gets one task.
    chunksize = -(-len(combos) // n_jobs) if combos else 1
    indexed = _iter_indexed_points(workload, grid, base_config, n_jobs,
                                   chunksize=chunksize)
    points: List[DesignPoint] = [None] * len(combos)
    for index, point in indexed:
        points[index] = point
    return points


def _pareto_mask_sorted_2d(values: np.ndarray) -> np.ndarray:
    """Non-dominated mask for two minimise-objectives via lexsort + scan.

    A point is dominated iff some point has both coordinates ``<=`` and at
    least one ``<`` — equal points never dominate each other.  After sorting
    by (a, b), a point is dominated exactly when the running minimum of ``b``
    over strictly-smaller ``a`` reaches it, or a same-``a`` point has a
    strictly smaller ``b``.
    """
    order = np.lexsort((values[:, 1], values[:, 0]))
    a = values[order, 0]
    b = values[order, 1]
    n = a.size
    group_start = np.ones(n, dtype=bool)
    group_start[1:] = a[1:] != a[:-1]
    group_id = np.cumsum(group_start) - 1
    starts = np.flatnonzero(group_start)
    cummin_b = np.minimum.accumulate(b)
    prev_min = np.full(starts.size, np.inf)
    prev_min[1:] = cummin_b[starts[1:] - 1]
    group_min_b = b[starts]
    dominated = (prev_min[group_id] <= b) | (b > group_min_b[group_id])
    keep = np.empty(n, dtype=bool)
    keep[order] = ~dominated
    return keep


def _pareto_mask_pairwise(values: np.ndarray) -> np.ndarray:
    """Non-dominated mask for any objective count via one broadcast."""
    less_eq = np.all(values[:, None, :] <= values[None, :, :], axis=2)
    strictly = np.any(values[:, None, :] < values[None, :, :], axis=2)
    dominated = np.any(less_eq & strictly, axis=0)
    return ~dominated


def pareto_frontier(points: Sequence[DesignPoint],
                    objectives=("seconds", "energy_joules")) -> List[DesignPoint]:
    """Non-dominated subset under the given minimise-objectives.

    The two-objective case (the common one) runs in O(n log n) via a sort
    and a prefix-minimum scan; other objective counts use a vectorized
    pairwise dominance check.  Points are returned in input order.
    """
    if not points:
        return []
    values = np.array(
        [[getattr(p, obj) for obj in objectives] for p in points],
        dtype=np.float64,
    )
    if values.shape[1] == 2:
        keep = _pareto_mask_sorted_2d(values)
    else:
        keep = _pareto_mask_pairwise(values)
    return [p for p, k in zip(points, keep) if k]


def sensitivity(workload: ModelWorkload, parameter, values,
                base_config: HardwareConfig = None,
                n_jobs: int = 1) -> List[dict]:
    """One-dimensional sensitivity: latency/energy vs one parameter."""
    points = sweep_design_space(workload, {parameter: list(values)},
                                base_config=base_config, n_jobs=n_jobs)
    return [
        {
            parameter: p.parameter(parameter),
            "seconds": p.seconds,
            "energy_joules": p.energy_joules,
            "edp": p.edp,
        }
        for p in points
    ]
