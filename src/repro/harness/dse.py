"""Design-space exploration (DSE) over ViTCoD accelerator configurations.

The paper motivates its design-point choices (512 MACs, 76.8 GB/s, 320 KB
SRAM, 0.5 AE compression) qualitatively; this module makes the trade-offs
measurable: sweep any subset of {MAC lines, bandwidth, buffer size, AE
compression, forwarding hit rate} over a workload, collect latency/energy,
and extract the Pareto frontier.

All evaluation goes through ONE streaming engine:

* :func:`iter_design_space` lazily walks the grid cross-product and yields
  :class:`DesignPoint` objects as they complete — huge grids are never
  materialised, and an incremental :class:`ParetoFront` can prune the
  stream on the fly (pass ``frontier=``);
* :func:`sweep_design_space` is the eager wrapper: it drains the stream
  and restores deterministic grid order, so serial and parallel runs are
  interchangeable (and equal to the streaming results point for point).

*What* scores a point is pluggable (:mod:`repro.sim.evaluator`): pass
``evaluator=`` — ``"analytical"`` (the default closed-form model),
``"cycle"`` (the event-driven simulator, streamed through the same
engine), ``"hybrid"`` (prune analytically, re-score the surviving frontier
cycle-accurately, survivors in deterministic grid order), or any
:class:`~repro.sim.evaluator.Evaluator` instance.  A point whose evaluator
raises is dropped with a :class:`RuntimeWarning` (the sweep never hangs on
a poisoned worker task); unknown grid *parameters* still raise.

Evaluators that implement the
:class:`~repro.sim.evaluator.BatchEvaluator` surface — the analytical
default does — are handed whole bounded chunks of grid points and score
them as single numpy batch ops instead of one Python call per point, in
serial runs, in pool workers, in the hybrid coarse phase and in
:mod:`repro.dist` shards alike.  Batching is an execution detail only:
results are bit-for-bit the per-point sweep's (points, ordering, Pareto
frontier, failure attribution), which is CI-enforced.  Pass a plain
:class:`~repro.sim.evaluator.AnalyticalEvaluator` instance (CLI:
``--no-batch``) to force per-point execution, and ``chunksize`` (CLI:
``--batch-size``) to override the batch granularity.

Parallel runs fan grid points across ``concurrent.futures`` workers in
chunks with a bounded number of chunks in flight, yielding chunks
``as_completed``; the workload is shipped once per worker through the pool
initializer (:func:`repro.perf.seed_worker_workload`), so per-workload
memoized geometry is derived once per worker, not once per chunk.
:func:`sweep_design_space` additionally *pilots* the first grid points
before committing to a pool: sweeps whose total estimated cost is below
the cost of spawning workers run serially (cheap analytical grids used to
pay a ~0.7× "speedup" for their pool), and sweeps that do fan out size
their chunks to a wall-clock target instead of a fixed point count.

The deterministic grid indexing is also a *partition key*: every grid
point has one index in the lexicographic cross-product order, exposed via
:func:`grid_size` / :func:`grid_point` /
:func:`iter_indexed_design_points`, which is what :mod:`repro.dist` shards
across hosts (each shard evaluates a disjoint index subset and a merge
reproduces the single-process sweep bit for bit).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from itertools import islice, product
from math import ceil
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from .. import obs
from ..faults.errors import TransientError
from ..hw.params import VITCOD_DEFAULT, HardwareConfig
from ..hw.workload import ModelWorkload
from ..perf.cache import seed_worker_workload, seeded_workload
from ..sim.evaluator import (
    Evaluator,
    HybridEvaluator,
    UnsupportedParameterError,
    apply_dse_parameter,
    resolve_evaluator,
)

__all__ = [
    "DesignPoint",
    "PointFailure",
    "ParetoFront",
    "grid_size",
    "grid_point",
    "iter_indexed_design_points",
    "iter_design_space",
    "sweep_design_space",
    "pareto_frontier",
    "sensitivity",
]

_log = obs.get_logger("harness.dse")


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    parameters: tuple  # sorted (name, value) pairs
    seconds: float
    energy_joules: float
    area_proxy: float  # MAC count (a first-order area stand-in)

    def parameter(self, name):
        return dict(self.parameters)[name]

    @property
    def edp(self):
        """Energy-delay product (J·s) — the usual DSE objective."""
        return self.seconds * self.energy_joules


#: Route one swept parameter to the config or the accelerator — since the
#: batched evaluators grew their own column routes, the single source of
#: truth is the DSE parameter table in :mod:`repro.sim.evaluator`, which
#: declares both execution forms of every knob side by side.
_apply = apply_dse_parameter


@dataclass(frozen=True)
class PointFailure:
    """A design point whose evaluator raised.

    The in-memory sweeps drop failures with a :class:`RuntimeWarning`; the
    sharded runners (:mod:`repro.dist`) instead persist them as per-point
    completion records, so a resumed shard does not re-run a point that
    deterministically fails and a merge can reproduce the single-process
    drop behaviour.
    """

    parameters: tuple
    error: str
    #: True when the failure is worth retrying: the evaluator raised a
    #: :class:`repro.faults.TransientError` (or an ``OSError`` — I/O and
    #: resource hiccups), rather than failing deterministically.  The
    #: sharded runners re-evaluate transient failures under a backoff
    #: budget before persisting anything.
    transient: bool = False


#: Backwards-compatible private alias (the class predates :mod:`repro.dist`).
_PointFailure = PointFailure


def _evaluate_design_point(workload, base_config, names, values, evaluator: Evaluator):
    """Evaluate one grid point (module-level so process pools can pickle it).

    Unknown/misrouted grid parameters raise (a malformed *grid* is a caller
    bug, including an :class:`~repro.sim.evaluator.UnsupportedParameterError`
    from an evaluator that cannot honour a swept knob); any other exception
    from the evaluator itself — a simulator blowing up on one configuration
    — is captured as a :class:`_PointFailure` so a pool worker returns it
    instead of poisoning its whole chunk.
    """
    config = base_config
    accel_kwargs: dict = {}
    for name, value in zip(names, values):
        config, accel_kwargs = _apply(config, accel_kwargs, name, value)
    parameters = tuple(zip(names, values))
    try:
        metrics = evaluator(workload, config, accel_kwargs)
    except UnsupportedParameterError:
        raise
    except Exception as exc:
        return _PointFailure(
            parameters=parameters,
            error=f"{type(exc).__name__}: {exc}",
            transient=isinstance(exc, (TransientError, OSError)),
        )
    return DesignPoint(
        parameters=parameters,
        seconds=metrics.seconds,
        energy_joules=metrics.energy_joules,
        area_proxy=config.total_macs,
    )


def _scored_pair(workload, base_config, names, evaluator, index, row):
    """One ``(grid_index, result)`` pair via :func:`_evaluate_design_point`."""
    return index, _evaluate_design_point(workload, base_config, names, row, evaluator)


def _batch_capable(evaluator) -> bool:
    """Whether ``evaluator`` implements the ``evaluate_batch`` surface
    (see :class:`repro.sim.evaluator.BatchEvaluator`).  An evaluator may
    additionally expose a ``batch_capable`` attribute to turn its batch
    surface off dynamically (the batched cycle evaluator does, for its
    scalar reference engine)."""
    return callable(getattr(evaluator, "evaluate_batch", None)) and getattr(
        evaluator, "batch_capable", True
    )


def _chunk_points_from_batch(base_config, names, chunk, metrics):
    """Zip one chunk's batch metrics into ``(grid_index, DesignPoint)``.

    The area proxy mirrors the per-point path's ``config.total_macs``
    (swept MAC lines times the base config's per-line width) without
    cloning a config per point.
    """
    lines_at = names.index("mac_lines") if "mac_lines" in names else None
    pairs = []
    for (index, values), point_metrics in zip(chunk, metrics):
        lines = (
            int(values[lines_at])
            if lines_at is not None
            else base_config.num_mac_lines
        )
        point = DesignPoint(
            parameters=tuple(zip(names, values)),
            seconds=point_metrics.seconds,
            energy_joules=point_metrics.energy_joules,
            area_proxy=lines * base_config.macs_per_line,
        )
        pairs.append((index, point))
    return pairs


def _evaluate_chunk(workload, base_config, names, chunk, evaluator):
    """Evaluate a list of ``(grid_index, values)`` pairs in one task.

    ``workload=None`` means "use the workload the pool initializer seeded
    into this worker" (:func:`repro.perf.seed_worker_workload`) — chunk
    tasks then carry no workload payload at all.

    A batch-capable evaluator (:func:`_batch_capable`) scores the whole
    chunk in one ``evaluate_batch`` call — one numpy walk instead of
    ``len(chunk)`` Python dispatches, bit-for-bit equal to the per-point
    loop by the :class:`~repro.sim.evaluator.BatchEvaluator` contract.
    Any exception from the batch call drops to the per-point loop below,
    which re-raises structural errors (unknown parameters,
    :class:`~repro.sim.evaluator.UnsupportedParameterError`) and captures
    per-point evaluator failures as :class:`PointFailure` — so failure
    attribution is identical with and without batching.
    """
    if workload is None:
        workload = seeded_workload()
    if _batch_capable(evaluator):
        try:
            metrics = evaluator.evaluate_batch(
                workload, base_config, names, [values for _, values in chunk]
            )
            if len(metrics) != len(chunk):
                raise RuntimeError(
                    f"evaluate_batch returned {len(metrics)} results "
                    f"for {len(chunk)} points"
                )
        except UnsupportedParameterError:
            # Structural by definition: the batch raise IS the raise every
            # per-point call would produce — propagate it clean instead of
            # warning about a fallback that could only re-raise it.
            raise
        except Exception as exc:
            # Fall back to the per-point loop below, which attributes the
            # failure (or re-raises a structural error) — but say so: a
            # systematically broken batch implementation would otherwise
            # degrade every chunk silently, producing correct results at
            # none of the batched speed.
            _log.warning(
                "evaluate_batch failed (%s: %s); scoring this %d-point "
                "chunk per point",
                type(exc).__name__,
                exc,
                len(chunk),
            )
            obs.counter("dse_batch_fallbacks").inc()
            warnings.warn(
                f"evaluate_batch failed ({type(exc).__name__}: {exc}); "
                f"scoring this {len(chunk)}-point chunk per point",
                RuntimeWarning,
                stacklevel=2,
            )
            metrics = None
        if metrics is not None:
            return _chunk_points_from_batch(base_config, names, chunk, metrics)
    return [
        _scored_pair(workload, base_config, names, evaluator, index, row)
        for index, row in chunk
    ]


class ParetoFront:
    """Incremental non-dominated set under minimise-objectives.

    Feed points one at a time with :meth:`offer`; at any moment
    :attr:`points` is exactly :func:`pareto_frontier` of everything offered
    so far (equal points never dominate each other, so duplicates of a
    frontier point are all kept — the same convention as the eager scan).
    This is what lets a streaming sweep prune a huge grid without ever
    holding more than the current frontier.
    """

    def __init__(self, objectives=("seconds", "energy_joules")):
        self.objectives = tuple(objectives)
        self._points: List = []
        self._values: List[np.ndarray] = []
        self.offered = 0

    def _objective_values(self, point):
        return np.array(
            [getattr(point, obj) for obj in self.objectives], dtype=np.float64
        )

    def offer(self, point) -> bool:
        """Add ``point`` if currently non-dominated; returns whether kept.

        A newly-kept point evicts any frontier members it dominates.
        """
        self.offered += 1
        value = self._objective_values(point)
        if self._values:
            values = np.vstack(self._values)
            less_eq = (values <= value).all(axis=1)
            strictly = (values < value).any(axis=1)
            if (less_eq & strictly).any():
                return False
            dominated = (value <= values).all(axis=1) & (value < values).any(axis=1)
            if dominated.any():
                keep = ~dominated
                self._points = [p for p, k in zip(self._points, keep) if k]
                self._values = [v for v, k in zip(self._values, keep) if k]
        self._points.append(point)
        self._values.append(value)
        return True

    def offer_all(self, points: Sequence) -> List:
        """Offer a whole chunk at once; returns the points kept.

        Bit-for-bit the sequential :meth:`offer` loop: the returned list
        holds exactly the points a sequential loop would have kept (in
        arrival order, including points a *later* arrival evicts — kept
        means non-dominated at offer time), and the frontier afterwards
        is identical.  The dominance tests run as whole-chunk numpy
        broadcasts instead of one :meth:`offer` vstack per point, which
        is what lets streaming sweeps prune chunk-sized batches at array
        speed.

        Equivalence argument: a sequential offer rejects point ``j`` iff
        some frontier member dominates it on arrival; every point offered
        earlier (kept or rejected, chunk or pre-chunk) is dominated by a
        frontier member unless it is one, and dominance is transitive —
        so ``j`` is rejected iff *some earlier-offered point* dominates
        it, which is the broadcast below.  The survivors' frontier is
        then the non-dominated subset of (old frontier + kept), in
        first-seen order, with equal points never dominating each other —
        exactly :func:`pareto_frontier`'s convention.
        """
        points = list(points)
        if not points:
            return []
        self.offered += len(points)
        new = np.array(
            [[getattr(p, obj) for obj in self.objectives] for p in points],
            dtype=np.float64,
        )
        if self._values:
            old = np.vstack(self._values)
            less_eq = (old[:, None, :] <= new[None, :, :]).all(axis=2)
            strictly = (old[:, None, :] < new[None, :, :]).any(axis=2)
            rejected = (less_eq & strictly).any(axis=0)
        else:
            rejected = np.zeros(len(points), dtype=bool)
        less_eq = (new[:, None, :] <= new[None, :, :]).all(axis=2)
        strictly = (new[:, None, :] < new[None, :, :]).any(axis=2)
        earlier = np.triu(np.ones((len(points), len(points)), dtype=bool), 1)
        rejected |= (less_eq & strictly & earlier).any(axis=0)
        kept = [p for p, r in zip(points, rejected.tolist()) if not r]
        if kept:
            merged = self._points + kept
            values = np.vstack(
                self._values + [v for v, r in zip(new, rejected.tolist()) if not r]
            )
            if values.shape[1] == 2:
                keep_mask = _pareto_mask_sorted_2d(values)
            else:
                keep_mask = _pareto_mask_pairwise(values)
            self._points = [p for p, k in zip(merged, keep_mask) if k]
            self._values = [v for v, k in zip(values, keep_mask) if k]
        return kept

    def update(self, points: Iterable) -> "ParetoFront":
        """Offer every point of an iterable (draining it); returns self."""
        for point in points:
            self.offer(point)
        return self

    @property
    def points(self) -> List:
        """Current frontier, in first-seen order."""
        return list(self._points)

    def __len__(self):
        return len(self._points)

    def __iter__(self):
        return iter(self._points)


def _resolve_grid(grid):
    if not grid:
        raise ValueError("empty DSE grid")
    names = sorted(grid)
    return names, product(*(grid[n] for n in names))


def _normalise_grid(grid) -> Dict[str, tuple]:
    """Materialise grid values as tuples (one-shot iterables read once)."""
    if not grid:
        raise ValueError("empty DSE grid")
    normalised = {name: tuple(values) for name, values in grid.items()}
    for name, values in normalised.items():
        if not values:
            raise ValueError(f"DSE parameter {name!r} has no values")
    return normalised


def grid_size(grid) -> int:
    """Number of points in the grid cross-product."""
    size = 1
    for values in _normalise_grid(grid).values():
        size *= len(values)
    return size


def grid_point(grid, index: int) -> tuple:
    """Decode one grid index into its value tuple (sorted-name order).

    The index is the point's position in the deterministic sweep order —
    ``enumerate(product(*(grid[n] for n in sorted(grid))))`` — decoded in
    O(#parameters) by mixed-radix arithmetic, so shards of a huge grid can
    materialise exactly their own points without walking the cross-product.
    """
    grid = _normalise_grid(grid)
    return _decode_grid_index(grid, sorted(grid), index)


def _decode_grid_index(grid, names, index):
    """:func:`grid_point` over an already-normalised grid."""
    if index < 0:
        raise IndexError(f"grid index must be non-negative, got {index}")
    values = []
    # itertools.product varies the LAST name fastest: peel digits off the
    # little end of the mixed-radix representation.
    remaining = index
    for name in reversed(names):
        choices = grid[name]
        remaining, digit = divmod(remaining, len(choices))
        values.append(choices[digit])
    if remaining:
        raise IndexError(
            f"grid index {index} out of range "
            f"(grid has {grid_size(grid)} points)"
        )
    return tuple(reversed(values))


def _chunked(iterable, size):
    """Yield lists of up to ``size`` items."""
    iterator = iter(iterable)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


#: Grid points bundled per parallel task: large enough to amortise the
#: per-task workload pickle, small enough to keep the stream responsive.
_STREAM_CHUNK = 16

#: Grid points scored per ``evaluate_batch`` call when the evaluator is
#: batch-capable: big enough to amortise every numpy launch across the
#: chunk (the per-point share of array-op overhead is negligible by a few
#: hundred points), small enough to bound the (points × layers)
#: temporaries and keep streams/stores responsive.  Also the cap on
#: planned parallel chunk sizes for batch evaluators.
_BATCH_CHUNK = 1024

#: Eager sweeps below this much estimated total work run serially even
#: when ``n_jobs > 1``: spawning a process pool costs a few hundred
#: milliseconds, which used to buy cheap-point sweeps a ~0.7× "speedup"
#: (BENCH ``cycle_sim_dse`` at 48 vectorized points).
_AUTO_SERIAL_SECONDS = 0.25

#: Adaptive chunks aim for this much work per task: big enough to amortise
#: dispatch, small enough to keep workers balanced near the sweep's tail.
_TARGET_CHUNK_SECONDS = 0.05

#: Grid points timed serially before committing a sweep to a pool.
_PILOT_POINTS = 2

#: Survivors scored per adaptive-hybrid fine step: small enough that the
#: observed fine/coarse band updates often (later chunks can skip more),
#: large enough that a batch-capable fine evaluator still amortises its
#: array walk.
_ADAPTIVE_CHUNK = 16


def _plan_parallel(per_point_s, remaining, n_jobs, min_parallel_s):
    """Pick ``(n_jobs, chunksize)`` from a measured per-point cost.

    Serial (``n_jobs=1``) when the whole remaining sweep is estimated
    cheaper than ``min_parallel_s`` (the pool would cost more than it
    saves); otherwise chunks target :data:`_TARGET_CHUNK_SECONDS` of work
    each — expensive points get small chunks (better balance), cheap
    points get large ones (less dispatch) — capped at the historical
    one-chunk-per-worker split and floored at one point.
    """
    if remaining <= 0 or per_point_s * remaining < min_parallel_s:
        return 1, max(remaining, 1)
    per_worker = -(-remaining // n_jobs)
    target = max(1, ceil(_TARGET_CHUNK_SECONDS / max(per_point_s, 1e-9)))
    return n_jobs, min(per_worker, target)


def _resolve_n_jobs(n_jobs):
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    return max(1, int(n_jobs))


def _piloted_stream(
    workload, base_config, names, indexed, total, n_jobs, threshold, evaluator
) -> Iterator[tuple]:
    """Adaptive :func:`_stream_evaluations` over a known-length stream.

    Times the first :data:`_PILOT_POINTS` points in-process — or, for a
    batch-capable evaluator, the first :data:`_BATCH_CHUNK`-point batch,
    so the measured per-point cost is the *batched* cost the rest of the
    sweep would actually pay — then either finishes serially (estimated
    remaining work below ``threshold``: the pool would cost more than it
    saves, which for batched analytical grids is almost always the case)
    or fans out with :func:`_plan_parallel`-sized chunks.  Without a
    pilot (serial request, tiny grid, ``threshold <= 0``) this is the
    historical one-chunk-per-worker stream.  Yields
    ``(grid_index, point)`` pairs with failures warn-dropped; parallel
    yields arrive out of order.
    """
    indexed = iter(indexed)
    chunksize = -(-total // n_jobs) if (total and n_jobs > 1) else None
    if chunksize is not None and _batch_capable(evaluator):
        # The one-chunk-per-worker fallback must not hand a worker an
        # unbounded evaluate_batch call: (points × layers) temporaries
        # are bounded by the batch chunk cap, pilot or no pilot.
        chunksize = min(chunksize, _BATCH_CHUNK)
    if n_jobs > 1 and threshold > 0 and _batch_capable(evaluator):
        pilot_chunk = list(islice(indexed, _BATCH_CHUNK))
        if pilot_chunk:
            begin = perf_counter()
            pilot = _evaluate_chunk(
                workload, base_config, names, pilot_chunk, evaluator
            )
            per_point = (perf_counter() - begin) / len(pilot_chunk)
            _note_chunk(pilot)
            yield from _filter_failures(pilot)
            n_jobs, chunksize = _plan_parallel(
                per_point, total - len(pilot_chunk), n_jobs, threshold
            )
            chunksize = None if n_jobs == 1 else min(chunksize, _BATCH_CHUNK)
            _note_pilot(n_jobs, chunksize)
    elif n_jobs > 1 and threshold > 0 and total > _PILOT_POINTS:
        begin = perf_counter()
        pilot = [
            _scored_pair(workload, base_config, names, evaluator, index, row)
            for index, row in islice(indexed, _PILOT_POINTS)
        ]
        per_point = (perf_counter() - begin) / _PILOT_POINTS
        yield from _filter_failures(pilot)
        n_jobs, chunksize = _plan_parallel(
            per_point, total - _PILOT_POINTS, n_jobs, threshold
        )
        if n_jobs == 1:
            chunksize = None
        _note_pilot(n_jobs, chunksize)
    yield from _stream_evaluations(
        workload, base_config, names, indexed, n_jobs, chunksize, evaluator
    )


def _hybrid_survivors(pairs, objectives=("seconds", "energy_joules")):
    """Coarse-frontier survivors of ``(grid_index, point)`` pairs.

    THE survivor-selection rule of a hybrid sweep, shared by the
    in-memory two-phase sweep (:func:`_iter_hybrid`) and the sharded
    merge (:func:`repro.dist.merge_store`) so the two can never drift:
    offer every coarse point to a :class:`ParetoFront` and return the
    surviving ``(grid_index, point)`` pairs in ascending grid order.  The
    non-dominated set of a multiset is arrival-order independent, so any
    execution order (serial, pooled, sharded) selects the same indices.
    """
    front = ParetoFront(objectives=objectives)
    index_of = {}  # id(point) -> grid index (points are unique objects)
    for chunk in _chunked(pairs, _BATCH_CHUNK):
        chunk_index = {id(point): index for index, point in chunk}
        for point in front.offer_all([point for _, point in chunk]):
            index_of[id(point)] = chunk_index[id(point)]
    return sorted(
        ((index_of[id(point)], point) for point in front.points),
        key=lambda pair: pair[0],
    )


def _adaptive_fine(workload, base_config, names, survivors, evaluator, objectives):
    """Band-pruned fine phase of an adaptive hybrid sweep.

    Walks the coarse-frontier survivors in ascending grid order, in
    :data:`_ADAPTIVE_CHUNK`-point steps, tracking per objective the
    smallest fine/coarse ratio observed so far.  A survivor is *skipped*
    when its optimistic fine estimate — its coarse objectives scaled by
    that minimum ratio shrunk by ``evaluator.band_slack`` — is already
    strictly dominated by an actually-scored fine point: under the band
    assumption (true ratios stay above the shrunk minimum) its true fine
    values are dominated too, so it cannot sit on the final fine
    frontier.  Everything else is scored through :func:`_evaluate_chunk`
    (one array walk per chunk when the fine evaluator is batch-capable)
    and widens the band.  Chunks run serially in-process, so the outcome
    is deterministic regardless of ``n_jobs``.  Returns scored
    ``(grid_index, point)`` pairs; failures are warn-dropped as usual.
    """
    shrink = 1.0 - evaluator.band_slack
    low_ratio = None
    scored_rows: List[np.ndarray] = []
    results = []
    for chunk in _chunked(survivors, _ADAPTIVE_CHUNK):
        todo = []
        for index, point in chunk:
            coarse_vals = np.array(
                [getattr(point, obj) for obj in objectives], dtype=np.float64
            )
            if low_ratio is not None and scored_rows:
                optimistic = coarse_vals * low_ratio * shrink
                rows = np.vstack(scored_rows)
                less_eq = (rows <= optimistic).all(axis=1)
                strictly = (rows < optimistic).any(axis=1)
                if (less_eq & strictly).any():
                    continue
            todo.append((index, point, coarse_vals))
        if not todo:
            continue
        scored = _evaluate_chunk(
            workload,
            base_config,
            names,
            [
                (index, tuple(dict(point.parameters)[name] for name in names))
                for index, point, _ in todo
            ],
            evaluator.fine,
        )
        for pair, (_, _, coarse_vals) in zip(scored, todo):
            kept = next(iter(_filter_failures([pair])), None)
            if kept is None:
                continue
            index, fine_point = kept
            fine_vals = np.array(
                [getattr(fine_point, obj) for obj in objectives], dtype=np.float64
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.where(coarse_vals > 0, fine_vals / coarse_vals, np.inf)
            low_ratio = ratio if low_ratio is None else np.minimum(low_ratio, ratio)
            scored_rows.append(fine_vals)
            results.append((index, fine_point))
    return results


def _note_chunk(pairs):
    """Count one completed chunk's results into the telemetry registry.

    Called once per dispatched chunk in the consumer process (pool chunks
    are counted on arrival — worker-process registries don't survive the
    hop).  A disabled registry — the default — costs one attribute check.
    """
    registry = obs.get_registry()
    if not registry.enabled:
        return
    failed = sum(1 for _, point in pairs if isinstance(point, _PointFailure))
    registry.counter("dse_chunks_dispatched").inc()
    if len(pairs) > failed:
        registry.counter("dse_points_scored").inc(len(pairs) - failed)


def _note_pilot(n_jobs, chunksize):
    """Record the pilot's pool decision (see :func:`_plan_parallel`)."""
    registry = obs.get_registry()
    if not registry.enabled:
        return
    mode = "serial" if n_jobs == 1 else "parallel"
    registry.counter("dse_pilot_decisions", mode=mode).inc()
    if n_jobs > 1 and chunksize:
        registry.gauge("dse_pilot_chunk_size").set(chunksize)


def _filter_failures(pairs):
    """Pass ``(index, DesignPoint)`` pairs through; warn-and-drop failures."""
    for index, point in pairs:
        if isinstance(point, _PointFailure):
            _log.warning(
                "DSE point %d %r dropped: evaluator raised %s",
                index,
                dict(point.parameters),
                point.error,
            )
            obs.counter("dse_points_failed").inc()
            warnings.warn(
                f"DSE point {index} {dict(point.parameters)!r} dropped: "
                f"evaluator raised {point.error}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        yield index, point


def _stream_evaluations(
    workload,
    base_config,
    names,
    indexed,
    n_jobs,
    chunksize,
    evaluator,
    keep_failures=False,
) -> Iterator[tuple]:
    """Evaluate ``(grid_index, values)`` pairs, yielding completed points.

    The engine under both the lazy and the eager sweep: serial runs
    evaluate in the order given; parallel runs keep at most ``2 * n_jobs``
    chunks in flight and yield chunks as they complete (out of order —
    that IS the streaming contract; sort by index to recover input order).
    Either way, a batch-capable evaluator scores each chunk as ONE
    ``evaluate_batch`` array op (:data:`_BATCH_CHUNK` points per chunk by
    default; ``chunksize`` overrides) instead of a per-point Python loop
    — bit-for-bit the same points, order and failures (see
    :func:`_evaluate_chunk`).  The workload is shipped once per worker
    via the pool initializer, so chunk tasks stay tiny and workers reuse
    one memoized workload object.
    Only pool *creation* may fall back to threads (sandboxes without
    process/semaphore support); failures outside the evaluator — including
    BrokenProcessPool — propagate.  ``keep_failures=True`` yields
    :class:`PointFailure` results instead of warn-dropping them (the
    sharded runners persist them as completion records).
    """
    sieve = (lambda pairs: pairs) if keep_failures else _filter_failures
    if n_jobs == 1:
        if _batch_capable(evaluator):
            # Serial batched streaming: score bounded chunks as single
            # array ops.  Laziness weakens from per-point to per-chunk —
            # an early-stopping consumer evaluates at most one chunk
            # beyond what it takes.
            for chunk in _chunked(indexed, chunksize or _BATCH_CHUNK):
                with obs.span("dse_chunk"):
                    scored = _evaluate_chunk(
                        workload, base_config, names, chunk, evaluator
                    )
                _note_chunk(scored)
                yield from sieve(scored)
            return
        pairs = (
            _scored_pair(workload, base_config, names, evaluator, index, row)
            for index, row in indexed
        )
        yield from sieve(pairs)
        return
    default_chunk = _BATCH_CHUNK if _batch_capable(evaluator) else _STREAM_CHUNK
    chunks = _chunked(indexed, chunksize or default_chunk)
    try:
        pool = ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=seed_worker_workload,
            initargs=(workload,),
        )
        task_workload = None  # workers read the seeded copy instead
    except OSError:
        pool = ThreadPoolExecutor(max_workers=n_jobs)
        task_workload = workload
    obs.counter("dse_pool_spawns").inc()

    def submit(chunk):
        return pool.submit(
            _evaluate_chunk, task_workload, base_config, names, chunk, evaluator
        )

    try:
        pending = set()
        for chunk in islice(chunks, 2 * n_jobs):
            pending.add(submit(chunk))
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = next(chunks, None)
                if chunk is not None:
                    pending.add(submit(chunk))
                scored = future.result()
                _note_chunk(scored)
                yield from sieve(scored)
        pool.shutdown(wait=True)
    finally:
        # An abandoned stream (consumer stopped early) must not block on
        # the in-flight chunks: cancel what hasn't started and return
        # without waiting for what has.
        pool.shutdown(wait=False, cancel_futures=True)


def _iter_indexed_points(
    workload, grid, base_config, n_jobs, chunksize=None, evaluator=None
) -> Iterator[tuple]:
    """Yield ``(grid_index, DesignPoint)`` pairs over the grid, lazily.

    Serial runs walk the cross-product in grid order without materialising
    it; see :func:`_stream_evaluations` for the parallel contract.
    """
    base_config = base_config or VITCOD_DEFAULT
    if evaluator is None:
        evaluator = resolve_evaluator(None)
    names, combos = _resolve_grid(grid)
    yield from _stream_evaluations(
        workload,
        base_config,
        names,
        enumerate(combos),
        _resolve_n_jobs(n_jobs),
        chunksize,
        evaluator,
    )


def iter_indexed_design_points(
    workload: ModelWorkload,
    grid: Dict[str, Sequence],
    indices: Iterable[int] = None,
    base_config: HardwareConfig = None,
    n_jobs: int = 1,
    chunksize: int = None,
    evaluator=None,
    keep_failures=False,
) -> Iterator[tuple]:
    """Shard-aware streaming: evaluate a subset of grid indices.

    Yields ``(grid_index, DesignPoint)`` pairs for exactly the given
    ``indices`` (any iterable of positions in the deterministic sweep
    order; ``None`` means the whole grid).  This is the execution surface
    :mod:`repro.dist` shards across processes and hosts: each shard holds
    a disjoint index subset, and because the index *is* the partition key,
    re-running a shard can skip indices its result store already holds.

    Serial runs yield in the order given; ``n_jobs > 1`` fans index chunks
    across workers and yields them as completed (out of order).  With
    ``keep_failures=True`` a point whose evaluator raised arrives as a
    ``(grid_index, PointFailure)`` pair instead of being warn-dropped, so
    callers with durable stores can record the failure as a completion.

    Hybrid evaluators are rejected: their coarse phase is shardable (pass
    ``evaluator.coarse``) but the prune needs the whole grid — see
    :func:`repro.dist.merge_store`, which re-scores the merged frontier.
    """
    grid = _normalise_grid(grid)
    names = sorted(grid)
    evaluator = resolve_evaluator(evaluator)
    if isinstance(evaluator, HybridEvaluator):
        raise ValueError(
            "hybrid evaluators cannot stream indexed points: the prune "
            "needs the whole grid; shard evaluator.coarse and re-score "
            "the merged frontier instead (see repro.dist.merge_store)"
        )
    base_config = base_config or VITCOD_DEFAULT
    if indices is None:
        indexed = enumerate(product(*(grid[n] for n in names)))
    else:
        indexed = ((int(i), _decode_grid_index(grid, names, int(i))) for i in indices)
    yield from _stream_evaluations(
        workload,
        base_config,
        names,
        indexed,
        _resolve_n_jobs(n_jobs),
        chunksize,
        evaluator,
        keep_failures=keep_failures,
    )


def iter_design_space(
    workload: ModelWorkload,
    grid: Dict[str, Sequence],
    base_config: HardwareConfig = None,
    n_jobs: int = 1,
    frontier: ParetoFront = None,
    evaluator=None,
    chunksize: int = None,
    min_parallel_s: float = None,
) -> Iterator[DesignPoint]:
    """Stream the grid cross-product: yield each :class:`DesignPoint` as it
    completes, never materialising the full grid.

    ``n_jobs > 1`` (or ``None`` for one per CPU) fans chunks of points
    across worker processes and yields them ``as_completed`` — out of grid
    order, but the multiset of points is exactly the eager sweep's.  With
    ``n_jobs == 1`` points arrive in grid order, lazily.

    Pass a :class:`ParetoFront` as ``frontier`` for incremental pruning:
    only points non-dominated *at the time they arrive* are yielded, and
    after the stream is drained ``frontier.points`` is exactly
    :func:`pareto_frontier` of the whole grid.

    ``evaluator`` selects what scores each point (see
    :func:`~repro.sim.evaluator.resolve_evaluator`): ``None``/
    ``"analytical"`` keep the closed-form default, ``"cycle"`` streams
    event-driven :class:`~repro.hw.cycle_sim.CycleAccurateSimulator`
    points through the same bounded-chunk engine (tune ``chunksize`` down
    for very expensive points), and ``"hybrid"`` — or any
    :class:`~repro.sim.evaluator.HybridEvaluator` — prunes the grid with
    its coarse evaluator and yields only the surviving frontier re-scored
    by its fine evaluator, in deterministic grid order.  A hybrid coarse
    phase with ``n_jobs > 1`` (and no explicit ``chunksize``) is adaptive
    like the eager sweep: it pilots the first points and stays serial
    when the whole phase is cheaper than ``min_parallel_s`` (default
    ~0.25 s; ``0`` forces the pool).  Plain streaming sweeps ignore
    ``min_parallel_s`` — a lazy stream's length is unknown, so there is
    nothing to estimate against.

    Example
    -------
    >>> front = ParetoFront()
    >>> for point in iter_design_space(workload, grid, frontier=front):
    ...     print("candidate", point.parameters)   # prefix-frontier points
    >>> best = front.points                        # exact final frontier
    """
    evaluator = resolve_evaluator(evaluator)
    if isinstance(evaluator, HybridEvaluator):
        yield from _iter_hybrid(
            workload,
            grid,
            base_config,
            n_jobs,
            frontier,
            evaluator,
            chunksize,
            min_parallel_s=min_parallel_s,
        )
        return
    stream = _iter_indexed_points(
        workload, grid, base_config, n_jobs, chunksize, evaluator
    )
    if frontier is not None and _batch_capable(evaluator):
        # Batched scoring arrives chunk-at-a-time anyway, so prune each
        # chunk with one whole-chunk dominance broadcast instead of one
        # ``offer`` per point — same yielded points, same final frontier
        # (see :meth:`ParetoFront.offer_all`); laziness stays per-chunk.
        for chunk in _chunked(stream, chunksize or _BATCH_CHUNK):
            yield from frontier.offer_all([point for _, point in chunk])
        return
    for _, point in stream:
        if frontier is not None and not frontier.offer(point):
            continue
        yield point


def _iter_hybrid(
    workload,
    grid,
    base_config,
    n_jobs,
    frontier,
    evaluator: HybridEvaluator,
    chunksize,
    min_parallel_s=None,
) -> Iterator[DesignPoint]:
    """Two-phase sweep: coarse-prune the grid, fine-score the survivors.

    Phase 1 streams every grid point through ``evaluator.coarse`` into an
    incremental :class:`ParetoFront` — adaptively (see
    :func:`_piloted_stream`): a cheap coarse phase with ``n_jobs > 1``
    stays serial instead of paying for a pool it cannot amortise.  Phase 2
    re-scores only the surviving frontier with ``evaluator.fine``.
    Survivors are processed and yielded in ascending grid order, so hybrid
    sweeps are deterministic regardless of ``n_jobs`` or completion order
    (the non-dominated set of a multiset of points does not depend on
    arrival order).
    """
    grid = _normalise_grid(grid)
    names = sorted(grid)
    base_config = base_config or VITCOD_DEFAULT
    n_jobs = _resolve_n_jobs(n_jobs)
    threshold = (
        _AUTO_SERIAL_SECONDS if min_parallel_s is None else float(min_parallel_s)
    )

    coarse_objectives = (
        frontier.objectives if frontier is not None else ("seconds", "energy_joules")
    )
    combos = enumerate(product(*(grid[n] for n in names)))
    if chunksize is not None:
        # An explicit chunk size is a caller override (expensive coarse
        # points): keep the historical fixed-chunk stream.
        coarse_stream = _stream_evaluations(
            workload, base_config, names, combos, n_jobs, chunksize, evaluator.coarse
        )
    else:
        coarse_stream = _piloted_stream(
            workload,
            base_config,
            names,
            combos,
            grid_size(grid),
            n_jobs,
            threshold,
            evaluator.coarse,
        )
    survivors = _hybrid_survivors(coarse_stream, objectives=coarse_objectives)
    if getattr(evaluator, "adaptive", False):
        rescored = _adaptive_fine(
            workload,
            base_config,
            names,
            survivors,
            evaluator,
            objectives=coarse_objectives,
        )
    else:
        indexed = (
            (index, tuple(dict(point.parameters)[name] for name in names))
            for index, point in survivors
        )
        if _batch_capable(evaluator.fine):
            # A batch-capable fine evaluator scores the survivor set as a
            # few in-process array walks; a pool would pay worker spawn to
            # split work numpy already amortises.
            fine_jobs, fine_chunk = 1, None
        else:
            # Survivor counts are small and each point is expensive: one
            # point per task maximises fan-out.
            fine_jobs, fine_chunk = min(n_jobs, max(len(survivors), 1)), 1
        rescored = _stream_evaluations(
            workload,
            base_config,
            names,
            indexed,
            fine_jobs,
            fine_chunk,
            evaluator.fine,
        )
    for index, point in sorted(rescored, key=lambda pair: pair[0]):
        if frontier is not None and not frontier.offer(point):
            continue
        yield point


def sweep_design_space(
    workload: ModelWorkload,
    grid: Dict[str, Sequence],
    base_config: HardwareConfig = None,
    n_jobs: int = 1,
    evaluator=None,
    min_parallel_s: float = None,
    chunksize: int = None,
) -> List[DesignPoint]:
    """Evaluate the cross product of ``grid`` on ``workload``, eagerly.

    A drained, re-ordered :func:`iter_design_space`: ``n_jobs`` fans grid
    points across worker processes (``None`` means one per CPU); results
    are returned in grid order regardless, and a parallel sweep returns
    exactly what the serial sweep would.  ``evaluator`` selects the
    scoring strategy (``"analytical"`` default, ``"cycle"``, ``"hybrid"``
    or an :class:`~repro.sim.evaluator.Evaluator`); hybrid sweeps return
    only the re-scored frontier survivors.  Points whose evaluator raised
    are dropped (with a :class:`RuntimeWarning`), so the result can be
    shorter than the grid.

    ``n_jobs > 1`` sweeps are *adaptive*: the first
    :data:`_PILOT_POINTS` points are timed in-process, and the sweep only
    spawns a pool when the estimated remaining work exceeds
    ``min_parallel_s`` (default :data:`_AUTO_SERIAL_SECONDS`; pool spawn
    costs real wall-clock, so cheap grids are faster serial).  When it
    does fan out, chunks are sized to ~:data:`_TARGET_CHUNK_SECONDS` of
    estimated work instead of a fixed one-chunk-per-worker split.  Pass
    ``min_parallel_s=0`` to force the pool and the historical chunking
    (benchmarks measuring raw fan-out do this).  Either way the returned
    points are identical to the serial sweep's.

    An explicit ``chunksize`` is a caller override of both the pilot and
    the chunk planning (the same convention the hybrid coarse phase
    uses): points are streamed in fixed chunks of that many, which for a
    batch-capable evaluator is also the batch granularity (CLI:
    ``--batch-size``).

    Example
    -------
    >>> grid = {"mac_lines": [32, 64, 128], "ae_compression": [None, 0.5]}
    >>> points = sweep_design_space(workload, grid, n_jobs=4)
    """
    # Normalise once: the grid is resolved both here (for sizing/ordering)
    # and inside the streaming engine, so one-shot iterables must not be
    # consumed twice.
    grid = _normalise_grid(grid)
    evaluator = resolve_evaluator(evaluator)
    if isinstance(evaluator, HybridEvaluator):
        # The hybrid stream already arrives in deterministic grid order.
        hybrid_stream = iter_design_space(
            workload,
            grid,
            base_config,
            n_jobs=n_jobs,
            evaluator=evaluator,
            chunksize=chunksize,
            min_parallel_s=min_parallel_s,
        )
        with obs.span("dse_sweep", evaluator="hybrid", points=grid_size(grid)):
            return list(hybrid_stream)
    names, combos = _resolve_grid(grid)
    combos = list(combos)
    base_config = base_config or VITCOD_DEFAULT
    n_jobs = min(_resolve_n_jobs(n_jobs), len(combos))
    threshold = (
        _AUTO_SERIAL_SECONDS if min_parallel_s is None else float(min_parallel_s)
    )
    indexed = enumerate(combos)
    if chunksize is not None:
        stream = _stream_evaluations(
            workload, base_config, names, indexed, n_jobs, chunksize, evaluator
        )
    else:
        stream = _piloted_stream(
            workload,
            base_config,
            names,
            indexed,
            len(combos),
            n_jobs,
            threshold,
            evaluator,
        )
    points: List[DesignPoint] = [None] * len(combos)
    with obs.span("dse_sweep", points=len(combos)):
        for index, point in stream:
            points[index] = point
    return [point for point in points if point is not None]


def _pareto_mask_sorted_2d(values: np.ndarray) -> np.ndarray:
    """Non-dominated mask for two minimise-objectives via lexsort + scan.

    A point is dominated iff some point has both coordinates ``<=`` and at
    least one ``<`` — equal points never dominate each other.  After sorting
    by (a, b), a point is dominated exactly when the running minimum of ``b``
    over strictly-smaller ``a`` reaches it, or a same-``a`` point has a
    strictly smaller ``b``.
    """
    order = np.lexsort((values[:, 1], values[:, 0]))
    a = values[order, 0]
    b = values[order, 1]
    n = a.size
    group_start = np.ones(n, dtype=bool)
    group_start[1:] = a[1:] != a[:-1]
    group_id = np.cumsum(group_start) - 1
    starts = np.flatnonzero(group_start)
    cummin_b = np.minimum.accumulate(b)
    prev_min = np.full(starts.size, np.inf)
    prev_min[1:] = cummin_b[starts[1:] - 1]
    group_min_b = b[starts]
    dominated = (prev_min[group_id] <= b) | (b > group_min_b[group_id])
    keep = np.empty(n, dtype=bool)
    keep[order] = ~dominated
    return keep


def _pareto_mask_pairwise(values: np.ndarray) -> np.ndarray:
    """Non-dominated mask for any objective count via one broadcast."""
    less_eq = np.all(values[:, None, :] <= values[None, :, :], axis=2)
    strictly = np.any(values[:, None, :] < values[None, :, :], axis=2)
    dominated = np.any(less_eq & strictly, axis=0)
    return ~dominated


def pareto_frontier(
    points: Sequence[DesignPoint], objectives=("seconds", "energy_joules")
) -> List[DesignPoint]:
    """Non-dominated subset under the given minimise-objectives.

    The two-objective case (the common one) runs in O(n log n) via a sort
    and a prefix-minimum scan; other objective counts use a vectorized
    pairwise dominance check.  Points are returned in input order.
    """
    if not points:
        return []
    values = np.array(
        [[getattr(p, obj) for obj in objectives] for p in points],
        dtype=np.float64,
    )
    if values.shape[1] == 2:
        keep = _pareto_mask_sorted_2d(values)
    else:
        keep = _pareto_mask_pairwise(values)
    return [p for p, k in zip(points, keep) if k]


def sensitivity(
    workload: ModelWorkload,
    parameter,
    values,
    base_config: HardwareConfig = None,
    n_jobs: int = 1,
    evaluator=None,
    min_parallel_s: float = None,
) -> List[dict]:
    """One-dimensional sensitivity: latency/energy vs one parameter.

    A thin view over :func:`sweep_design_space` on the one-parameter grid
    ``{parameter: values}``, so it shares everything the sweep engine
    provides — workload memoization, the adaptive pool pilot, and whole-
    chunk batch scoring for batch-capable evaluators (the analytical
    default scores the entire value list as one numpy batch instead of
    one evaluator call per value).  Rows arrive in the order ``values``
    were given; values whose evaluator raised are warn-dropped like any
    sweep point.
    """
    points = sweep_design_space(
        workload,
        {parameter: list(values)},
        base_config=base_config,
        n_jobs=n_jobs,
        evaluator=evaluator,
        min_parallel_s=min_parallel_s,
    )
    return [
        {
            parameter: p.parameter(parameter),
            "seconds": p.seconds,
            "energy_joules": p.energy_joules,
            "edp": p.edp,
        }
        for p in points
    ]
