"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

__all__ = ["format_table", "format_speedup_row"]


def format_table(headers, rows, float_fmt="{:.2f}"):
    """Render a list of rows (sequences) as an aligned ASCII table."""
    def render(cell):
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_speedup_row(name, speedups):
    """One row of a Fig. 15-style speedup table."""
    return [name] + [f"{s:.1f}x" for s in speedups]
