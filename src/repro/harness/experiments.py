"""One runner per paper table/figure (the experiment index of DESIGN.md §4).

Every function returns plain data (dicts / lists) that the benchmark suite
prints and asserts on; nothing here touches matplotlib so the harness runs
headless.  Heavy knobs (model list, sparsity grid, training epochs) are
parameters with paper-faithful defaults and fast overrides for CI.
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    SangerSimulator,
    SpAttenSimulator,
    cpu_platform,
    edgegpu_platform,
    gpu_platform,
)
from ..hw import (
    CycleAccurateSimulator,
    ViTCoDAccelerator,
    attention_workload_from_masks,
)
from ..models import NLP_BERT_BASE, get_config
# Experiment runners are pure in (config, sparsity, seed, ...), so workload
# construction — by far their hottest step — goes through the process-wide
# memoization cache: figure runners that share a model/sparsity point build
# its masks once.
from ..perf.cache import cached_model_workload as model_workload
from ..roofline import sddmm_roofline_points, ridge_intensity
from ..sparsity import (
    metrics,
    prune_attention_map,
    split_and_conquer,
    synthetic_nlp_attention,
    synthetic_vit_attention,
    threshold_for_sparsity,
)
from .surrogate import (
    BASELINE_ACCURACY,
    nlp_dynamic_accuracy,
    nlp_fixed_mask_accuracy,
    vit_fixed_mask_accuracy,
)

__all__ = [
    "DEFAULT_MODELS",
    "fig1_accuracy_sparsity",
    "fig3_roofline",
    "fig4_breakdown",
    "fig8_polarization",
    "fig15_speedups",
    "fig17_accuracy_latency",
    "fig19_breakdown_energy",
    "cycle_per_layer_breakdown",
    "table1_taxonomy",
    "ablation_prune_reorder",
    "nlp_comparison",
    "nlp_attention_model_workload",
]

DEFAULT_MODELS = (
    "deit-tiny",
    "deit-small",
    "deit-base",
    "levit-128",
    "levit-192",
    "levit-256",
)

ALL_MODELS = DEFAULT_MODELS + ("strided-transformer",)


def _baseline_simulators():
    return [
        ("cpu", cpu_platform()),
        ("edgegpu", edgegpu_platform()),
        ("gpu", gpu_platform()),
        ("spatten", SpAttenSimulator()),
        ("sanger", SangerSimulator()),
    ]


# ----------------------------------------------------------------------
# Fig. 1 — accuracy/BLEU vs sparsity: fixed ViT masks vs dynamic NLP
# ----------------------------------------------------------------------
def fig1_accuracy_sparsity(sparsities=(0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95)):
    """Curves for the NLP-dynamic vs ViT-fixed comparison."""
    sparsities = list(sparsities)
    curves = {
        "deit-base (fixed)": [
            vit_fixed_mask_accuracy("deit-base", s) for s in sparsities
        ],
        "deit-small (fixed)": [
            vit_fixed_mask_accuracy("deit-small", s) for s in sparsities
        ],
        "nlp predictor (dynamic)": [
            nlp_dynamic_accuracy(s, "predictor") for s in sparsities
        ],
        "nlp hashing (dynamic)": [
            nlp_dynamic_accuracy(s, "hashing") for s in sparsities
        ],
        "nlp window (dynamic)": [
            nlp_dynamic_accuracy(s, "window") for s in sparsities
        ],
    }
    return {"sparsities": sparsities, "curves": curves}


# ----------------------------------------------------------------------
# Fig. 3 — roofline
# ----------------------------------------------------------------------
def fig3_roofline(**kwargs):
    points = sddmm_roofline_points(**kwargs)
    return {
        "ridge_ops_per_byte": ridge_intensity(),
        "points": [
            {
                "name": p.name,
                "intensity": p.intensity,
                "attainable_gops": p.attainable_gops,
                "bound": p.bound,
            }
            for p in points
        ],
    }


# ----------------------------------------------------------------------
# Fig. 4 — FLOPs and EdgeGPU latency breakdowns
# ----------------------------------------------------------------------
def fig4_breakdown(models=ALL_MODELS):
    """Per-model FLOPs and modelled EdgeGPU latency by component.

    Components follow the paper's grouping: the self-attention (SA) module
    includes QKV generation, the core Q·Kᵀ/S·V matmuls + reshape/splits, and
    the output projection; MLP is the rest.
    """
    platform = edgegpu_platform()
    rows = []
    for name in models:
        cfg = get_config(name)
        attn_core_flops = cfg.paper_attention_flops()
        qkv_proj_flops = 0
        mlp_flops = 0
        qkv_proj_kernels = 0
        mlp_kernels = 0
        for stage in cfg.paper_stages:
            d, n = stage.embed_dim, stage.num_tokens
            hidden = int(d * cfg.mlp_ratio)
            qkv_proj_flops += stage.depth * 2 * n * d * (3 * d + d)
            mlp_flops += stage.depth * 2 * 2 * n * d * hidden
            qkv_proj_kernels += stage.depth * 2
            mlp_kernels += stage.depth * 2

        core_s = attn_core_flops / (platform.attention_gflops * 1e9)
        core_s += cfg.paper_num_layers * 6 * platform.kernel_overhead_s
        qkv_s = qkv_proj_flops / (platform.gemm_gflops * 1e9)
        qkv_s += qkv_proj_kernels * platform.kernel_overhead_s
        mlp_s = mlp_flops / (platform.gemm_gflops * 1e9)
        mlp_s += mlp_kernels * platform.kernel_overhead_s

        total_flops = attn_core_flops + qkv_proj_flops + mlp_flops
        total_s = core_s + qkv_s + mlp_s
        rows.append(
            {
                "model": name,
                "flops_fraction": {
                    "attention_core": attn_core_flops / total_flops,
                    "qkv_proj": qkv_proj_flops / total_flops,
                    "mlp": mlp_flops / total_flops,
                },
                "latency_ms": {
                    "attention_core": core_s * 1e3,
                    "qkv_proj": qkv_s * 1e3,
                    "mlp": mlp_s * 1e3,
                },
                "sa_latency_fraction": (core_s + qkv_s) / total_s,
                "core_fraction_of_sa": core_s / (core_s + qkv_s),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 8 — polarization of attention maps
# ----------------------------------------------------------------------
def fig8_polarization(
    num_tokens=197, num_heads=12, num_layers=12, sparsity=0.9, theta_d=0.25, seed=0
):
    """Metrics of the prune-only / reorder-only / prune+reorder maps."""
    per_layer = []
    for layer in range(num_layers):
        maps = synthetic_vit_attention(
            num_tokens, num_heads=num_heads, seed=seed + 101 * layer
        )
        theta_p = threshold_for_sparsity(maps, sparsity)
        pruned = prune_attention_map(maps, theta_p)
        result = split_and_conquer(maps, theta_p=theta_p, theta_d=theta_d)
        reordered = result.reordered_masks()
        per_layer.append(
            {
                "prune_only": metrics.mask_summary(pruned),
                "prune_and_reorder": metrics.mask_summary(
                    reordered, result.num_global_tokens
                ),
                "num_global_tokens": result.num_global_tokens.tolist(),
            }
        )
    mean_polarization = float(
        np.mean([l["prune_and_reorder"]["polarization"] for l in per_layer])
    )
    return {"layers": per_layer, "mean_polarization": mean_polarization}


# ----------------------------------------------------------------------
# Fig. 15 / Fig. 19(a) — speedups over the five baselines
# ----------------------------------------------------------------------
def fig15_speedups(sparsity=0.9, models=DEFAULT_MODELS, end_to_end=False, seed=0):
    """Normalized speedups of ViTCoD over CPU/EdgeGPU/GPU/SpAtten/Sanger."""
    vitcod = ViTCoDAccelerator()
    per_model = {}
    for name in models:
        wl = model_workload(get_config(name), sparsity=sparsity, seed=seed)
        if end_to_end:
            ours = vitcod.simulate_model(wl)
            theirs = {
                bname: sim.simulate_model(wl)
                for bname, sim in _baseline_simulators()
            }
        else:
            ours = vitcod.simulate_attention(wl)
            theirs = {
                bname: sim.simulate_attention(wl)
                for bname, sim in _baseline_simulators()
            }
        per_model[name] = {
            bname: ours.speedup_over(report) for bname, report in theirs.items()
        }
    mean = {
        bname: float(np.mean([per_model[m][bname] for m in models]))
        for bname in per_model[models[0]]
    }
    return {"sparsity": sparsity, "per_model": per_model, "mean": mean}


# ----------------------------------------------------------------------
# Fig. 17 — accuracy vs attention latency
# ----------------------------------------------------------------------
def fig17_accuracy_latency(models=DEFAULT_MODELS, sparsity=0.9, seed=0):
    """ViTCoD (pruned + AE) vs the unpruned baseline per model."""
    rows = []
    for name in models:
        cfg = get_config(name)
        sp = sparsity if cfg.family == "deit" else min(sparsity, 0.8)
        dense_wl = model_workload(cfg, sparsity=None)
        sparse_wl = model_workload(cfg, sparsity=sp, seed=seed)
        dense_t = ViTCoDAccelerator(use_ae=False).simulate_attention(dense_wl)
        vitcod_t = ViTCoDAccelerator().simulate_attention(sparse_wl)
        rows.append(
            {
                "model": name,
                "sparsity": sp,
                "dense_latency_ms": dense_t.seconds * 1e3,
                "vitcod_latency_ms": vitcod_t.seconds * 1e3,
                "latency_reduction": 1.0 - vitcod_t.seconds / dense_t.seconds,
                "dense_accuracy": BASELINE_ACCURACY[name],
                "vitcod_accuracy": vit_fixed_mask_accuracy(name, sp),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 19 — latency breakdown and energy efficiency
# ----------------------------------------------------------------------
def fig19_breakdown_energy(
    models=DEFAULT_MODELS, sparsities=(0.6, 0.7, 0.8, 0.9), seed=0
):
    """Breakdown (comp/preprocess/data movement) and energy comparison."""
    designs = {
        "vitcod": ViTCoDAccelerator(),
        "vitcod_no_ae": ViTCoDAccelerator(use_ae=False),
        "sanger": SangerSimulator(),
        "spatten": SpAttenSimulator(),
    }
    breakdown = {}
    latency = {name: [] for name in designs}
    energy = {name: [] for name in designs}
    for sparsity in sparsities:
        for model in models:
            wl = model_workload(get_config(model), sparsity=sparsity, seed=seed)
            for name, sim in designs.items():
                report = sim.simulate_attention(wl)
                latency[name].append(report.seconds)
                energy[name].append(report.energy_joules)
                if sparsity == max(sparsities):
                    breakdown.setdefault(name, []).append(report.latency.fractions())
    mean_breakdown = {
        name: {
            key: float(np.mean([b[key] for b in blist]))
            for key in ("compute", "preprocess", "data_movement")
        }
        for name, blist in breakdown.items()
    }
    mean_latency = {k: float(np.mean(v)) for k, v in latency.items()}
    mean_energy = {k: float(np.mean(v)) for k, v in energy.items()}
    return {
        "mean_breakdown_at_max_sparsity": mean_breakdown,
        "mean_latency_s": mean_latency,
        "mean_energy_j": mean_energy,
        "speedup_sc_only_vs_sanger": mean_latency["sanger"]
        / mean_latency["vitcod_no_ae"],
        "speedup_ae_on_top": mean_latency["vitcod_no_ae"]
        / mean_latency["vitcod"],
        "energy_efficiency_vs_sanger": mean_energy["sanger"]
        / mean_energy["vitcod"],
    }


# ----------------------------------------------------------------------
# Fig. 4-style layer-resolved view from the event-driven simulator
# ----------------------------------------------------------------------
def cycle_per_layer_breakdown(
    model="deit-base", sparsity=0.9, seed=0, engine="vectorized"
):
    """Per-layer makespans and utilizations from ONE batched whole-model
    cycle-simulation (``CycleSimResult.per_layer``), Fig. 4-breakdown style.

    The batched engine simulates all layers in a single array pipeline and
    still exposes the layer-resolved schedule, so the layer profile costs
    no more than the headline whole-model number.
    """
    wl = model_workload(get_config(model), sparsity=sparsity, seed=seed)
    total = CycleAccurateSimulator(engine=engine).simulate_attention(wl)
    layers = [
        {
            "layer": i,
            "makespan": r.makespan,
            "sddmm_makespan": r.sddmm_makespan,
            "spmm_makespan": r.spmm_makespan,
            "denser_utilization": r.denser_utilization,
            "sparser_utilization": r.sparser_utilization,
            "dram_utilization": r.dram_utilization,
            "makespan_fraction": (
                r.makespan / total.makespan if total.makespan else 0.0
            ),
        }
        for i, r in enumerate(total.per_layer)
    ]
    return {
        "model": model,
        "sparsity": sparsity,
        "total_makespan": total.makespan,
        "layers": layers,
    }


# ----------------------------------------------------------------------
# Table I — taxonomy
# ----------------------------------------------------------------------
def table1_taxonomy():
    """The qualitative accelerator taxonomy, as data."""
    return [
        {
            "accelerator": "OuterSpace",
            "field": "tensor algebra", "workload": "SpGEMM",
            "dataflow": "outer-product", "pattern": "dynamic-unstructured",
            "codesign": True,
        },
        {
            "accelerator": "ExTensor",
            "field": "tensor algebra", "workload": "SpGEMM",
            "dataflow": "hybrid outer/inner", "pattern": "dynamic-unstructured",
            "codesign": False,
        },
        {
            "accelerator": "SpArch",
            "field": "tensor algebra", "workload": "SpGEMM",
            "dataflow": "condensed outer-product",
            "pattern": "dynamic-unstructured", "codesign": False,
        },
        {
            "accelerator": "Gamma",
            "field": "tensor algebra", "workload": "SpGEMM",
            "dataflow": "gustavson-row", "pattern": "dynamic-unstructured",
            "codesign": False,
        },
        {
            "accelerator": "SpAtten",
            "field": "nlp transformer", "workload": "sparse attention",
            "dataflow": "top-k selection",
            "pattern": "dynamic-coarse-structured", "codesign": True,
        },
        {
            "accelerator": "Sanger",
            "field": "nlp transformer", "workload": "sparse attention",
            "dataflow": "s-stationary", "pattern": "dynamic-fine-structured",
            "codesign": True,
        },
        {
            "accelerator": "ViTCoD",
            "field": "vit", "workload": "sparse attention",
            "dataflow": "k-stationary + output-stationary",
            "pattern": "static-denser-sparser", "codesign": True,
        },
    ]


# ----------------------------------------------------------------------
# §VI-C — pruning vs reordering ablation
# ----------------------------------------------------------------------
def ablation_prune_reorder(
    model="deit-base", sparsities=(0.6, 0.7, 0.8, 0.9), seed=0
):
    """Speedup contributed by pruning and by reordering (paper §VI-C).

    * pruning benefit: (reorder-only, i.e. dense) / (prune+reorder);
    * reordering benefit: (prune-only, unreordered) / (prune+reorder).
    """
    cfg = get_config(model)
    acc = ViTCoDAccelerator(use_ae=False)
    single = ViTCoDAccelerator(use_ae=False, two_pronged=False)
    rows = []
    dense_wl = model_workload(cfg, sparsity=None)
    dense_t = acc.simulate_attention(dense_wl).seconds
    for sparsity in sparsities:
        full_wl = model_workload(cfg, sparsity=sparsity, seed=seed)
        prune_only_wl = model_workload(
            cfg, sparsity=sparsity, seed=seed, reordered=False
        )
        full_t = acc.simulate_attention(full_wl).seconds
        prune_only_t = single.simulate_attention(prune_only_wl).seconds
        rows.append(
            {
                "sparsity": sparsity,
                # pruning benefit = reorder-only (dense) vs full pipeline
                "pruning_benefit": dense_t / full_t,
                # reordering benefit = prune-only vs full pipeline
                "reordering_benefit": prune_only_t / full_t,
            }
        )
    mean_prune = float(np.mean([r["pruning_benefit"] for r in rows]))
    mean_reorder = float(np.mean([r["reordering_benefit"] for r in rows]))
    return {
        "rows": rows,
        "mean_pruning_benefit": mean_prune,
        "mean_reordering_benefit": mean_reorder,
    }


# ----------------------------------------------------------------------
# §VI-B — NLP models discussion
# ----------------------------------------------------------------------
def nlp_attention_model_workload(sparsity=0.9, theta_d=0.25, seed=0):
    """BERT-Base-like attention workload with NLP-style scattered masks."""
    from ..hw.workload import ModelWorkload

    cfg = NLP_BERT_BASE
    stage = cfg.paper_stages[0]
    layers = []
    for i in range(stage.depth):
        maps = synthetic_nlp_attention(
            stage.num_tokens, num_heads=stage.num_heads, seed=seed + i
        )
        result = split_and_conquer(maps, target_sparsity=sparsity, theta_d=theta_d)
        layers.append(attention_workload_from_masks(result, stage.head_dim))
    return ModelWorkload(
        name="bert-base-nlp", attention_layers=layers, linear_layers=()
    )


def nlp_comparison(sparsities=(0.6, 0.9), seed=0):
    """ViTCoD vs Sanger on NLP workloads, charging Sanger its dynamic
    prediction (paper: 1.93×/3.69× at 60 %/90 %), plus the accuracy cost of
    fixed masks on NLP."""
    rows = []
    for sparsity in sparsities:
        wl = nlp_attention_model_workload(sparsity=sparsity, seed=seed)
        ours = ViTCoDAccelerator().simulate_attention(wl)
        sanger = SangerSimulator(dynamic_masks=True).simulate_attention(wl)
        rows.append(
            {
                "sparsity": sparsity,
                "speedup_vs_sanger": ours.speedup_over(sanger),
                "fixed_mask_bleu_drop": BASELINE_ACCURACY["nlp-transformer"]
                - nlp_fixed_mask_accuracy(sparsity),
            }
        )
    return rows
