"""Experiment harness: one runner per paper table/figure."""

from .report import format_table, format_speedup_row
from .surrogate import (
    BASELINE_ACCURACY,
    vit_fixed_mask_accuracy,
    nlp_dynamic_accuracy,
    nlp_fixed_mask_accuracy,
)
from .dse import (
    DesignPoint,
    ParetoFront,
    iter_design_space,
    sweep_design_space,
    pareto_frontier,
    sensitivity,
)
from .serialization import (
    report_to_dict,
    report_from_dict,
    reports_to_csv,
    to_json,
)
from .experiments import (
    DEFAULT_MODELS,
    ALL_MODELS,
    fig1_accuracy_sparsity,
    fig3_roofline,
    fig4_breakdown,
    fig8_polarization,
    fig15_speedups,
    fig17_accuracy_latency,
    fig19_breakdown_energy,
    cycle_per_layer_breakdown,
    table1_taxonomy,
    ablation_prune_reorder,
    nlp_comparison,
    nlp_attention_model_workload,
)

__all__ = [
    "DesignPoint",
    "ParetoFront",
    "iter_design_space",
    "sweep_design_space",
    "pareto_frontier",
    "sensitivity",
    "report_to_dict",
    "report_from_dict",
    "reports_to_csv",
    "to_json",
    "format_table",
    "format_speedup_row",
    "BASELINE_ACCURACY",
    "vit_fixed_mask_accuracy",
    "nlp_dynamic_accuracy",
    "nlp_fixed_mask_accuracy",
    "DEFAULT_MODELS",
    "ALL_MODELS",
    "fig1_accuracy_sparsity",
    "fig3_roofline",
    "fig4_breakdown",
    "fig8_polarization",
    "fig15_speedups",
    "fig17_accuracy_latency",
    "fig19_breakdown_energy",
    "cycle_per_layer_breakdown",
    "table1_taxonomy",
    "ablation_prune_reorder",
    "nlp_comparison",
    "nlp_attention_model_workload",
]
