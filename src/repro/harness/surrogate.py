"""Accuracy-vs-sparsity surrogates calibrated to the paper's reported points.

We cannot finetune DeiT/LeViT on ImageNet offline, so Fig. 1 / Fig. 17's
*accuracy axes* use analytical surrogates anchored to the paper's numbers,
while the *trend* (fixed masks stay accurate to 90-95 % on ViTs; dynamic NLP
pruning degrades past ~50-70 %) is additionally verified for real on our
small trained models (see ``repro.autoencoder.pipeline`` and the fig1
benchmark's measured mode).

Anchors:
* ViTs (paper abstract / §VI-C): ≤1 % drop at 90 % sparsity for DeiT, 80 %
  for LeViT; ≤1.5 % at 90 % for DeiT-Base info-pruning (Fig. 1).
* NLP (Fig. 1, IWSLT En→De BLEU): dynamic methods hold to ~50-70 %, then
  fall steeply; fixed masks on NLP lose ~1.18 % already at 60 % (§VI-B).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "vit_fixed_mask_accuracy",
    "nlp_dynamic_accuracy",
    "nlp_fixed_mask_accuracy",
    "BASELINE_ACCURACY",
]

#: Published dense baselines (ImageNet top-1 for ViTs; BLEU-like scale NLP).
BASELINE_ACCURACY = {
    "deit-tiny": 72.2,
    "deit-small": 79.9,
    "deit-base": 81.8,
    "levit-128": 78.6,
    "levit-192": 80.0,
    "levit-256": 81.6,
    "nlp-transformer": 34.5,  # BLEU, IWSLT En→De
}


def _knee_curve(sparsity, knee, gentle, steep):
    """Flat-ish drop before ``knee``, quadratic blow-up after."""
    sparsity = np.asarray(sparsity, dtype=np.float64)
    below = gentle * sparsity
    above = gentle * sparsity + steep * (np.maximum(sparsity - knee, 0.0) ** 2)
    return np.where(sparsity <= knee, below, above)


def vit_fixed_mask_accuracy(model, sparsity):
    """Accuracy of a ViT under fixed-mask pruning + finetuning (Fig. 1/17).

    DeiT models hold 90 % sparsity within ~1 %; LeViT (already lean) holds
    80 %; drops accelerate beyond the knee.
    """
    if model not in BASELINE_ACCURACY:
        raise KeyError(f"unknown model {model!r}")
    base = BASELINE_ACCURACY[model]
    knee = 0.90 if model.startswith("deit") else 0.80
    drop = _knee_curve(sparsity, knee=knee, gentle=1.0, steep=160.0)
    return base - drop


def nlp_dynamic_accuracy(sparsity, method="predictor"):
    """BLEU of NLP Transformers under *dynamic* sparse attention (Fig. 1).

    Representative of the collected curves (BigBird, Reformer, Routing,
    Longformer…): roughly flat to ~50 %, clearly degrading past 70 %.
    """
    base = BASELINE_ACCURACY["nlp-transformer"]
    knees = {"predictor": 0.65, "hashing": 0.55, "window": 0.50}
    if method not in knees:
        raise KeyError(f"unknown method {method!r}; choose from {sorted(knees)}")
    drop = _knee_curve(sparsity, knee=knees[method], gentle=1.5, steep=80.0)
    return base - drop


def nlp_fixed_mask_accuracy(sparsity):
    """BLEU-scale accuracy of *fixed* masks on NLP (§VI-B): loses ~1.18
    points already at 60 % — the reason ViTCoD targets ViTs."""
    base = BASELINE_ACCURACY["nlp-transformer"]
    drop = _knee_curve(sparsity, knee=0.40, gentle=1.0, steep=12.0)
    return base - drop
