"""Analytical models of general-purpose platforms (CPU / EdgeGPU / GPU).

These platforms execute the *dense* attention workload: the unstructured
90 % sparsity of ViTCoD's masks gives no practical speedup on SIMD/SIMT
hardware (gather-heavy SDDMM kernels at n ≈ 200 are slower than cuBLAS
dense), which is exactly the gap the paper's Fig. 15 quantifies.

Latency = FLOPs / effective-throughput + per-kernel overhead × kernel count.
Effective throughputs and overheads live in
:mod:`repro.baselines.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.trace import EnergyBreakdown, LatencyBreakdown, SimReport
from ..hw.workload import ModelWorkload
from .calibration import PLATFORM_CALIBRATION

__all__ = ["GeneralPlatform", "cpu_platform", "edgegpu_platform", "gpu_platform"]

#: Reports from analytical platforms use a 1 GHz notional clock so that
#: "cycles" equal nanoseconds.
_NOTIONAL_HZ = 1e9

#: Kernels launched per attention layer: QKᵀ, softmax, SV, plus the
#: reshape/split/concat ops the paper's Fig. 4 profile attributes up to 53 %
#: of self-attention latency to.
_ATTENTION_KERNELS_PER_LAYER = 6


@dataclass(frozen=True)
class GeneralPlatform:
    """Roofline-with-overhead model of one general-purpose platform."""

    name: str
    attention_gflops: float
    gemm_gflops: float
    kernel_overhead_s: float
    pj_per_flop: float

    def simulate_attention(self, model: ModelWorkload) -> SimReport:
        """Core attention (dense S=QKᵀ and S·V) latency and energy."""
        flops = 0
        kernels = 0
        for layer in model.attention_layers:
            flops += 2 * (layer.dense_sddmm_macs + layer.dense_spmm_macs)
            kernels += _ATTENTION_KERNELS_PER_LAYER
        seconds = flops / (self.attention_gflops * 1e9)
        overhead = kernels * self.kernel_overhead_s
        return self._report(model, "attention", seconds, overhead, flops)

    def simulate_model(self, model: ModelWorkload) -> SimReport:
        """End-to-end latency: attention plus all dense GEMMs."""
        attn = self.simulate_attention(model)
        flops = 2 * model.linear_macs
        seconds = flops / (self.gemm_gflops * 1e9)
        overhead = len(model.linear_layers) * self.kernel_overhead_s
        linear = self._report(model, "linear", seconds, overhead, flops)
        merged = attn.merged(linear, workload=f"{model.name}:end2end")
        return merged

    def _report(self, model, phase, seconds, overhead_s, flops):
        latency = LatencyBreakdown(
            compute=seconds * _NOTIONAL_HZ,
            preprocess=overhead_s * _NOTIONAL_HZ,
        )
        energy = EnergyBreakdown(mac=flops * self.pj_per_flop)
        return SimReport(
            platform=self.name,
            workload=f"{model.name}:{phase}",
            latency=latency,
            energy=energy,
            frequency_hz=_NOTIONAL_HZ,
            details={"flops": flops},
        )


def _make(name):
    return GeneralPlatform(name=name, **PLATFORM_CALIBRATION[name])


def cpu_platform():
    """Intel Xeon Gold 6230R-class server CPU."""
    return _make("cpu")


def edgegpu_platform():
    """Nvidia Jetson Xavier NX-class edge GPU."""
    return _make("edgegpu")


def gpu_platform():
    """Nvidia RTX 2080Ti-class desktop GPU."""
    return _make("gpu")
