"""Baseline platforms and accelerators the paper compares against."""

from .calibration import (
    PLATFORM_CALIBRATION,
    SANGER_CALIBRATION,
    SPATTEN_CALIBRATION,
)
from .platforms import (
    GeneralPlatform,
    cpu_platform,
    edgegpu_platform,
    gpu_platform,
)
from .sanger import SangerSimulator
from .spatten import SpAttenSimulator, cascade_keep_ratios

__all__ = [
    "PLATFORM_CALIBRATION",
    "SANGER_CALIBRATION",
    "SPATTEN_CALIBRATION",
    "GeneralPlatform",
    "cpu_platform",
    "edgegpu_platform",
    "gpu_platform",
    "SangerSimulator",
    "SpAttenSimulator",
    "cascade_keep_ratios",
]
