"""Behavioral simulator of SpAtten (Wang et al., HPCA 2021) running ViTs.

SpAtten accelerates attention with **cascade token and head pruning**: a
top-k ranking engine progressively removes unimportant tokens layer by
layer, and pruned tokens never participate in later layers.  The remaining
attention is computed densely.  This is coarse-grained: to reach an overall
attention sparsity of s, the final kept-token ratio must fall to
``sqrt(1 - s)``, and early layers still run close to dense — the reason the
paper calls SpAtten's achievable sparsity "low" for ViTs (Table I).

Head pruning contributes little on ViTs (heads are uniformly informative in
DeiT-style models) and is disabled by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt, log2

from ..hw.dataflow import dense_gemm_cycles, softmax_cycles
from ..hw.params import VITCOD_DEFAULT, HardwareConfig
from ..hw.trace import EnergyBreakdown, LatencyBreakdown, SimReport
from ..hw.workload import AttentionWorkload, ModelWorkload
from ..sim.engine import ModelSimulatorBase
from .calibration import SPATTEN_CALIBRATION

__all__ = ["SpAttenSimulator", "cascade_keep_ratios"]


def cascade_keep_ratios(num_layers, target_sparsity):
    """Per-layer kept-token ratios of the pruning cascade.

    Linearly interpolates from 1.0 down to ``sqrt(1 - s)`` so the *average*
    attention workload reduction over the network approaches the target.
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError(f"target_sparsity must be in [0, 1), got {target_sparsity}")
    final = sqrt(1.0 - target_sparsity)
    if num_layers == 1:
        return [final]
    return [
        1.0 - (1.0 - final) * layer / (num_layers - 1)
        for layer in range(num_layers)
    ]


@dataclass
class SpAttenSimulator(ModelSimulatorBase):
    """SpAtten at a ViTCoD-comparable hardware configuration."""

    config: HardwareConfig = None
    pipeline_utilization: float = SPATTEN_CALIBRATION["pipeline_utilization"]
    topk_lanes: int = SPATTEN_CALIBRATION["topk_lanes"]
    name: str = "SpAtten"

    def __post_init__(self):
        if self.config is None:
            self.config = VITCOD_DEFAULT

    # ------------------------------------------------------------------
    def simulate_attention_layer(self, layer: AttentionWorkload,
                                 keep_ratio=1.0) -> SimReport:
        cfg = self.config
        b = cfg.bytes_per_element
        bpc = cfg.bytes_per_cycle
        n = max(2, int(round(layer.num_tokens * keep_ratio)))
        dk, H = layer.head_dim, layer.num_heads
        d = layer.embed_dim

        latency = LatencyBreakdown()
        energy = EnergyBreakdown()

        # Dense attention on the kept tokens.
        attn_macs = 2 * n * n * dk * H  # QKᵀ and SV
        compute = dense_gemm_cycles(
            n * H, dk, 2 * n, cfg.total_macs,
            utilization=self.pipeline_utilization,
        )

        # Top-k ranking: accumulate per-token importance from the attention
        # probabilities, then a quick-select over n tokens per head.
        topk_ops = H * n * max(1.0, log2(max(n, 2)))
        topk_cycles = ceil(topk_ops / self.topk_lanes)
        latency.preprocess += topk_cycles
        energy.other += topk_ops * cfg.energy.comparator_pj

        # Memory: dense Q/K/V streams for kept tokens plus V' writeback.
        stream = 4 * n * d * b
        memory = stream / bpc
        phase = max(compute, memory)
        latency.compute += compute
        latency.data_movement += phase - compute

        sm = softmax_cycles(n * n * H, n * H, lanes=cfg.softmax_lanes)
        latency.compute += max(0, sm - phase)
        energy.other += n * n * H * cfg.energy.softmax_op_pj

        e = cfg.energy
        energy.mac += attn_macs * e.mac_pj
        energy.dram += stream * e.dram_byte_pj
        energy.sram += (2 * stream + attn_macs * b / 4) * e.sram_byte_pj
        energy.static += latency.total * e.static_pj_per_cycle

        return SimReport(
            platform=self.name,
            workload=f"attention(kept={n}, H={H}, dk={dk})",
            latency=latency,
            energy=energy,
            frequency_hz=cfg.frequency_hz,
            details={"kept_tokens": n, "dram_bytes": stream,
                     "mac_count": attn_macs},
        )

    # ------------------------------------------------------------------
    # Whole models: driven by repro.sim's shared accumulation base.
    # ------------------------------------------------------------------
    def _keep_ratios(self, model: ModelWorkload):
        """The model's pruning cascade (single source for simulation and
        the reported ``mean_keep_ratio``)."""
        return cascade_keep_ratios(len(model.attention_layers),
                                   model.mean_sparsity)

    def _layer_kwargs(self, model: ModelWorkload):
        """The pruning cascade: layer ``i`` runs at its cascade keep ratio."""
        return ({"keep_ratio": ratio} for ratio in self._keep_ratios(model))

    def _dense_simulator(self):
        # Dense layers run unpruned: in the paper's iso-accuracy ViT setting
        # SpAtten's aggressive token removal cannot extend into the MLPs
        # without exceeding the accuracy budget (its attention sparsity is
        # already the coarse-grained bottleneck — Table I), so the cascade's
        # savings are confined to the attention phase.
        from ..hw.accelerator import ViTCoDAccelerator

        return ViTCoDAccelerator(config=self.config, use_ae=False,
                                 name=self.name)

    def simulate_model(self, model: ModelWorkload) -> SimReport:
        report = super().simulate_model(model)
        ratios = self._keep_ratios(model)
        report.details["mean_keep_ratio"] = sum(ratios) / len(ratios)
        return report
