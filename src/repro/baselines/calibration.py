"""Calibration constants for all baseline platform models, in one place.

Provenance policy (DESIGN.md §6): we cannot measure the authors' testbed
(Xeon 6230R, Jetson Xavier NX, RTX 2080Ti), so each general-purpose platform
is modelled as *effective* throughput on attention-shaped kernels plus a
per-kernel launch overhead.  The constants below are chosen so the headline
ratios land near the paper's (Fig. 15); they are deliberately the only free
parameters in the baseline models — everything else is computed from the
workloads.

Effective throughputs are far below datasheet peaks because batch-1 ViT
attention consists of many small (≤197×197×64) matmuls interleaved with
reshape/split ops; the paper's Fig. 4 latency profile reflects the same
effect (attention is >50% of latency despite being <40% of FLOPs).
"""

from __future__ import annotations

__all__ = ["PLATFORM_CALIBRATION", "SANGER_CALIBRATION", "SPATTEN_CALIBRATION"]

PLATFORM_CALIBRATION = {
    # name: (attention GFLOP/s, dense-GEMM GFLOP/s, per-kernel overhead s,
    #        energy pJ/FLOP)
    "cpu": dict(attention_gflops=20.5, gemm_gflops=25.0,
                kernel_overhead_s=8e-6, pj_per_flop=60.0),
    "edgegpu": dict(attention_gflops=44.5, gemm_gflops=280.0,
                    kernel_overhead_s=30e-6, pj_per_flop=12.0),
    "gpu": dict(attention_gflops=66.0, gemm_gflops=4200.0,
                kernel_overhead_s=12e-6, pj_per_flop=25.0),
}

SANGER_CALIBRATION = dict(
    # Throughput gain of the low-precision (4-bit) mask-prediction pass over
    # the 16-bit datapath.  Sanger's prediction is a full dense Q·Kᵀ; on the
    # rigid array the effective gain is below the ideal 4x.
    low_precision_speedup=1.0,
    # Width of a packed PE row segment in the reconfigurable array.
    pack_width=44,
    # Partial-sum spill: S tiles round-trip through the global buffer
    # because the S-stationary mapping holds n² partial sums.
    spill_s_tiles=True,
)

SPATTEN_CALIBRATION = dict(
    # Pipeline utilization of the progressive cascade (fetch → rank → prune
    # → attend stages share the datapath).
    pipeline_utilization=0.55,
    # Comparator lanes of the top-k ranking engine.
    topk_lanes=16,
)
