"""Behavioral simulator of Sanger (Lu et al., MICRO 2021) running ViTs.

Sanger is the strongest prior co-design the paper compares against.  Its
pipeline, reproduced here at the same modelling altitude as our ViTCoD
simulator:

1. **Mask prediction** (preprocess): a full dense Q·Kᵀ in low precision to
   estimate attention scores, followed by threshold + pack-and-split of the
   resulting dynamic mask.  This is the price of supporting NLP's
   input-dependent sparsity — on ViTs with fixed masks it is pure overhead.
2. **S-stationary SDDMM**: scores map spatially onto the reconfigurable PE
   array after packing sparse rows into dense segments; packing efficiency
   is *computed from the actual mask* (diagonal ViT patterns pack poorly
   because rows hold few non-zeros relative to the segment width).
3. **SpMM** at the same packing efficiency.

Q/K/V are fully reused once on chip (the S-stationary advantage), but the
n²-sized partial-sum surface spills tiles through the global buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..hw.dataflow import s_stationary_sddmm_cycles, softmax_cycles
from ..hw.params import VITCOD_DEFAULT, HardwareConfig
from ..hw.trace import EnergyBreakdown, LatencyBreakdown, SimReport
from ..hw.workload import AttentionWorkload
from ..sim.engine import ModelSimulatorBase
from .calibration import SANGER_CALIBRATION

__all__ = ["SangerSimulator"]


@dataclass
class SangerSimulator(ModelSimulatorBase):
    """Sanger at a hardware configuration comparable to ViTCoD (§VI-A:
    "we implement and simulate both of them on ViTs with similar hardware
    configurations and areas for fair comparisons")."""

    config: HardwareConfig = None
    low_precision_speedup: float = SANGER_CALIBRATION["low_precision_speedup"]
    pack_width: int = SANGER_CALIBRATION["pack_width"]
    spill_s_tiles: bool = SANGER_CALIBRATION["spill_s_tiles"]
    #: dynamic_masks=False models an (hypothetical) Sanger given ViTCoD's
    #: fixed masks for free — used by the §VI-B NLP normalisation.
    dynamic_masks: bool = True
    name: str = "Sanger"

    def __post_init__(self):
        if self.config is None:
            self.config = VITCOD_DEFAULT

    # ------------------------------------------------------------------
    def pack_efficiency(self, layer: AttentionWorkload):
        """Slot utilization after packing rows into ``pack_width`` segments.

        Rows with r non-zeros occupy ``ceil(r / W) * W`` PE slots."""
        stats = layer.head_stats()
        head_nnz = stats.denser_nnz + stats.sparser_nnz
        r = np.maximum(head_nnz / stats.tokens, 1e-9)
        slot_rows = np.ceil(r / self.pack_width) * self.pack_width
        total_slots = int((slot_rows * stats.tokens).sum())
        if total_slots == 0:
            return 1.0
        return max(min(int(head_nnz.sum()) / total_slots, 1.0), 0.05)

    # ------------------------------------------------------------------
    def simulate_attention_layer(self, layer: AttentionWorkload) -> SimReport:
        cfg = self.config
        b = cfg.bytes_per_element
        bpc = cfg.bytes_per_cycle
        n, d = layer.num_tokens, layer.embed_dim
        dk, H = layer.head_dim, layer.num_heads

        latency = LatencyBreakdown()
        energy = EnergyBreakdown()
        macs = 0
        dram = 0

        # ---- mask prediction + pack-and-split (dynamic masks only) ----
        if self.dynamic_masks:
            pred_macs = n * n * dk * H
            pred_cycles = ceil(
                pred_macs / (cfg.total_macs * self.low_precision_speedup)
            )
            pack_cycles = ceil(n * n * H / (cfg.total_macs / 2))
            latency.preprocess += pred_cycles + pack_cycles
            macs += pred_macs // 4  # 4-bit MACs charged at quarter energy
            # Low-precision Q/K for the prediction pass, plus the dense
            # quantised score surface written out for the packer and read
            # back (the dynamic-mask metadata round-trip ViTCoD's fixed
            # masks avoid — Table I "Off-chip traffic: High").
            dram += 2 * n * d * b // 4
            dram += 2 * (n * n * H) // 2  # 4-bit scores, write + read

        # ---- operand streams (full reuse: loaded once) ------------------
        stream = 3 * n * d * b + n * d * b  # Q, K, V in; V' out
        if self.spill_s_tiles:
            resident = cfg.output_buffer_bytes
            s_bytes = layer.total_nnz * b
            spill = max(0, s_bytes - resident)
            stream += 2 * spill  # spill out + reload for SpMM
        dram += stream

        # ---- SDDMM (S-stationary on packed rows) ------------------------
        eff = self.pack_efficiency(layer)
        sddmm_products = layer.total_nnz
        sddmm_compute = s_stationary_sddmm_cycles(
            sddmm_products, dk, cfg.total_macs, pack_efficiency=eff
        )
        macs += sddmm_products * dk

        # ---- SpMM --------------------------------------------------------
        spmm_compute = s_stationary_sddmm_cycles(
            layer.total_nnz, dk, cfg.total_macs, pack_efficiency=eff
        )
        macs += layer.total_nnz * dk

        compute = sddmm_compute + spmm_compute
        memory = stream / bpc
        phase = max(compute, memory)
        latency.compute += compute
        latency.data_movement += phase - compute

        sm = softmax_cycles(layer.total_nnz, n * H, lanes=cfg.softmax_lanes)
        latency.compute += max(0, sm - phase)
        energy.other += layer.total_nnz * cfg.energy.softmax_op_pj

        e = cfg.energy
        # Sanger's PEs sit in a reconfigurable pack-and-split fabric; the
        # dynamic routing costs extra energy per MAC relative to ViTCoD's
        # fixed-function MAC lines.
        reconfig_factor = 1.5
        energy.mac += macs * e.mac_pj * reconfig_factor
        energy.dram += dram * e.dram_byte_pj
        # S-stationary re-fetches both operands from the buffers every wave
        # (partial sums stay put, operands do not), so SRAM traffic scales
        # with the full operand footprint per product.
        energy.sram += (2 * dram + macs * b / 2) * e.sram_byte_pj
        energy.static += latency.total * e.static_pj_per_cycle

        return SimReport(
            platform=self.name,
            workload=f"attention(n={n}, H={H}, dk={dk})",
            latency=latency,
            energy=energy,
            frequency_hz=cfg.frequency_hz,
            details={"pack_efficiency": eff, "dram_bytes": dram, "mac_count": macs},
        )

    # ------------------------------------------------------------------
    # Whole models: driven by repro.sim's shared accumulation base.
    # ------------------------------------------------------------------
    def _dense_simulator(self):
        # Dense layers run on the same MAC array reconfigured for GEMM —
        # identical to ViTCoD's dense path (no AE writeback compression).
        from ..hw.accelerator import ViTCoDAccelerator

        return ViTCoDAccelerator(config=self.config, use_ae=False,
                                 name=self.name)
