"""ViTCoD reproduction: sparse-ViT algorithm/accelerator co-design.

Reproduces *ViTCoD: Vision Transformer Acceleration via Dedicated Algorithm
and Accelerator Co-Design* (HPCA 2023) end to end:

* :mod:`repro.nn` — numpy autograd + NN substrate (the PyTorch substitute);
* :mod:`repro.models` — DeiT / LeViT / Strided Transformer zoo;
* :mod:`repro.sparsity` — the split-and-conquer algorithm (Algorithm 1);
* :mod:`repro.autoencoder` — the learnable Q/K auto-encoder and the unified
  ViTCoD pipeline (Fig. 10);
* :mod:`repro.formats` — CSC/CSR/COO sparse formats and tiling;
* :mod:`repro.sim` — the unified simulation-engine layer (protocols plus
  the shared whole-model accumulation every simulator implements);
* :mod:`repro.hw` — the two-pronged ViTCoD accelerator simulator (§V);
* :mod:`repro.baselines` — CPU/EdgeGPU/GPU platforms, SpAtten, Sanger;
* :mod:`repro.compiler` — the algorithm-hardware interface (Fig. 14) plus a
  functional executor for numerical validation;
* :mod:`repro.roofline` — the Fig. 3 roofline model;
* :mod:`repro.harness` — one experiment runner per paper table/figure.

Quickstart::

    from repro.models import pretrained, get_config
    from repro.autoencoder import run_vitcod_pipeline
    from repro.hw import ViTCoDAccelerator, model_workload

    result = run_vitcod_pipeline(pretrained("deit-tiny"), target_sparsity=0.9)
    workload = model_workload(get_config("deit-base"), sparsity=0.9)
    report = ViTCoDAccelerator().simulate_attention(workload)
"""

__version__ = "1.0.0"

from . import nn
from . import models
from . import sparsity
from . import autoencoder
from . import formats
from . import sim
from . import hw
from . import baselines
from . import compiler
from . import roofline
from . import obs
from . import harness
from . import viz

__all__ = [
    "nn",
    "models",
    "sparsity",
    "autoencoder",
    "formats",
    "sim",
    "hw",
    "baselines",
    "compiler",
    "roofline",
    "obs",
    "harness",
    "viz",
    "__version__",
]
