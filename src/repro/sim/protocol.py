"""Structural protocols of the unified simulation surface.

See the package docstring (:mod:`repro.sim`) for the contract.  These are
:func:`typing.runtime_checkable` so tests (and duck-typing callers) can
assert conformance with ``isinstance``; note that runtime checks only
verify member *presence*, not signatures.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["Simulator", "ModelSimulator"]


@runtime_checkable
class Simulator(Protocol):
    """Anything that can simulate a model's attention workload.

    ``simulate_attention`` accepts a :class:`~repro.hw.workload.ModelWorkload`
    and returns a result whose fields are additive across layers (a
    :class:`~repro.hw.trace.SimReport` for the analytical simulators, a
    :class:`~repro.hw.cycle_sim.CycleSimResult` for the event-driven one)
    and which supports pairwise ``merged``.
    """

    name: str

    def simulate_attention(self, model: Any) -> Any:
        ...


@runtime_checkable
class ModelSimulator(Simulator, Protocol):
    """A :class:`Simulator` that also runs the dense layers end to end."""

    def simulate_model(self, model: Any) -> Any:
        ...
