"""Shared whole-model accumulation: one merge fold instead of four.

Before this layer existed, ``ViTCoDAccelerator``, ``SangerSimulator``,
``SpAttenSimulator`` and ``CycleAccurateSimulator`` each hand-rolled the
same ``report = None; for layer: report = report.merged(r)`` loop (and each
crashed with ``AttributeError: 'NoneType' object has no attribute
'workload'`` on models without attention layers).  The fold lives here
once, as :func:`merge_results`, and the two base classes drive it for any
per-layer simulator.
"""

from __future__ import annotations

__all__ = ["merge_results", "AttentionSimulatorBase", "ModelSimulatorBase"]


def merge_results(results, empty_message="no attention layers to simulate"):
    """Left-fold per-layer results via their pairwise ``merged`` method.

    Works for any additive result type (:class:`~repro.hw.trace.SimReport`,
    :class:`~repro.hw.cycle_sim.CycleSimResult`, ...).  Raises a clear
    :class:`ValueError` on an empty sequence — every simulator shares this
    behaviour instead of crashing on ``None``.
    """
    results = list(results)
    if not results:
        raise ValueError(empty_message)
    total = results[0]
    for result in results[1:]:
        total = total.merged(result)
    return total


class AttentionSimulatorBase:
    """Whole-model attention driver over a per-layer simulator.

    Subclasses implement ``simulate_attention_layer(layer, **kwargs)`` and
    may override the hooks:

    * :meth:`_layer_kwargs` — per-layer keyword arguments (e.g. SpAtten's
      cascade keep ratios);
    * :meth:`_attention_details` — replacement ``details`` dict for the
      merged report (``None`` keeps the merged layer details).
    """

    name: str = "simulator"

    def simulate_attention_layer(self, layer, **kwargs):
        raise NotImplementedError

    # -------------------------------------------------- subclass hooks --
    def _layer_kwargs(self, model):
        """One kwargs dict per attention layer, in layer order."""
        return ({} for _ in model.attention_layers)

    def _attention_details(self, model):
        """Replacement ``details`` for the merged attention report."""
        return None

    # ------------------------------------------------------------ driver --
    def simulate_attention(self, model):
        """Simulate every attention layer of ``model`` and merge."""
        layers = model.attention_layers
        if not layers:
            raise ValueError(
                f"{self.name}: model {model.name!r} has no attention layers"
            )
        report = merge_results(
            self.simulate_attention_layer(layer, **kwargs)
            for layer, kwargs in zip(layers, self._layer_kwargs(model))
        )
        report.workload = f"{model.name}:attention"
        details = self._attention_details(model)
        if details is not None:
            report.details = details
        return report


class ModelSimulatorBase(AttentionSimulatorBase):
    """Adds the dense-layer (QKV / projection / MLP) walk for end-to-end
    simulation.  The dense path runs on :meth:`_dense_simulator` (``self``
    for ViTCoD; a reconfigured ViTCoD array for the attention-only
    baselines), with :meth:`_gemm_kwargs` selecting per-GEMM options such
    as AE output compression."""

    # -------------------------------------------------- subclass hooks --
    def _dense_simulator(self):
        """Simulator whose ``simulate_gemm`` runs the dense layers."""
        return self

    def _gemm_kwargs(self, gemm):
        """Keyword arguments for one dense GEMM."""
        return {}

    def _model_details(self, model):
        """Replacement ``details`` for the end-to-end report."""
        return None

    # ------------------------------------------------------------ driver --
    def simulate_model(self, model):
        """End-to-end simulation: attention plus all dense layers."""
        report = self.simulate_attention(model)
        dense = self._dense_simulator()
        for gemm in model.linear_layers:
            report = report.merged(
                dense.simulate_gemm(gemm, **self._gemm_kwargs(gemm))
            )
        report.workload = f"{model.name}:end2end"
        report.platform = self.name
        details = self._model_details(model)
        if details is not None:
            report.details = details
        return report
