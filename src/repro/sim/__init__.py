"""Unified simulation-engine layer shared by every simulator in the repo.

Every hardware model — :class:`~repro.hw.accelerator.ViTCoDAccelerator`,
:class:`~repro.baselines.sanger.SangerSimulator`,
:class:`~repro.baselines.spatten.SpAttenSimulator`,
:class:`~repro.hw.cycle_sim.CycleAccurateSimulator`, and the analytical
CPU/GPU platforms — exposes the same whole-model surface, captured here as
two structural protocols:

* :class:`Simulator` — ``simulate_attention(model) -> result`` plus a
  ``name``; the result carries additive totals and a ``merged`` method;
* :class:`ModelSimulator` — adds ``simulate_model(model)`` (attention plus
  the dense QKV/projection/MLP GEMMs).

The protocols are *structural* (:func:`typing.runtime_checkable`): anything
with the right methods conforms, no inheritance required.  The experiment
harness, DSE sweeps and benchmark suite program against this surface only,
so a new simulator plugs into every figure runner by implementing it.

Two base classes provide the shared accumulation machinery that used to be
re-implemented (four times) as per-simulator merge loops:

* :class:`AttentionSimulatorBase` — drives ``simulate_attention_layer``
  over ``model.attention_layers`` and folds the per-layer reports with
  :func:`merge_results` (raising a clear :class:`ValueError` on empty
  models instead of crashing);
* :class:`ModelSimulatorBase` — adds the GEMM walk for
  ``simulate_model``, with hooks for which simulator runs the dense path
  and which outputs are AE-compressed.

Subclasses override narrow hooks (per-layer kwargs, detail dicts, the
dense-path simulator) rather than rewriting the loops; fast batched
implementations (the cycle simulator's one-scan whole-model pipeline, the
analytical model's array geometry) override the driver method itself and
are tested bit-for-bit against the base class's fold.

Design-space exploration plugs into the same layer through the
:class:`~repro.sim.evaluator.Evaluator` protocol (:mod:`repro.sim.evaluator`):
a strategy mapping ``(workload, config, accel_kwargs)`` to the objective
metrics a DSE point is built from, with analytical, cycle-accurate and
hybrid (analytical-prune, cycle-rescore) built-ins.
"""

from .protocol import ModelSimulator, Simulator
from .engine import AttentionSimulatorBase, ModelSimulatorBase, merge_results
from .evaluator import (
    AnalyticalEvaluator,
    BatchedAnalyticalEvaluator,
    BatchedCycleSimEvaluator,
    BatchEvaluator,
    CycleSimEvaluator,
    EvalMetrics,
    Evaluator,
    HybridEvaluator,
    UnsupportedParameterError,
    dse_parameter_names,
    evaluator_from_spec,
    evaluator_spec,
    resolve_evaluator,
)

__all__ = [
    "Simulator",
    "ModelSimulator",
    "AttentionSimulatorBase",
    "ModelSimulatorBase",
    "merge_results",
    "Evaluator",
    "BatchEvaluator",
    "EvalMetrics",
    "UnsupportedParameterError",
    "AnalyticalEvaluator",
    "BatchedAnalyticalEvaluator",
    "CycleSimEvaluator",
    "BatchedCycleSimEvaluator",
    "HybridEvaluator",
    "dse_parameter_names",
    "resolve_evaluator",
    "evaluator_spec",
    "evaluator_from_spec",
]
