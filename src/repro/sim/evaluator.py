"""Pluggable design-point evaluators for design-space exploration.

A DSE sweep walks a grid of hardware configurations and scores each one on
a workload.  *How* a point is scored is a strategy, captured by the
:class:`Evaluator` protocol: a callable mapping ``(workload, config,
accel_kwargs)`` to :class:`EvalMetrics` (the ``seconds`` / ``energy_joules``
pair a :class:`~repro.harness.dse.DesignPoint` is built from).  The DSE
engine (:mod:`repro.harness.dse`) is written against this surface only, so
any simulator — analytical, event-driven, or a future external one — can
stream through :func:`~repro.harness.dse.iter_design_space` unchanged.

Evaluators may additionally implement the :class:`BatchEvaluator`
protocol: ``evaluate_batch(workload, base_config, names, value_rows)``
scores a whole chunk of grid points in one call, returning one
:class:`EvalMetrics` per row.  The DSE engine detects the capability and
hands each bounded chunk to ``evaluate_batch`` instead of looping
``__call__`` per point — with the contract that the batch results are
**bit-for-bit** what the per-point calls would produce, so batching is an
execution detail, never a semantics change.  A batch call that raises
makes the engine fall back to per-point scoring of that chunk, which
re-raises structural errors and attributes per-point failures exactly as
an unbatched sweep would.

Three built-in strategies cover the repo's simulators:

* :class:`AnalyticalEvaluator` — the closed-form
  :class:`~repro.hw.accelerator.ViTCoDAccelerator` phase model (the
  default; behaviour-identical to the pre-evaluator sweeps).  Its
  :class:`BatchedAnalyticalEvaluator` subclass — what ``"analytical"``
  resolves to — adds the batch axis by broadcasting the accelerator's
  array-geometry walk over a leading design-point axis
  (:meth:`~repro.hw.accelerator.ViTCoDAccelerator.simulate_attention_grid`):
  swept knobs become numpy columns instead of per-point
  :class:`~repro.hw.params.HardwareConfig` clones, bit-for-bit equal to
  the per-point path;
* :class:`CycleSimEvaluator` — the event-driven
  :class:`~repro.hw.cycle_sim.CycleAccurateSimulator`, the repo's ground
  truth: latency is the simulated makespan, energy is charged from the
  workload's MAC/softmax counts plus the simulator's observed DRAM
  occupancy with the same :class:`~repro.hw.params.EnergyTable` constants
  the analytical model uses.  Its :class:`BatchedCycleSimEvaluator`
  subclass — what ``"cycle"`` resolves to — adds the batch axis by
  broadcasting the simulator's (layer × job) max-plus scans over a
  leading design-point axis
  (:meth:`~repro.hw.cycle_sim.CycleAccurateSimulator.simulate_attention_grid`),
  bit-for-bit equal to the per-point path;
* :class:`HybridEvaluator` — a two-phase strategy the DSE engine
  special-cases: prune the grid with the cheap analytical model, then
  re-score only the surviving frontier cycle-accurately.  Called directly
  on one point it scores with its fine evaluator.

Evaluator instances cross process boundaries in parallel sweeps, so they
must be picklable (the built-ins are plain objects with scalar state).
They also cross *host* boundaries in sharded sweeps (:mod:`repro.dist`),
as JSON: :func:`evaluator_spec` renders a built-in evaluator to a plain
dict a result-store manifest can persist, and :func:`evaluator_from_spec`
reconstructs an equivalent instance on any machine — the round-trip is
exact for the built-ins, so every shard of a study scores points with the
same strategy the merge step assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, List, Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "EvalMetrics",
    "Evaluator",
    "BatchEvaluator",
    "UnsupportedParameterError",
    "AnalyticalEvaluator",
    "BatchedAnalyticalEvaluator",
    "CycleSimEvaluator",
    "BatchedCycleSimEvaluator",
    "HybridEvaluator",
    "apply_dse_parameter",
    "dse_grid_columns",
    "dse_parameter_names",
    "resolve_evaluator",
    "evaluator_spec",
    "evaluator_from_spec",
]


class UnsupportedParameterError(ValueError):
    """A swept parameter the evaluator cannot honour (a caller bug).

    The DSE engine re-raises this instead of warn-and-dropping the point:
    a grid that sweeps a knob the chosen evaluator does not model is a
    structurally invalid sweep, not a transient per-point failure.
    """


@dataclass(frozen=True)
class EvalMetrics:
    """The objective values one evaluator assigns to one design point."""

    seconds: float
    energy_joules: float

    def to_dict(self) -> dict:
        """JSON-safe record (floats round-trip bit-exactly through JSON)."""
        return {"seconds": self.seconds, "energy_joules": self.energy_joules}

    @classmethod
    def from_dict(cls, data: dict) -> "EvalMetrics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seconds=float(data["seconds"]),
            energy_joules=float(data["energy_joules"]),
        )


@runtime_checkable
class Evaluator(Protocol):
    """Strategy scoring one ``(workload, config, accel_kwargs)`` triple.

    ``accel_kwargs`` are the non-:class:`~repro.hw.params.HardwareConfig`
    knobs routed by the DSE parameter table (``use_ae``, ``ae_compression``,
    ``q_forwarding_hit_rate``); an evaluator that cannot honour a knob must
    raise rather than silently ignore it.
    """

    name: str

    def __call__(self, workload: Any, config: Any, accel_kwargs: dict) -> EvalMetrics:
        ...


@runtime_checkable
class BatchEvaluator(Evaluator, Protocol):
    """An :class:`Evaluator` that can score a whole grid chunk in one call.

    ``names`` are the swept DSE parameter names (sorted, as the grid
    walks them) and ``value_rows`` one value tuple per design point;
    ``base_config`` is the unswept :class:`~repro.hw.params.HardwareConfig`
    every point is derived from.  The returned list aligns with
    ``value_rows`` and must be **bit-for-bit** what per-point ``__call__``
    invocations would produce — the DSE engine treats batching purely as
    an execution strategy.  Implementations signal any problem by
    raising; the engine then re-scores the chunk per point, which
    attributes per-point failures and re-raises structural errors.
    """

    def evaluate_batch(
        self,
        workload: Any,
        base_config: Any,
        names: Sequence[str],
        value_rows: Sequence[tuple],
    ) -> List[EvalMetrics]:
        ...


def _attention_layers(workload):
    """The attention layers of a ModelWorkload (or a bare layer sequence)."""
    return getattr(workload, "attention_layers", workload)


# ----------------------------------------------------------------------
# The DSE parameter table: ONE declaration per swept knob
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _DseParameter:
    """How one swept DSE knob routes onto a design point.

    Each knob is declared once, with both of its execution forms — the
    per-point route (clone a :class:`~repro.hw.params.HardwareConfig`
    field or add an accelerator kwarg) and the batched route (append
    per-point numpy columns for the grid simulators) — side by side, so
    the two paths can never drift: a new knob either defines both forms
    here or exists in neither.
    """

    name: str
    #: Whether the cycle simulator honours the knob.  Drives the derived
    #: :attr:`CycleSimEvaluator._SUPPORTED_KWARGS` set and the batched
    #: cycle evaluator's structural-rejection check, so the per-point and
    #: batched cycle paths accept exactly the same sweeps by construction.
    cycle_modelled: bool
    #: ``accel_kwargs`` keys the knob may introduce (empty for knobs that
    #: route to config fields, which every simulator honours).
    kwargs_keys: tuple
    #: ``(config, accel_kwargs, value) -> (config, accel_kwargs)``
    route: Callable
    #: ``(columns, values, default_ae) -> None`` — append grid columns,
    #: applying the exact conversions ``route`` applies before cloning.
    columns: Callable


def _route_mac_lines(config, kwargs, value):
    return replace(config, num_mac_lines=int(value)), kwargs


def _columns_mac_lines(columns, values, default_ae):
    columns["num_mac_lines"] = np.array([int(v) for v in values], dtype=np.int64)


def _route_bandwidth(config, kwargs, value):
    return replace(config, dram_bandwidth_bytes_per_s=float(value) * 1e9), kwargs


def _columns_bandwidth(columns, values, default_ae):
    columns["dram_bandwidth_bytes_per_s"] = np.array(
        [float(v) * 1e9 for v in values], dtype=np.float64
    )


def _route_act_buffer(config, kwargs, value):
    return replace(config, act_buffer_bytes=int(value * 1024)), kwargs


def _columns_act_buffer(columns, values, default_ae):
    columns["act_buffer_bytes"] = np.array(
        [int(v * 1024) for v in values], dtype=np.int64
    )


def _route_ae(config, kwargs, value):
    if value is None:
        return config, {**kwargs, "use_ae": False}
    return config, {**kwargs, "use_ae": True, "ae_compression": float(value)}


def _columns_ae(columns, values, default_ae):
    # `None` means the AE datapath is off; the ratio column then keeps
    # the simulator's default so validation passes, exactly like the
    # per-point kwargs route.
    columns["use_ae"] = np.array([v is not None for v in values], dtype=bool)
    columns["ae_compression"] = np.array(
        [default_ae if v is None else float(v) for v in values], dtype=np.float64
    )


def _route_q_forwarding(config, kwargs, value):
    return config, {**kwargs, "q_forwarding_hit_rate": float(value)}


def _columns_q_forwarding(columns, values, default_ae):
    columns["q_forwarding_hit_rate"] = np.array(
        [float(v) for v in values], dtype=np.float64
    )


_DSE_PARAMETERS = {
    p.name: p
    for p in (
        _DseParameter("mac_lines", True, (), _route_mac_lines, _columns_mac_lines),
        _DseParameter(
            "bandwidth_gbps", True, (), _route_bandwidth, _columns_bandwidth
        ),
        _DseParameter(
            "act_buffer_kb", True, (), _route_act_buffer, _columns_act_buffer
        ),
        _DseParameter(
            "ae_compression",
            True,
            ("use_ae", "ae_compression"),
            _route_ae,
            _columns_ae,
        ),
        _DseParameter(
            "q_forwarding_hit_rate",
            False,  # only the analytical model applies Q forwarding
            ("q_forwarding_hit_rate",),
            _route_q_forwarding,
            _columns_q_forwarding,
        ),
    )
}


def _unknown_parameter(name):
    return KeyError(
        f"unknown DSE parameter {name!r}; choose from " + ", ".join(_DSE_PARAMETERS)
    )


def dse_parameter_names() -> tuple:
    """The swept parameter names the DSE layer understands, sorted.

    The public face of the parameter table for wire-format validators
    (the serve layer rejects a posted grid naming anything else *before*
    a store is created) and error messages.
    """
    return tuple(sorted(_DSE_PARAMETERS))


def apply_dse_parameter(config, accel_kwargs, name, value):
    """Route one swept parameter to the config or the accelerator kwargs.

    THE per-point parameter route (the DSE engine's ``_apply`` delegates
    here): returns the updated ``(config, accel_kwargs)`` pair; unknown
    names raise ``KeyError`` (a malformed grid is a caller bug).
    """
    try:
        parameter = _DSE_PARAMETERS[name]
    except KeyError:
        raise _unknown_parameter(name) from None
    return parameter.route(config, accel_kwargs, value)


def dse_grid_columns(names, value_rows, default_ae):
    """Build grid-simulator columns for a chunk of design points.

    THE batched parameter route: one column dict for
    ``simulate_attention_grid`` (accelerator or cycle simulator), with
    every value converted exactly as :func:`apply_dse_parameter` converts
    it before cloning a config — so batched and per-point scoring read
    bit-identical design points.  ``default_ae`` fills the AE-ratio
    column for points whose AE datapath is off (the column must still
    pass validation).
    """
    columns = {}
    for j, name in enumerate(names):
        try:
            parameter = _DSE_PARAMETERS[name]
        except KeyError:
            raise _unknown_parameter(name) from None
        parameter.columns(columns, [row[j] for row in value_rows], default_ae)
    return columns


class AnalyticalEvaluator:
    """Score points with the closed-form ViTCoD phase model (the default).

    Exactly the evaluation the pre-evaluator sweeps ran: construct a
    :class:`~repro.hw.accelerator.ViTCoDAccelerator` at the design point
    and read ``seconds`` / ``energy_joules`` off its attention report —
    results are bit-identical to the historical sweep output.
    """

    name = "analytical"

    def __call__(self, workload, config, accel_kwargs):
        from ..hw.accelerator import ViTCoDAccelerator

        accel = ViTCoDAccelerator(config=config, **accel_kwargs)
        report = accel.simulate_attention(workload)
        return EvalMetrics(seconds=report.seconds, energy_joules=report.energy_joules)


class BatchedAnalyticalEvaluator(AnalyticalEvaluator):
    """The analytical strategy with a whole-chunk batch axis (the default).

    Scoring one point is inherited unchanged; ``evaluate_batch`` scores a
    whole chunk of grid points as one
    :meth:`~repro.hw.accelerator.ViTCoDAccelerator.simulate_attention_grid`
    array walk — swept parameters become per-point numpy columns (routed
    exactly as the per-point sweep routes them onto
    :class:`~repro.hw.params.HardwareConfig` fields and accelerator
    kwargs), and the results are **bit-for-bit** what per-point calls
    produce.  Because the strategy is the same, ``evaluator_spec`` still
    renders it as ``{"name": "analytical"}``: batched and per-point
    shards of one :mod:`repro.dist` study share a manifest and produce
    identical stores.

    A chunk containing an invalid point — MAC lines below the allocator's
    minimum, an out-of-range AE ratio — raises for the whole batch; the
    DSE engine then falls back to per-point scoring of that chunk, which
    captures exactly the per-point failures an unbatched sweep would.
    """

    def evaluate_batch(self, workload, base_config, names, value_rows):
        from ..hw.accelerator import ViTCoDAccelerator

        accel = ViTCoDAccelerator(config=base_config)
        columns = dse_grid_columns(
            names, list(value_rows), default_ae=accel.ae_compression
        )
        seconds, energy = accel.simulate_attention_grid(workload, columns)
        return [
            EvalMetrics(seconds=s, energy_joules=e)
            for s, e in zip(seconds.tolist(), energy.tolist())
        ]


class CycleSimEvaluator:
    """Score points with the event-driven cycle simulator (ground truth).

    Latency is the simulated makespan of the whole attention stack.  Energy
    mirrors the analytical model's charging scheme
    (:meth:`~repro.hw.accelerator.ViTCoDAccelerator._charge_energy`): MACs
    and softmax operations are counted from the workload, DRAM bytes from
    the simulator's observed channel occupancy, SRAM traffic from both, and
    static power from the makespan — so analytical and cycle-accurate
    Pareto fronts are comparable point for point.

    Parameters
    ----------
    engine:
        Cycle-simulator engine (``"vectorized"`` default, or ``"scalar"``).
    scan:
        Whole-model scan strategy (``"split"`` default, or ``"fused"``).
    """

    name = "cycle"

    #: ``accel_kwargs`` the cycle simulator can honour; anything else (e.g.
    #: ``q_forwarding_hit_rate``, which only the analytical model applies)
    #: raises instead of silently altering the swept grid's meaning.
    #: Derived from the DSE parameter table's ``cycle_modelled`` flags, so
    #: the per-point and batched cycle paths reject exactly the same knobs
    #: — a new swept parameter cannot be honoured by one and refused by
    #: the other.
    _SUPPORTED_KWARGS = frozenset(
        key
        for parameter in _DSE_PARAMETERS.values()
        if parameter.cycle_modelled
        for key in parameter.kwargs_keys
    )

    def __init__(self, engine="vectorized", scan="split"):
        self.engine = engine
        self.scan = scan

    def __call__(self, workload, config, accel_kwargs):
        from ..hw.cycle_sim import CycleAccurateSimulator

        unsupported = set(accel_kwargs) - self._SUPPORTED_KWARGS
        if unsupported:
            raise UnsupportedParameterError(
                "CycleSimEvaluator cannot honour swept parameter(s) "
                f"{sorted(unsupported)}; the cycle simulator only models "
                f"{sorted(self._SUPPORTED_KWARGS)}"
            )
        sim = CycleAccurateSimulator(
            config=config, engine=self.engine, scan=self.scan, **accel_kwargs
        )
        result = sim.simulate_attention(workload)
        return EvalMetrics(
            seconds=config.cycles_to_seconds(result.makespan),
            energy_joules=self._energy_pj(workload, config, result) * 1e-12,
        )

    @staticmethod
    def _energy_pj(workload, config, result):
        layers = _attention_layers(workload)
        macs = sum(l.sddmm_macs + l.spmm_macs for l in layers)
        softmax_ops = sum(l.total_nnz for l in layers)
        # The DRAM channel moves ``bytes_per_cycle`` each busy cycle, so the
        # observed occupancy *is* the traffic estimate (burst effects and
        # all), matching how the event engine charged the time.
        dram_bytes = result.dram_busy * config.bytes_per_cycle
        sram_bytes = 2 * dram_bytes + macs * config.bytes_per_element / 4
        e = config.energy
        return (
            macs * e.mac_pj
            + dram_bytes * e.dram_byte_pj
            + sram_bytes * e.sram_byte_pj
            + softmax_ops * e.softmax_op_pj
            + result.makespan * e.static_pj_per_cycle
        )


class BatchedCycleSimEvaluator(CycleSimEvaluator):
    """The cycle-accurate strategy with a whole-chunk batch axis.

    Scoring one point is inherited unchanged; ``evaluate_batch`` runs a
    whole chunk of grid points as one
    :meth:`~repro.hw.cycle_sim.CycleAccurateSimulator.simulate_attention_grid`
    (points × layers × jobs) max-plus walk — swept knobs become per-point
    numpy columns (via :func:`dse_grid_columns`, the same table the
    per-point route reads), and the results are **bit-for-bit** what
    per-point calls produce: the grid walk's event durations live on the
    same ``2**-20``-cycle grid and its energy charge repeats
    :meth:`CycleSimEvaluator._energy_pj` operand for operand.  Because
    the strategy is the same, ``evaluator_spec`` still renders it as
    ``{"name": "cycle", ...}``: batched and per-point shards of one
    :mod:`repro.dist` study share a manifest and produce identical
    stores.

    Only the vectorized engine has a grid walk; with ``engine="scalar"``
    — the reference event loop — :attr:`batch_capable` turns the batch
    surface off and the DSE engine keeps the per-point path, preserving
    the scalar engine's role as the independent oracle.

    A chunk containing an invalid point — MAC lines below the allocator's
    minimum, an out-of-range AE ratio — raises for the whole batch; the
    DSE engine then falls back to per-point scoring of that chunk, which
    captures exactly the per-point failures an unbatched sweep would.  A
    sweep of a knob the cycle simulator does not model raises
    :class:`UnsupportedParameterError` exactly like the per-point path
    (same table, same message).
    """

    @property
    def batch_capable(self):
        """Batch only the vectorized engine (see the class docstring)."""
        return self.engine == "vectorized"

    def evaluate_batch(self, workload, base_config, names, value_rows):
        from ..hw.cycle_sim import CycleAccurateSimulator

        unsupported = {
            key
            for name in names
            if name in _DSE_PARAMETERS and not _DSE_PARAMETERS[name].cycle_modelled
            for key in _DSE_PARAMETERS[name].kwargs_keys
        }
        if unsupported:
            raise UnsupportedParameterError(
                "CycleSimEvaluator cannot honour swept parameter(s) "
                f"{sorted(unsupported)}; the cycle simulator only models "
                f"{sorted(self._SUPPORTED_KWARGS)}"
            )
        sim = CycleAccurateSimulator(
            config=base_config, engine=self.engine, scan=self.scan
        )
        columns = dse_grid_columns(
            names, list(value_rows), default_ae=sim.ae_compression
        )
        totals = sim.simulate_attention_grid(workload, columns)

        # Energy: the exact expressions of :meth:`_energy_pj` /
        # ``cycles_to_seconds`` with the per-point scalars that vary
        # across the chunk (DRAM bytes-per-cycle) as columns — elementwise
        # the same IEEE ops, in the same order, as the per-point calls.
        layers = _attention_layers(workload)
        macs = sum(l.sddmm_macs + l.spmm_macs for l in layers)
        softmax_ops = sum(l.total_nnz for l in layers)
        if "dram_bandwidth_bytes_per_s" in columns:
            bytes_per_cycle = (
                columns["dram_bandwidth_bytes_per_s"] / base_config.frequency_hz
            )
        else:
            bytes_per_cycle = base_config.bytes_per_cycle
        dram_bytes = totals["dram_busy"] * bytes_per_cycle
        sram_bytes = 2 * dram_bytes + macs * base_config.bytes_per_element / 4
        e = base_config.energy
        energy_pj = (
            macs * e.mac_pj
            + dram_bytes * e.dram_byte_pj
            + sram_bytes * e.sram_byte_pj
            + softmax_ops * e.softmax_op_pj
            + totals["makespan"] * e.static_pj_per_cycle
        )
        seconds = totals["makespan"] / base_config.frequency_hz
        return [
            EvalMetrics(seconds=s, energy_joules=pj * 1e-12)
            for s, pj in zip(seconds.tolist(), energy_pj.tolist())
        ]


class HybridEvaluator:
    """Prune with a cheap evaluator, re-score survivors with the real one.

    The DSE engine recognises this type and runs the two-phase sweep:
    every grid point is scored with :attr:`coarse` under incremental
    Pareto pruning, then only the surviving frontier is re-scored with
    :attr:`fine` (in deterministic grid order).  Used as a plain evaluator
    on a single point it simply defers to :attr:`fine`.

    ``adaptive=True`` opts the fine phase into band-pruned re-scoring:
    the engine tracks the observed fine/coarse objective-ratio band as
    survivors are scored and skips the survivors whose *optimistic* fine
    estimate — coarse objectives scaled by the smallest observed ratio,
    shrunk by ``band_slack`` — is already strictly dominated by an
    actually-scored fine point.  Under the band assumption (each
    objective's true fine/coarse ratio stays above the observed minimum
    times ``1 - band_slack``) a skipped survivor is provably off the
    final fine frontier, so the fine *frontier* is unchanged while
    frontier-adjacent survivors stop costing cycle-accurate runs; the
    returned survivor *list* shrinks accordingly.  Adaptive hybrids run
    their fine phase serially in-process (deterministic regardless of
    ``n_jobs``) and cannot drive a sharded merge
    (:func:`repro.dist.merge_store` rejects them).
    """

    name = "hybrid"

    def __init__(
        self,
        coarse: Evaluator = None,
        fine: Evaluator = None,
        adaptive: bool = False,
        band_slack: float = 0.25,
    ):
        self.coarse = coarse if coarse is not None else BatchedAnalyticalEvaluator()
        self.fine = fine if fine is not None else BatchedCycleSimEvaluator()
        self.adaptive = bool(adaptive)
        if not 0.0 <= band_slack < 1.0:
            raise ValueError("band_slack must be in [0, 1)")
        self.band_slack = float(band_slack)

    def __call__(self, workload, config, accel_kwargs):
        return self.fine(workload, config, accel_kwargs)


_BUILTIN_EVALUATORS = {
    "analytical": BatchedAnalyticalEvaluator,
    "cycle": BatchedCycleSimEvaluator,
    "hybrid": HybridEvaluator,
}


def resolve_evaluator(spec) -> Evaluator:
    """Normalise an evaluator spec to an :class:`Evaluator` instance.

    ``None`` means the analytical default; strings name a built-in
    (``"analytical"``, ``"cycle"``, ``"hybrid"``); anything callable is
    returned as-is.  ``"analytical"``/``None`` resolve to the
    batch-capable :class:`BatchedAnalyticalEvaluator` and ``"cycle"`` to
    :class:`BatchedCycleSimEvaluator` (each bit-identical to its
    per-point base class point for point — pass an
    ``AnalyticalEvaluator()`` / ``CycleSimEvaluator()`` instance to force
    per-point execution).
    """
    if spec is None:
        return BatchedAnalyticalEvaluator()
    if isinstance(spec, str):
        try:
            return _BUILTIN_EVALUATORS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown evaluator {spec!r}; choose from "
                f"{sorted(_BUILTIN_EVALUATORS)} or pass an Evaluator"
            ) from None
    if callable(spec):
        return spec
    raise TypeError(
        f"evaluator must be None, a name, or a callable, got {type(spec)!r}"
    )


def evaluator_spec(evaluator) -> dict:
    """Render an evaluator as a JSON-safe spec dict.

    Built-ins serialize exactly (name plus constructor parameters;
    :class:`HybridEvaluator` nests its coarse/fine specs), so
    ``evaluator_from_spec(evaluator_spec(e))`` scores any point
    identically to ``e``.  Anything else — a user callable — is recorded
    as ``{"name": "custom:<name>"}``: enough for a result-store manifest
    to *identify* the strategy, not enough to reconstruct it (the caller
    must pass the instance again).  Accepts anything
    :func:`resolve_evaluator` does.
    """
    evaluator = resolve_evaluator(evaluator)
    plan = getattr(evaluator, "fault_plan", None)
    if plan is not None and hasattr(evaluator, "inner"):
        # A repro.faults.FaultyEvaluator wrapper: the spec is the *inner*
        # evaluator's spec plus an optional "faults" plan, so the manifest
        # still names the real scoring strategy and a healthy merge stays
        # byte-identical to the faulty one.
        spec = evaluator_spec(evaluator.inner)
        spec["faults"] = plan.spec()
        return spec
    kind = type(evaluator)
    if kind is AnalyticalEvaluator or kind is BatchedAnalyticalEvaluator:
        # One strategy, two execution modes: batched and per-point score
        # bit-identically, so they share the manifest spec.
        return {"name": "analytical"}
    if kind is CycleSimEvaluator or kind is BatchedCycleSimEvaluator:
        # Same sharing: existing "cycle" manifests stay valid and a
        # batched shard produces the store a per-point shard would.
        return {"name": "cycle", "engine": evaluator.engine, "scan": evaluator.scan}
    if kind is HybridEvaluator:
        spec = {
            "name": "hybrid",
            "coarse": evaluator_spec(evaluator.coarse),
            "fine": evaluator_spec(evaluator.fine),
        }
        if evaluator.adaptive:
            spec["adaptive"] = True
            spec["band_slack"] = evaluator.band_slack
        return spec
    name = getattr(evaluator, "name", None) or kind.__qualname__
    return {"name": f"custom:{name}"}


#: Per-strategy key allowlists for :func:`evaluator_from_spec`.  Specs
#: arrive over the wire (store manifests, the serve layer's job API), so
#: a misspelt or injected field must fail loudly instead of being
#: silently dropped — ``{"name": "cycle", "engin": "scalar"}`` would
#: otherwise score a different study than the caller asked for.
#: Every strategy also accepts an optional "faults" object — a
#: :func:`repro.faults.plan_from_spec` plan that wraps the evaluator in
#: seeded fault injection (see the README's failure runbook).
_SPEC_KEYS = {
    "analytical": frozenset({"name", "faults"}),
    "cycle": frozenset({"name", "engine", "scan", "faults"}),
    "hybrid": frozenset(
        {"name", "coarse", "fine", "adaptive", "band_slack", "faults"}
    ),
}
_CYCLE_ENGINES = ("vectorized", "scalar")
_CYCLE_SCANS = ("split", "fused")


def _spec_error(spec, problem):
    return ValueError(f"bad evaluator spec {spec!r}: {problem}")


def evaluator_from_spec(spec) -> Evaluator:
    """Reconstruct an evaluator from an :func:`evaluator_spec` dict.

    Accepts a bare name string as shorthand for ``{"name": ...}``.  The
    spec is *validated*, not merely pattern-matched: unknown fields, an
    engine/scan outside the simulator's vocabulary, or a non-boolean
    ``adaptive`` raise :class:`ValueError` with the offending field named
    — specs cross host and process boundaries (store manifests, the HTTP
    job API), where a silently-tolerated typo would score a different
    study than the one requested.  ``custom:*`` specs (and unknown
    names) raise too: a spec names a strategy across hosts, it cannot
    ship code — reconstruct the instance and pass it explicitly instead.
    The round-trip ``evaluator_from_spec(evaluator_spec(e))`` is exact
    for every built-in.
    """
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, dict):
        raise TypeError(f"evaluator spec must be a name or a dict, got {type(spec)!r}")
    name = spec.get("name")
    if not isinstance(name, str):
        raise _spec_error(spec, "missing or non-string 'name'")
    allowed = _SPEC_KEYS.get(name)
    if allowed is None:
        raise ValueError(
            f"cannot reconstruct evaluator from spec {spec!r}; choose from "
            f"{sorted(_SPEC_KEYS)} (custom evaluators must be "
            "re-instantiated and passed explicitly)"
        )
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise _spec_error(
            spec, f"unknown field(s) {unknown} for {name!r} "
            f"(allowed: {sorted(allowed)})"
        )
    faults = spec.get("faults")
    if faults is not None:
        # Build the inner evaluator from the same spec minus the plan,
        # then wrap: FaultyEvaluator is per-point by design, so the
        # retry machinery can attribute every injected failure.
        from ..faults import FaultPlanError, FaultyEvaluator, plan_from_spec

        try:
            plan = plan_from_spec(faults)
        except FaultPlanError as exc:
            raise _spec_error(spec, f"bad 'faults' plan: {exc}") from None
        inner_spec = {k: v for k, v in spec.items() if k != "faults"}
        return FaultyEvaluator(evaluator_from_spec(inner_spec), plan)
    if name == "analytical":
        return BatchedAnalyticalEvaluator()
    if name == "cycle":
        engine = spec.get("engine", "vectorized")
        if engine not in _CYCLE_ENGINES:
            raise _spec_error(spec, f"engine must be one of {_CYCLE_ENGINES}")
        scan = spec.get("scan", "split")
        if scan not in _CYCLE_SCANS:
            raise _spec_error(spec, f"scan must be one of {_CYCLE_SCANS}")
        return BatchedCycleSimEvaluator(engine=engine, scan=scan)
    adaptive = spec.get("adaptive", False)
    if not isinstance(adaptive, bool):
        raise _spec_error(spec, "'adaptive' must be a boolean")
    band_slack = spec.get("band_slack", 0.25)
    if isinstance(band_slack, bool) or not isinstance(band_slack, (int, float)):
        raise _spec_error(spec, "'band_slack' must be a number in [0, 1)")
    coarse = spec.get("coarse")
    fine = spec.get("fine")
    for role, sub in (("coarse", coarse), ("fine", fine)):
        if isinstance(sub, dict) and "faults" in sub:
            raise _spec_error(
                spec,
                f"fault plans attach to the top-level evaluator, not {role!r}",
            )
    try:
        return HybridEvaluator(
            coarse=evaluator_from_spec(coarse) if coarse else None,
            fine=evaluator_from_spec(fine) if fine else None,
            adaptive=adaptive,
            band_slack=float(band_slack),
        )
    except ValueError as exc:
        raise _spec_error(spec, str(exc)) from None
