"""Reverse-mode automatic differentiation over numpy arrays.

This is the neural-network substrate for the ViTCoD reproduction: the paper's
algorithm pipeline (attention pruning, auto-encoder finetuning) runs in
PyTorch; here we provide an equivalent, self-contained tape-based autograd
engine so that every learnable component (ViT blocks, the AE module) is
trained for real rather than mocked.

Only the operations the ViT/AE models need are implemented, each with an
explicit vector-Jacobian product.  Broadcasting follows numpy semantics; the
gradient of a broadcast operand is reduced back to its original shape by
:func:`_unbroadcast`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled():
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_tensor(value):
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=False)


class Tensor:
    """A numpy array with an optional gradient tape.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64`` for numerical robustness of
        the small-model training runs used throughout the reproduction.
    requires_grad:
        Whether gradients should flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # so np.ndarray.__mul__ defers to us

    def __init__(self, data, requires_grad=False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad = None
        self._backward = None
        self._parents = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad=False):
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad=False):
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng=None, scale=1.0, requires_grad=False):
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def numpy(self):
        """Return the underlying array (no copy)."""
        return self.data

    def item(self):
        return float(self.data.item())

    def detach(self):
        return Tensor(self.data, requires_grad=False)

    def __repr__(self):
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    def __len__(self):
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make(self, data, parents, backward):
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad):
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad=None):
        """Backpropagate from this tensor through the recorded tape."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Topological order via iterative DFS.
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    def zero_grad(self):
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = _as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-_as_tensor(other))

    def __rsub__(self, other):
        return _as_tensor(other) + (-self)

    def __mul__(self, other):
        other = _as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = _as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return _as_tensor(other) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = _as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.data.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def abs(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._make(np.abs(self.data), (self,), backward)

    def relu(self):
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims=False):
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            full = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == full).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(in_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a, b):
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, key):
        out_data = self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors, axis=0):
        tensors = [_as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    idx = [slice(None)] * grad.ndim
                    idx[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(idx)])

        out = Tensor(out_data)
        if _GRAD_ENABLED and any(t.requires_grad for t in tensors):
            out.requires_grad = True
            out._parents = tuple(tensors)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # NN-specific fused ops (numerically stable)
    # ------------------------------------------------------------------
    def softmax(self, axis=-1):
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad):
            if self.requires_grad:
                dot = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward)

    def log_softmax(self, axis=-1):
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        soft = np.exp(out_data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

        return self._make(out_data, (self,), backward)

    def gelu(self):
        """Gaussian error linear unit (tanh approximation, as in ViT MLPs)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad):
            if self.requires_grad:
                dinner = c * (1.0 + 3 * 0.044715 * x**2)
                dt = (1.0 - t**2) * dinner
                self._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return self._make(out_data, (self,), backward)

    def masked_fill(self, mask, value):
        """Replace entries where ``mask`` is truthy with ``value`` (no grad there)."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return self._make(out_data, (self,), backward)
