"""Synthetic vision datasets (ImageNet / Human3.6M substitutes).

The paper trains on ImageNet (classification) and Human3.6M (3-D pose).  We
cannot ship those offline, so this module generates structured synthetic
patch-token data whose optimal attention strategy matches what the paper
observes in real ViTs (Fig. 2 / Fig. 8):

* a small set of *salient patches* carry most of the class signal — the
  analogue of the paper's **global tokens** (columns attended by everyone);
* neighbouring patches are spatially correlated — the analogue of the
  **diagonal** attention concentration between adjacent tokens.

A ViT trained on this data therefore develops attention maps with the same
"global columns + diagonal band" structure the split-and-conquer algorithm
exploits, exercising the real code path end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SyntheticPatchDataset", "SyntheticPoseDataset", "iterate_minibatches"]


@dataclass
class SyntheticPatchDataset:
    """Patch-token classification dataset.

    Parameters
    ----------
    num_classes:
        Number of target classes.
    num_tokens:
        Patch tokens per image (excluding any CLS token the model adds).
    patch_dim:
        Dimensionality of each (pre-embedded) patch vector.
    num_samples:
        Dataset size.
    num_salient:
        How many fixed patch positions carry the global class signal.
    noise:
        Std-dev of additive observation noise.
    locality:
        Strength of correlation between spatially adjacent patches.
    seed:
        RNG seed; datasets are fully deterministic given the seed.
    """

    num_classes: int = 4
    num_tokens: int = 16
    patch_dim: int = 16
    num_samples: int = 512
    num_salient: int = 3
    noise: float = 0.35
    locality: float = 0.6
    seed: int = 0

    x: np.ndarray = field(init=False, repr=False)
    y: np.ndarray = field(init=False, repr=False)
    salient_positions: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        rng = np.random.default_rng(self.seed)
        # Fixed salient positions, shared across the dataset (global tokens).
        self.salient_positions = rng.choice(
            self.num_tokens, size=self.num_salient, replace=False
        )
        prototypes = rng.standard_normal((self.num_classes, self.patch_dim)) * 1.5
        texture = rng.standard_normal(
            (self.num_classes, self.num_tokens, self.patch_dim)) * 0.4

        self.y = rng.integers(0, self.num_classes, size=self.num_samples)
        base = rng.standard_normal((self.num_samples, self.num_tokens, self.patch_dim))

        # Spatial correlation: blend each token with its neighbours on the grid.
        side = int(round(np.sqrt(self.num_tokens)))
        if side * side == self.num_tokens and self.locality > 0:
            grid = base.reshape(self.num_samples, side, side, self.patch_dim)
            blurred = grid.copy()
            blurred[:, 1:] += self.locality * grid[:, :-1]
            blurred[:, :-1] += self.locality * grid[:, 1:]
            blurred[:, :, 1:] += self.locality * grid[:, :, :-1]
            blurred[:, :, :-1] += self.locality * grid[:, :, 1:]
            base = blurred.reshape(self.num_samples, self.num_tokens, self.patch_dim)

        x = self.noise * base + texture[self.y]
        # Inject the class prototype at the salient (global) positions.
        x[:, self.salient_positions, :] += prototypes[self.y][:, None, :]
        self.x = x

    def __len__(self):
        return self.num_samples

    def split(self, train_fraction=0.8):
        """Deterministic train/test split: ``(x_tr, y_tr, x_te, y_te)``."""
        cut = int(self.num_samples * train_fraction)
        return self.x[:cut], self.y[:cut], self.x[cut:], self.y[cut:]


@dataclass
class SyntheticPoseDataset:
    """Sequence-regression stand-in for Human3.6M (Strided Transformer task).

    Inputs are token sequences of noisy 2-D joint observations; targets are a
    smooth latent trajectory (the "3-D pose") recoverable by attending to
    temporally adjacent frames plus a few anchor frames.
    """

    num_tokens: int = 27
    joint_dim: int = 16
    num_samples: int = 256
    num_anchors: int = 2
    noise: float = 0.3
    seed: int = 0

    x: np.ndarray = field(init=False, repr=False)
    y: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        rng = np.random.default_rng(self.seed)
        t = np.linspace(0, 2 * np.pi, self.num_tokens)
        phases = rng.uniform(0, 2 * np.pi, (self.num_samples, self.joint_dim))
        freqs = rng.uniform(0.5, 2.0, (self.num_samples, self.joint_dim))
        latent = np.sin(freqs[:, None, :] * t[None, :, None] + phases[:, None, :])
        self.y = latent
        self.x = latent + self.noise * rng.standard_normal(latent.shape)

    def __len__(self):
        return self.num_samples

    def split(self, train_fraction=0.8):
        cut = int(self.num_samples * train_fraction)
        return self.x[:cut], self.y[:cut], self.x[cut:], self.y[cut:]


def iterate_minibatches(x, y, batch_size, rng=None, shuffle=True):
    """Yield ``(xb, yb)`` minibatches; the last partial batch is included."""
    n = len(x)
    order = np.arange(n)
    if shuffle:
        (rng or np.random.default_rng()).shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]
