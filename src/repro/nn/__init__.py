"""Numpy autograd + NN substrate for the ViTCoD reproduction."""

from .autograd import Tensor, no_grad, is_grad_enabled
from .modules import (
    Module,
    Parameter,
    Linear,
    LayerNorm,
    GELU,
    ReLU,
    Sequential,
    Mlp,
)
from . import functional
from .optim import SGD, Adam
from .data import SyntheticPatchDataset, SyntheticPoseDataset, iterate_minibatches

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "GELU",
    "ReLU",
    "Sequential",
    "Mlp",
    "functional",
    "SGD",
    "Adam",
    "SyntheticPatchDataset",
    "SyntheticPoseDataset",
    "iterate_minibatches",
]
