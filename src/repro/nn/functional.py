"""Loss functions and stateless helpers used by the ViTCoD training loops."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = [
    "cross_entropy",
    "mse_loss",
    "l1_loss",
    "reconstruction_loss",
    "accuracy",
    "one_hot",
]


def cross_entropy(logits, targets):
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    This is the ``L_CE`` term of the paper's joint objective (Eq. 2).
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(pred, target):
    diff = pred - _detach_if_tensor(target)
    return (diff * diff).mean()


def l1_loss(pred, target):
    diff = pred - _detach_if_tensor(target)
    return diff.abs().mean()


def reconstruction_loss(original, reconstructed):
    """``||Q - Q'||`` reconstruction term of Eq. 2.

    The paper writes an L0 norm; as in the authors' released code the
    practical, differentiable surrogate is an L1/MSE penalty — we use L1,
    which drives the element-wise discrepancy toward exact zeros.
    """
    return l1_loss(reconstructed, original.detach())


def accuracy(logits, targets):
    """Top-1 accuracy of ``logits`` (Tensor or ndarray) against int targets."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = data.argmax(axis=-1)
    return float((pred == np.asarray(targets)).mean())


def one_hot(indices, num_classes):
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.size, num_classes))
    out[np.arange(indices.size), indices.ravel()] = 1.0
    return out.reshape(indices.shape + (num_classes,))


def _detach_if_tensor(value):
    if isinstance(value, Tensor):
        return value.detach()
    return Tensor(np.asarray(value, dtype=np.float64))
