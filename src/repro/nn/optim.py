"""Optimisers for the reproduction's training loops (SGD + Adam).

The paper finetunes DeiT/LeViT with the DeiT recipe (AdamW-style) and the
Strided Transformer with a small learning rate of 1e-5; Adam with optional
decoupled weight decay covers both regimes at our model scale.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, params):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self):
        for param in self.params:
            param.zero_grad()

    def step(self):  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(_Optimizer):
    def __init__(self, params, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data = param.data - self.lr * grad


class Adam(_Optimizer):
    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = param.data - self.lr * update
