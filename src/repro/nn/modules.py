"""Neural-network building blocks on top of :mod:`repro.nn.autograd`.

These mirror the PyTorch modules the ViTCoD paper composes its models from:
``Linear``, ``LayerNorm``, ``GELU``, the two-layer ``Mlp`` block, and a
``MultiHeadSelfAttention`` that supports the paper's two hooks — a *fixed
sparse attention mask* (split-and-conquer output) and an optional
*auto-encoder* applied to Q/K along the head dimension.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "GELU",
    "ReLU",
    "Sequential",
    "Mlp",
]


class Parameter(Tensor):
    """A tensor registered as learnable state of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Minimal module base: parameter registration, train/eval mode, apply."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def parameters(self):
        """Yield all parameters of this module and its children."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix=""):
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self):
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self):
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode=True):
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self):
        return self.train(False)

    def num_parameters(self):
        return sum(p.size for p in self.parameters())

    def state_dict(self):
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state):
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, param in params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = np.array(state[name], dtype=np.float64)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-uniform initialisation."""

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(rng.uniform(-bound, bound, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x):
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the trailing dimension."""

    def __init__(self, dim, eps=1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x):
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class GELU(Module):
    def forward(self, x):
        return x.gelu()


class ReLU(Module):
    def forward(self, x):
        return x.relu()


class Sequential(Module):
    def __init__(self, *layers):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)


class Mlp(Module):
    """Transformer MLP block: Linear → GELU → Linear (paper §IV-A)."""

    def __init__(self, dim, hidden_dim, rng=None):
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden_dim, dim, rng=rng)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))
