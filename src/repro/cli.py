"""Command-line interface: ``python -m repro <experiment> [options]``.

Runs any of the paper's experiments headlessly and prints/export results:

    python -m repro fig15 --sparsity 0.9 --models deit-base levit-128
    python -m repro fig19 --json results.json
    python -m repro roofline
    python -m repro polarize --tokens 197 --heads 12
    python -m repro dse --models deit-tiny --evaluator cycle --n-jobs 4
    python -m repro dse --models deit-base --batch-size 2048   # batched grid
    python -m repro dse --models deit-base --no-batch          # per-point ref
    python -m repro list

Sharded sweeps (see :mod:`repro.dist`) split one DSE study across
processes or hosts that share a store directory:

    python -m repro dse-shard --shard 1/3 --out store/ --evaluator cycle
    python -m repro dse-shard --shard 2/3 --out store/ --evaluator cycle
    python -m repro dse-shard --shard 3/3 --out store/ --evaluator cycle
    python -m repro dse-status store/
    python -m repro dse-merge store/ --json merged.json

Heterogeneous fleets weight the partition and steal from stragglers
(``--shard 1/3@4,1,1`` gives shard 1 four grid points for every one the
others own; ``--steal`` makes a finished shard claim and evaluate
missing indices of slower shards — see :mod:`repro.dist`):

    python -m repro dse-shard --shard 1/3@4,1,1 --out store/ --steal

Chaos-ready operation (see :mod:`repro.faults` and :mod:`repro.dist.fleet`):
a supervisor keeps N shard subprocesses alive under crashes and hangs,
and a seeded fault plan makes failures reproducible:

    python -m repro dse-fleet --out store/ --num-shards 3 --steal \\
        --faults '{"seed": 7, "evaluator_error_rate": 0.1}'
    python -m repro dse-status store/ --stall-after 60

The same studies run as a service (see :mod:`repro.serve`): POST a grid
+ evaluator spec, poll progress, fetch results byte-identical to the
``dse`` command's ``--json`` output:

    python -m repro serve --port 8765 --data-dir serve-data/
    curl -X POST localhost:8765/jobs -d '{"grid": {"mac_lines": [16, 32]}}'
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from . import harness
from .harness.serialization import to_json

__all__ = ["main", "build_parser"]

EXPERIMENTS = {
    "fig1": "accuracy/BLEU vs sparsity curves",
    "fig3": "roofline analysis",
    "fig4": "FLOPs + EdgeGPU latency breakdowns",
    "fig8": "attention-map polarization metrics",
    "fig15": "speedups over the five baselines",
    "fig17": "accuracy vs attention latency",
    "fig19": "latency breakdown + energy",
    "table1": "accelerator taxonomy",
    "ablation": "pruning vs reordering",
    "nlp": "NLP comparison vs Sanger",
    "roofline": "alias of fig3 with ASCII plot",
    "polarize": "run Algorithm 1 and draw the mask",
    "dse": "design-space sweep + Pareto frontier",
    "dse-shard": "evaluate one K/N shard of a sweep into a result store",
    "dse-fleet": "supervise N dse-shard subprocesses (heartbeats, "
                 "crash/hang relaunch with backoff)",
    "dse-merge": "merge a sharded store into the full sweep + frontier",
    "dse-status": "per-shard progress of a sharded sweep store",
    "serve": "run the HTTP DSE job service over a durable data dir",
}

#: Default grid of the ``dse`` command (overridable with ``--grid``).
DEFAULT_DSE_GRID = {
    "mac_lines": (16, 32, 64, 128),
    "ae_compression": (None, 0.5),
}


def _parse_grid_value(token):
    """One swept value: ``none`` -> None, else int if exact, else float."""
    token = token.strip()
    if token.lower() == "none":
        return None
    try:
        return int(token)
    except ValueError:
        return float(token)


def parse_grid(specs):
    """Parse repeated ``--grid name=v1,v2,...`` options into a DSE grid."""
    grid = {}
    for spec in specs or ():
        name, sep, values = spec.partition("=")
        if not sep or not values:
            raise SystemExit(
                f"bad --grid spec {spec!r}; expected name=v1,v2,..."
            )
        try:
            grid[name.strip()] = tuple(
                _parse_grid_value(v) for v in values.split(",")
            )
        except ValueError as exc:
            raise SystemExit(
                f"bad --grid value in {spec!r}: {exc}; expected numbers "
                "or 'none'"
            ) from None
    return grid or dict(DEFAULT_DSE_GRID)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ViTCoD (HPCA 2023) reproduction experiment runner",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["list"],
                        help="experiment to run")
    parser.add_argument("store", nargs="?", default=None,
                        help="dse-merge/dse-status: result-store directory")
    parser.add_argument("--sparsity", type=float, default=0.9,
                        help="attention sparsity target (default 0.9)")
    parser.add_argument("--models", nargs="*", default=None,
                        help="model names (default: the six DeiT/LeViT)")
    parser.add_argument("--end-to-end", action="store_true",
                        help="fig15: end-to-end instead of core attention")
    parser.add_argument("--tokens", type=int, default=197,
                        help="polarize: token count")
    parser.add_argument("--heads", type=int, default=12,
                        help="polarize: head count")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the raw result as JSON")
    parser.add_argument("--evaluator", default="analytical",
                        choices=["analytical", "cycle", "hybrid"],
                        help="dse: design-point evaluator (default "
                             "analytical; cycle = event-driven simulator; "
                             "hybrid = analytical prune + cycle re-score)")
    parser.add_argument("--grid", action="append", metavar="NAME=V1,V2,...",
                        default=None,
                        help="dse: one swept parameter (repeatable), e.g. "
                             "--grid mac_lines=32,64 --grid "
                             "ae_compression=none,0.5")
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="dse: parallel evaluation workers (default 1)")
    parser.add_argument("--batch-size", type=int, default=None, metavar="N",
                        help="dse/dse-shard: grid points scored per batch "
                             "chunk for batch-capable evaluators (default "
                             "adaptive, ~1024)")
    parser.add_argument("--no-batch", action="store_true",
                        help="dse/dse-shard: force per-point evaluation "
                             "(the batched analytical path is bit-identical"
                             "; this is the reference escape hatch)")
    parser.add_argument("--shard", metavar="K/N[@W]", default=None,
                        help="dse-shard: which shard of an N-way "
                             "partition this process evaluates; append "
                             "@w1,...,wN (or @W: this shard weighs W, "
                             "peers 1) for a weight-proportional slice")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="dse-shard: result-store directory (shared "
                             "by every shard of the study)")
    parser.add_argument("--steal", action="store_true",
                        help="dse-shard: after finishing its own slice, "
                             "claim and evaluate missing indices of "
                             "slower shards (duplicate-tolerant merge "
                             "keeps results bit-identical)")
    parser.add_argument("--steal-chunk", type=int, default=None, metavar="N",
                        help="dse-shard: indices claimed per steal range "
                             "(default 16)")
    parser.add_argument("--claim-ttl", type=float, default=600.0,
                        metavar="SECONDS",
                        help="dse-shard: age after which an abandoned "
                             "steal claim may be taken over (default "
                             "600; <=0 ignores existing claims)")
    parser.add_argument("--handicap", type=float, default=0.0,
                        metavar="SECONDS",
                        help="dse-shard: sleep this long per recorded "
                             "point (an artificial straggler for "
                             "stealing tests and benchmarks)")
    parser.add_argument("--faults", metavar="JSON|PATH", default=None,
                        help="dse/dse-shard/dse-fleet: a seeded fault "
                             "plan (inline JSON object or a file "
                             "holding one) injected around evaluation "
                             "and the store write path — see "
                             "repro.faults and the README failure "
                             "runbook")
    parser.add_argument("--max-point-retries", type=int, default=None,
                        metavar="N",
                        help="dse-shard/dse-fleet: transient-failure "
                             "re-evaluations budgeted per grid point "
                             "(default 4; 0 persists first failures)")
    parser.add_argument("--heartbeat", metavar="PATH", default=None,
                        help="dse-shard: touch this file once per "
                             "durable record (dse-fleet's hang signal)")
    parser.add_argument("--num-shards", type=int, default=3, metavar="N",
                        help="dse-fleet: shard subprocesses to "
                             "supervise (default 3)")
    parser.add_argument("--hang-after", type=float, default=30.0,
                        metavar="SECONDS",
                        help="dse-fleet: heartbeat staleness that "
                             "counts as a hang and draws a SIGKILL + "
                             "relaunch (default 30)")
    parser.add_argument("--max-restarts", type=int, default=3, metavar="N",
                        help="dse-fleet: relaunches per shard before "
                             "it is abandoned (default 3)")
    parser.add_argument("--stall-after", type=float, default=None,
                        metavar="SECONDS",
                        help="dse-status: flag incomplete shards whose "
                             "newest record is older than this as "
                             "STALLED")
    parser.add_argument("--port", type=int, default=8765,
                        help="serve: TCP port to listen on (default 8765; "
                             "0 picks an ephemeral port)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve: interface to bind (default loopback)")
    parser.add_argument("--data-dir", metavar="DIR", default=None,
                        help="serve: durable job-state directory (jobs "
                             "resume from it after a restart)")
    parser.add_argument("--serve-workers", type=int, default=2, metavar="N",
                        help="serve: shard worker threads (default 2)")
    parser.add_argument("--max-pending", type=int, default=1024, metavar="N",
                        help="serve: bound on queued shard tasks; "
                             "submissions that would overflow it get "
                             "HTTP 503 + Retry-After (default 1024)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="serve: watchdog timeout per shard task "
                             "(default: none); a task over budget "
                             "counts as a failure and consumes a retry")
    parser.add_argument("--task-retries", type=int, default=2, metavar="N",
                        help="serve: per-shard-task retries (with "
                             "backoff) before a job goes failed "
                             "(default 2)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="dse: write the sweep's timed spans as a "
                             "Chrome trace-event file (open in Perfetto "
                             "or chrome://tracing)")
    parser.add_argument("--verbose", action="store_true",
                        help="serve: structured one-line access logs "
                             "(method, path, status, duration ms) via "
                             "the repro.serve.access logger")
    return parser


def _cli_evaluator(name, no_batch):
    """The evaluator the dse/dse-shard commands should use.

    ``--no-batch`` swaps the batch-capable built-ins for their per-point
    reference implementations (bit-identical results, one evaluator call
    per grid point) — analytical, cycle, and both phases of a hybrid
    sweep.  Manifests are unaffected: batched and per-point variants
    serialise to the same ``{"name": ...}`` spec, so batched and
    per-point shards can share one store.
    """
    if not no_batch:
        return name
    from .sim.evaluator import (
        AnalyticalEvaluator,
        CycleSimEvaluator,
        HybridEvaluator,
    )

    if name == "analytical":
        return AnalyticalEvaluator()
    if name == "cycle":
        return CycleSimEvaluator()
    if name == "hybrid":
        return HybridEvaluator(
            coarse=AnalyticalEvaluator(), fine=CycleSimEvaluator()
        )
    return name


def _load_fault_plan(arg):
    """Parse ``--faults`` (inline JSON object, or a path to one).

    Returns the validated spec dict, or None when the flag was absent.
    Validation failures surface as :class:`SystemExit` with the plan
    field that was wrong, before any evaluator or store work starts.
    """
    if not arg:
        return None
    import json

    from .faults import FaultPlanError, plan_from_spec

    text = arg
    if not arg.lstrip().startswith("{"):
        try:
            with open(arg) as fh:
                text = fh.read()
        except OSError as exc:
            raise SystemExit(f"--faults: cannot read {arg!r}: {exc}")
    try:
        spec = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"--faults: invalid JSON: {exc}")
    try:
        plan_from_spec(spec)
    except FaultPlanError as exc:
        raise SystemExit(f"--faults: {exc}")
    return spec


def _format_eta(eta_seconds):
    """Compact human ETA: ``-`` done, ``?`` unknown, else h/m/s."""
    if eta_seconds is None:
        return "?"
    if eta_seconds <= 0:
        return "-"
    seconds = int(round(eta_seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{seconds % 3600 // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{max(seconds, 1)}s"


def _dse_result(model, sparsity, evaluator_name, grid, points):
    """Print the DSE point table and build the JSON payload.

    The payload itself comes from the shared
    :func:`repro.harness.serialization.dse_result_payload` builder, so
    ``dse``, ``dse-merge`` and the serve layer's results endpoint all
    serialise one sweep identically (the CI smoke jobs assert the JSON
    files are byte-identical across the three surfaces).
    """
    from .harness.serialization import dse_result_payload

    payload = dse_result_payload(model, sparsity, evaluator_name, grid, points)
    names_ = sorted(grid)
    rows = payload["points"]
    frontier_size = sum(1 for row in rows if row["pareto"])
    print(harness.format_table(
        names_ + ["seconds", "energy_J", "EDP", "pareto"],
        [[row["parameters"][n] for n in names_]
         + [row["seconds"], row["energy_joules"], row["edp"],
            "*" if row["pareto"] else ""]
         for row in rows],
        float_fmt="{:.3e}",
    ))
    print(f"\n{len(rows)} points ({evaluator_name} evaluator), "
          f"{frontier_size} on the Pareto frontier")
    return payload


def _run(args):
    models = tuple(args.models) if args.models else harness.DEFAULT_MODELS
    name = args.experiment
    if args.store is not None and name not in ("dse-shard", "dse-fleet",
                                               "dse-merge", "dse-status"):
        raise SystemExit(
            f"unexpected positional argument {args.store!r}: only the "
            "dse-shard/dse-fleet/dse-merge/dse-status commands take a "
            "store directory"
        )
    if args.batch_size is not None and args.batch_size < 1:
        raise SystemExit(
            f"--batch-size must be a positive point count, got "
            f"{args.batch_size}"
        )
    if name == "list":
        for key in sorted(EXPERIMENTS):
            print(f"{key:10s} {EXPERIMENTS[key]}")
        return None

    if name == "serve":
        from .serve import run_server
        if not args.data_dir:
            raise SystemExit("serve requires --data-dir DIR (durable job "
                             "state lives there)")
        if args.serve_workers < 1:
            raise SystemExit(
                f"--serve-workers must be >= 1, got {args.serve_workers}"
            )
        if args.max_pending < 1:
            raise SystemExit(
                f"--max-pending must be >= 1, got {args.max_pending}"
            )
        if args.task_timeout is not None and args.task_timeout <= 0:
            raise SystemExit(
                f"--task-timeout must be positive seconds, got "
                f"{args.task_timeout}"
            )
        if args.task_retries < 0:
            raise SystemExit(
                f"--task-retries must be >= 0, got {args.task_retries}"
            )
        run_server(args.data_dir, host=args.host, port=args.port,
                   workers=args.serve_workers, verbose=args.verbose,
                   max_pending=args.max_pending,
                   task_timeout=args.task_timeout,
                   task_retries=args.task_retries)
        return None

    if name == "fig1":
        result = harness.fig1_accuracy_sparsity()
        print(harness.format_table(
            ["sparsity"] + list(result["curves"]),
            [[s] + [result["curves"][c][i] for c in result["curves"]]
             for i, s in enumerate(result["sparsities"])],
        ))
        return result

    if name in ("fig3", "roofline"):
        result = harness.fig3_roofline()
        from .roofline import sddmm_roofline_points
        from .viz import render_roofline
        print(render_roofline(sddmm_roofline_points()))
        print(f"\nridge: {result['ridge_ops_per_byte']:.2f} Ops/Byte")
        return result

    if name == "fig4":
        result = harness.fig4_breakdown(models=models)
        print(harness.format_table(
            ["model", "SA latency frac", "core frac of SA", "MLP FLOPs frac"],
            [[r["model"], r["sa_latency_fraction"], r["core_fraction_of_sa"],
              r["flops_fraction"]["mlp"]] for r in result],
        ))
        return result

    if name == "fig8":
        result = harness.fig8_polarization(sparsity=args.sparsity)
        print(f"mean polarization: {result['mean_polarization']:.3f}")
        return result

    if name == "fig15":
        result = harness.fig15_speedups(sparsity=args.sparsity, models=models,
                                        end_to_end=args.end_to_end)
        baselines = list(result["mean"])
        rows = [
            [m] + [result["per_model"][m][b] for b in baselines]
            for m in result["per_model"]
        ]
        rows.append(["MEAN"] + [result["mean"][b] for b in baselines])
        print(harness.format_table(["model"] + baselines, rows,
                                   float_fmt="{:.1f}"))
        return result

    if name == "fig17":
        result = harness.fig17_accuracy_latency(models=models,
                                                sparsity=args.sparsity)
        print(harness.format_table(
            ["model", "latency reduction", "accuracy drop"],
            [[r["model"], r["latency_reduction"],
              r["dense_accuracy"] - r["vitcod_accuracy"]] for r in result],
        ))
        return result

    if name == "fig19":
        result = harness.fig19_breakdown_energy(models=models)
        from .viz import render_breakdown
        for design, fr in result["mean_breakdown_at_max_sparsity"].items():
            print(f"{design:14s}", render_breakdown(fr))
        print(f"\nS&C vs Sanger: {result['speedup_sc_only_vs_sanger']:.2f}x; "
              f"AE on top: {result['speedup_ae_on_top']:.2f}x; "
              "energy eff vs Sanger: "
              f"{result['energy_efficiency_vs_sanger']:.2f}x")
        return result

    if name == "table1":
        result = harness.table1_taxonomy()
        print(harness.format_table(
            ["accelerator", "field", "dataflow", "pattern", "codesign"],
            [[r["accelerator"], r["field"], r["dataflow"], r["pattern"],
              "yes" if r["codesign"] else "no"] for r in result],
        ))
        return result

    if name == "ablation":
        result = harness.ablation_prune_reorder()
        print(harness.format_table(
            ["sparsity", "pruning benefit", "reordering benefit"],
            [[r["sparsity"], r["pruning_benefit"], r["reordering_benefit"]]
             for r in result["rows"]],
        ))
        return result

    if name == "nlp":
        result = harness.nlp_comparison()
        print(harness.format_table(
            ["sparsity", "speedup vs Sanger", "fixed-mask BLEU drop"],
            [[r["sparsity"], r["speedup_vs_sanger"],
              r["fixed_mask_bleu_drop"]] for r in result],
        ))
        return result

    if name == "dse":
        from . import obs
        from .harness.dse import sweep_design_space
        from .perf import cached_model_workload
        model = args.models[0] if args.models else "deit-tiny"
        grid = parse_grid(args.grid)
        evaluator = _cli_evaluator(args.evaluator, args.no_batch)
        faults = _load_fault_plan(args.faults)
        if faults is not None:
            # Serial sweeps have no retry layer: transient injected
            # failures surface as dropped points (the dist runner is
            # the path that heals them).  Hybrid's two-phase pruning
            # would silently degrade under a per-point wrapper, so the
            # combination is rejected rather than mis-simulated.
            if args.evaluator == "hybrid":
                raise SystemExit(
                    "--faults with the hybrid evaluator needs the "
                    "sharded path (dse-shard/dse-fleet), which wraps "
                    "only the coarse phase"
                )
            from .faults import FaultyEvaluator
            evaluator = FaultyEvaluator(evaluator, faults)
        # --trace installs a span collector on the default registry for
        # the sweep's duration; tracing observes only — the JSON result
        # stays byte-identical with and without it.
        tracer = obs.tracing(path=args.trace) if args.trace else None
        with tracer if tracer is not None else contextlib.nullcontext():
            with obs.span("dse_workload", model=model):
                workload = cached_model_workload(model, sparsity=args.sparsity)
            points = sweep_design_space(
                workload, grid, n_jobs=args.n_jobs,
                evaluator=evaluator,
                chunksize=args.batch_size,
            )
        if args.trace:
            print(f"wrote Chrome trace {args.trace} (load in Perfetto)",
                  file=sys.stderr)
        return _dse_result(model, args.sparsity, args.evaluator, grid,
                           points)

    if name == "dse-shard":
        from .dist import model_workload_spec, run_shard
        from .perf import cached_model_workload
        if not args.shard:
            raise SystemExit("dse-shard requires --shard K/N")
        out = args.out or args.store
        if not out:
            raise SystemExit("dse-shard requires --out DIR (the store "
                             "directory shared by every shard)")
        if args.steal_chunk is not None and args.steal_chunk < 1:
            raise SystemExit(
                f"--steal-chunk must be a positive index count, got "
                f"{args.steal_chunk}"
            )
        if args.handicap < 0:
            raise SystemExit(
                f"--handicap must be non-negative seconds, got "
                f"{args.handicap}"
            )
        model = args.models[0] if args.models else "deit-tiny"
        grid = parse_grid(args.grid)
        evaluator = _cli_evaluator(args.evaluator, args.no_batch)
        faults = _load_fault_plan(args.faults)
        if faults is not None:
            from .faults import FaultyEvaluator
            evaluator = FaultyEvaluator(evaluator, faults)
        workload = cached_model_workload(model, sparsity=args.sparsity)
        run_kwargs = {}
        if args.max_point_retries is not None:
            if args.max_point_retries < 0:
                raise SystemExit(
                    f"--max-point-retries must be >= 0, got "
                    f"{args.max_point_retries}"
                )
            run_kwargs["max_point_retries"] = args.max_point_retries
        run = run_shard(
            workload, grid, args.shard, out,
            evaluator=evaluator,
            n_jobs=args.n_jobs, chunksize=args.batch_size,
            workload_spec=model_workload_spec(model, sparsity=args.sparsity),
            steal=args.steal, steal_chunk=args.steal_chunk,
            claim_ttl=args.claim_ttl, handicap=args.handicap,
            heartbeat=args.heartbeat, **run_kwargs,
        )
        line = (f"shard {run.shard}: {run.evaluated} evaluated, "
                f"{run.skipped} already in store, {run.failed} failed "
                f"({run.total} grid points owned)")
        if run.retried:
            line += f"; {run.retried} transient-failure retries"
        if args.steal:
            line += f"; {run.stolen} stolen from other shards"
        print(line)
        print(f"store: {run.store}")
        return {
            "shard": str(run.shard),
            "store": str(run.store),
            "total": run.total,
            "evaluated": run.evaluated,
            "skipped": run.skipped,
            "failed": run.failed,
            "stolen": run.stolen,
            "retried": run.retried,
            "complete": run.complete,
        }

    if name == "dse-fleet":
        import json as _json

        from .dist import run_fleet
        out = args.out or args.store
        if not out:
            raise SystemExit("dse-fleet requires --out DIR (the store "
                             "directory shared by every shard)")
        if args.num_shards < 1:
            raise SystemExit(
                f"--num-shards must be >= 1, got {args.num_shards}"
            )
        faults = _load_fault_plan(args.faults)
        model = args.models[0] if args.models else "deit-tiny"
        shard_args = ["--models", model, "--sparsity", str(args.sparsity),
                      "--evaluator", args.evaluator]
        for spec in args.grid or ():
            shard_args += ["--grid", spec]
        if args.no_batch:
            shard_args.append("--no-batch")
        if args.batch_size is not None:
            shard_args += ["--batch-size", str(args.batch_size)]
        if args.n_jobs != 1:
            shard_args += ["--n-jobs", str(args.n_jobs)]
        if args.steal:
            shard_args.append("--steal")
        if args.steal_chunk is not None:
            shard_args += ["--steal-chunk", str(args.steal_chunk)]
        if args.claim_ttl != 600.0:
            shard_args += ["--claim-ttl", str(args.claim_ttl)]
        if args.handicap:
            shard_args += ["--handicap", str(args.handicap)]
        if args.max_point_retries is not None:
            shard_args += ["--max-point-retries", str(args.max_point_retries)]
        if faults is not None:
            shard_args += ["--faults", _json.dumps(faults)]
        fleet = run_fleet(
            out, args.num_shards, shard_args,
            hang_after=args.hang_after, max_restarts=args.max_restarts,
        )
        line = (f"fleet of {fleet.num_shards} shards: {fleet.restarts} "
                f"relaunches ({fleet.hang_kills} hang kills)")
        if fleet.abandoned:
            line += f"; abandoned shards: {list(fleet.abandoned)}"
        line += "; store " + ("complete" if fleet.complete else "INCOMPLETE")
        print(line)
        print(f"store: {fleet.store}")
        result = {
            "store": str(fleet.store),
            "num_shards": fleet.num_shards,
            "restarts": fleet.restarts,
            "hang_kills": fleet.hang_kills,
            "abandoned": list(fleet.abandoned),
            "complete": fleet.complete,
            "ok": fleet.ok,
        }
        if not fleet.complete:
            if args.json:
                with open(args.json, "w") as fh:
                    fh.write(to_json(result))
            raise SystemExit(
                "dse-fleet: store is incomplete (some grid indices have "
                "no record); re-run the same command to resume, or run "
                "with --steal so survivors absorb abandoned shards"
            )
        return result

    if name == "dse-merge":
        from .dist import merge_store
        store = args.store or args.out
        if not store:
            raise SystemExit("dse-merge requires a store directory")
        merged = merge_store(store, n_jobs=args.n_jobs)
        manifest = merged.manifest
        workload_spec = manifest.get("workload", {})
        line = (f"merged {manifest['num_shards']} shards "
                f"({manifest['grid_size']} grid points, {merged.dropped} "
                "dropped)")
        if merged.duplicates:
            line += (f"; {merged.duplicates} redundant duplicate records "
                     "tolerated (bit-identical)")
        print(line)
        return _dse_result(
            workload_spec.get("model"),
            workload_spec.get("sparsity"),
            manifest["evaluator"]["name"],
            {k: tuple(v) for k, v in manifest["grid"].items()},
            list(merged.points),
        )

    if name == "dse-status":
        from .dist import store_status
        store = args.store or args.out
        if not store:
            raise SystemExit("dse-status requires a store directory")
        if args.stall_after is not None and args.stall_after <= 0:
            raise SystemExit(
                f"--stall-after must be positive seconds, got "
                f"{args.stall_after}"
            )
        status = store_status(store, stall_after=args.stall_after)
        print(harness.format_table(
            ["shard", "scored", "failed", "stolen", "steals", "retries",
             "pending", "total", "done%", "ok%", "eta", "state"],
            [[str(s.shard), s.scored, s.failed, s.stolen, s.steals,
              s.retries, s.pending, s.total, f"{s.fraction_done:.0%}",
              f"{s.fraction_scored:.0%}", _format_eta(s.eta_seconds),
              "STALLED" if s.stalled else ""]
             for s in status.shards],
        ))
        line = (f"\n{status.done}/{status.grid_size} grid points done "
                f"({status.fraction_done:.0%}), {status.scored} scored, "
                f"{status.failed} failed")
        if status.stolen:
            line += f", {status.stolen} stolen"
        if status.retries:
            line += f", {status.retries} retries"
        if status.stalled_shards:
            line += (", shards "
                     f"{[str(s) for s in status.stalled_shards]} STALLED")
        if not status.complete:
            line += f"; ETA {_format_eta(status.eta_seconds)}"
        if status.manifest["evaluator"].get("name") == "hybrid":
            line += f"; {status.fine_records} survivors fine re-scored"
        print(line)
        return {
            "grid_size": status.grid_size,
            "done": status.done,
            "scored": status.scored,
            "failed": status.failed,
            "stolen": status.stolen,
            "steals": status.steals,
            "fraction_done": status.fraction_done,
            "fraction_scored": status.fraction_scored,
            "eta_seconds": status.eta_seconds,
            "complete": status.complete,
            "fine_records": status.fine_records,
            "retries": status.retries,
            "stalled_shards": [str(s) for s in status.stalled_shards],
            "shards": [
                {"shard": str(s.shard), "done": s.done,
                 "scored": s.scored, "failed": s.failed,
                 "stolen": s.stolen, "steals": s.steals,
                 "retries": s.retries, "stalled": s.stalled,
                 "total": s.total,
                 "fraction_done": s.fraction_done,
                 "fraction_scored": s.fraction_scored,
                 "eta_seconds": s.eta_seconds}
                for s in status.shards
            ],
        }

    if name == "polarize":
        from .sparsity import split_and_conquer, synthetic_vit_attention
        from .viz import render_mask
        maps = synthetic_vit_attention(args.tokens, num_heads=args.heads)
        result_obj = split_and_conquer(maps, target_sparsity=args.sparsity)
        print(render_mask(result_obj.partitions[0].reordered_mask))
        print(f"\nsparsity {result_obj.sparsity:.1%}, "
              f"global tokens {result_obj.num_global_tokens.tolist()}")
        return {
            "sparsity": result_obj.sparsity,
            "num_global_tokens": result_obj.num_global_tokens.tolist(),
        }

    raise SystemExit(f"unknown experiment {name!r}")  # pragma: no cover


def main(argv=None):
    args = build_parser().parse_args(argv)
    result = _run(args)
    if args.json and result is not None:
        with open(args.json, "w") as fh:
            fh.write(to_json(result))
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
