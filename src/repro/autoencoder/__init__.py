"""ViTCoD's learnable auto-encoder module and unified algorithm pipeline."""

from .module import HeadAutoEncoder, default_ae_factory
from .training import (
    AETrainingResult,
    attach_autoencoders,
    reconstruction_term,
    finetune_with_autoencoder,
)
from .pipeline import ViTCoDPipelineResult, run_vitcod_pipeline

__all__ = [
    "HeadAutoEncoder",
    "default_ae_factory",
    "AETrainingResult",
    "attach_autoencoders",
    "reconstruction_term",
    "finetune_with_autoencoder",
    "ViTCoDPipelineResult",
    "run_vitcod_pipeline",
]
