"""The unified ViTCoD algorithm pipeline (Fig. 10).

Input: a pretrained ViT.
Step 1: insert AE modules into every attention head group and finetune.
Step 2: extract averaged attention maps, run split-and-conquer, install the
fixed masks, and finetune again to restore accuracy.

Output: a :class:`ViTCoDPipelineResult` carrying the finetuned model, the
per-layer :class:`~repro.sparsity.SplitConquerResult`s (the accelerator's
workload description), and accuracy bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..models.extraction import extract_average_attention
from ..models.zoo import TrainResult, train_classifier, evaluate_classifier
from ..sparsity.split_conquer import SplitConquerResult, split_and_conquer
from .training import attach_autoencoders, reconstruction_term

__all__ = ["ViTCoDPipelineResult", "run_vitcod_pipeline"]


@dataclass
class ViTCoDPipelineResult:
    """Everything downstream consumers need after the unified pipeline."""

    model: object
    layer_results: List[SplitConquerResult]
    baseline_accuracy: float
    ae_accuracy: float
    final_accuracy: float
    compression: float
    target_sparsity: float
    ae_history: List[dict] = field(default_factory=list)
    mask_history: List[dict] = field(default_factory=list)

    @property
    def accuracy_drop(self):
        return self.baseline_accuracy - self.final_accuracy

    @property
    def achieved_sparsity(self):
        return float(np.mean([r.sparsity for r in self.layer_results]))

    @property
    def num_global_tokens(self):
        """Per-layer arrays of per-head global-token counts."""
        return [r.num_global_tokens for r in self.layer_results]


def run_vitcod_pipeline(
    pretrained_result: TrainResult,
    target_sparsity=0.9,
    theta_d=0.25,
    compression: Optional[float] = 0.5,
    ae_epochs=4,
    mask_epochs=4,
    lr=1e-3,
    seed=0,
):
    """Run the two-step ViTCoD pipeline on a pretrained classification model.

    Parameters
    ----------
    pretrained_result:
        Output of :func:`repro.models.pretrained` (model + dataset + metrics).
    target_sparsity:
        Attention sparsity the fixed masks should reach (paper: up to 90-95%).
    theta_d:
        Dense threshold for global-token detection (fraction of N).
    compression:
        AE head-compression ratio; ``None`` skips Step 1 (ablation:
        split-and-conquer only).
    """
    model = pretrained_result.model
    dataset = pretrained_result.dataset
    baseline_acc = pretrained_result.test_accuracy
    x_tr, y_tr, x_te, y_te = dataset.split()

    # ------------------------------------------------------------------
    # Step 1: insert AE modules and finetune jointly (Eq. 2).
    # ------------------------------------------------------------------
    ae_history = []
    if compression is not None:
        attach_autoencoders(model, compression=compression, seed=seed)
        ae_history = train_classifier(
            model, dataset, epochs=ae_epochs, lr=lr, seed=seed,
            extra_loss_fn=reconstruction_term,
        )
    _, ae_acc = evaluate_classifier(model, x_te, y_te)

    # ------------------------------------------------------------------
    # Step 2: split-and-conquer on averaged maps, install masks, finetune.
    # ------------------------------------------------------------------
    maps = extract_average_attention(model, x_tr)
    layer_results = [
        split_and_conquer(m, target_sparsity=target_sparsity, theta_d=theta_d)
        for m in maps
    ]
    model.set_masks([r.mask for r in layer_results])

    extra = (lambda m: reconstruction_term(m)) if compression is not None else None
    mask_history = train_classifier(
        model, dataset, epochs=mask_epochs, lr=lr, seed=seed, extra_loss_fn=extra,
    )
    _, final_acc = evaluate_classifier(model, x_te, y_te)

    return ViTCoDPipelineResult(
        model=model,
        layer_results=layer_results,
        baseline_accuracy=baseline_acc,
        ae_accuracy=ae_acc,
        final_accuracy=final_acc,
        compression=compression if compression is not None else 1.0,
        target_sparsity=target_sparsity,
        ae_history=ae_history,
        mask_history=mask_history,
    )
