"""Joint finetuning of ViT weights and AE modules (Eq. 2, Fig. 9b / Fig. 18).

``L = L_CE + L_Recons`` where the reconstruction term penalises the
discrepancy between the original and the encoded-then-decoded Q/K tensors of
every attention layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


from ..nn import functional as F
from ..models.zoo import train_classifier, evaluate_classifier
from .module import default_ae_factory

__all__ = ["AETrainingResult", "attach_autoencoders", "reconstruction_term",
           "finetune_with_autoencoder"]


@dataclass
class AETrainingResult:
    """Training trajectory of a model with AE modules attached."""

    history: List[dict] = field(default_factory=list)
    baseline_accuracy: float = 0.0
    final_accuracy: float = 0.0

    @property
    def accuracy_drop(self):
        return self.baseline_accuracy - self.final_accuracy

    @property
    def epochs(self):
        return [h["epoch"] for h in self.history]

    @property
    def test_losses(self):
        return [h["test_loss"] for h in self.history]

    @property
    def recon_losses(self):
        return [h["recon_loss"] for h in self.history]

    @property
    def accuracies(self):
        return [h["test_accuracy"] for h in self.history]


def attach_autoencoders(model, compression=0.5, seed=0):
    """Insert an AE module into every attention layer (Fig. 10, Step 1)."""
    model.set_autoencoder(default_ae_factory(compression=compression, seed=seed))
    return model


def reconstruction_term(model, weight=1.0):
    """Sum of L1 reconstruction losses over all recorded Q/K pairs."""
    pairs = model.reconstruction_pairs()
    if not pairs:
        raise RuntimeError(
            "no reconstruction pairs recorded — run a forward pass with AE "
            "modules attached before computing the reconstruction term"
        )
    total = None
    for original, reconstructed in pairs:
        term = F.reconstruction_loss(original, reconstructed)
        total = term if total is None else total + term
    return total * (weight / len(pairs))


def finetune_with_autoencoder(
    model,
    dataset,
    baseline_accuracy,
    compression=0.5,
    epochs=6,
    lr=1e-3,
    recon_weight=1.0,
    seed=0,
):
    """Attach AEs and jointly finetune; returns an :class:`AETrainingResult`.

    The reproduction analogue of the paper's 100-epoch DeiT/LeViT finetune —
    our models and datasets are small, so a handful of epochs reaches the
    recovered plateau visible in Fig. 9b.
    """
    attach_autoencoders(model, compression=compression, seed=seed)
    history = train_classifier(
        model,
        dataset,
        epochs=epochs,
        lr=lr,
        seed=seed,
        extra_loss_fn=lambda m: reconstruction_term(m, weight=recon_weight),
    )
    _, _, x_te, y_te = dataset.split()
    _, final_acc = evaluate_classifier(model, x_te, y_te)
    return AETrainingResult(
        history=history,
        baseline_accuracy=baseline_accuracy,
        final_accuracy=final_acc,
    )
