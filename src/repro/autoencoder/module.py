"""The lightweight learnable auto-encoder module (§IV-C, Fig. 9a).

Naively shrinking the Q/K feature dimension would lower-rank the attention
map (``rank(S) ≤ min(rank(Q), rank(K))``) and hurt accuracy.  ViTCoD instead
compresses along the **head** dimension — different heads' Q/K vectors are
redundant — with a tiny linear encoder (e.g. a 6×3 matrix mapping 6 heads to
3) and a matching decoder.  On hardware, encode runs before Q/K are written
off-chip and decode after they are read back, halving attention-input DRAM
traffic at the cost of a small, pipelineable MAC workload.
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Module, Parameter

__all__ = ["HeadAutoEncoder", "default_ae_factory"]


class HeadAutoEncoder(Module):
    """Linear encoder/decoder pair acting across the attention-head axis.

    Operates on tensors of shape (..., H, N, dk): the head axis is third
    from the end.  ``compression`` is the ratio of compressed to original
    heads (the paper uses 0.5, e.g. 12 → 6 heads).
    """

    def __init__(self, num_heads, compression=0.5, rng=None):
        super().__init__()
        if not 0.0 < compression <= 1.0:
            raise ValueError(f"compression must be in (0, 1], got {compression}")
        self.num_heads = num_heads
        self.compressed_heads = max(1, int(round(num_heads * compression)))
        self.compression = self.compressed_heads / num_heads
        rng = rng or np.random.default_rng()
        bound = np.sqrt(6.0 / (num_heads + self.compressed_heads))
        enc = rng.uniform(-bound, bound, (num_heads, self.compressed_heads))
        # Decoder initialised as the pseudo-inverse of the encoder, so
        # decode∘encode starts as the best rank-Hc projection of head space
        # and finetuning starts from a near-recovered model (Fig. 9b shows
        # the trajectory recovering toward the vanilla accuracy).
        self.enc_weight = Parameter(enc)
        self.dec_weight = Parameter(np.linalg.pinv(enc))

    def encode(self, x):
        """(…, H, N, dk) → (…, Hc, N, dk)."""
        moved = x.swapaxes(-3, -1)  # (..., dk, N, H)
        z = moved @ self.enc_weight  # (..., dk, N, Hc)
        return z.swapaxes(-3, -1)

    def decode(self, z):
        """(…, Hc, N, dk) → (…, H, N, dk)."""
        moved = z.swapaxes(-3, -1)
        out = moved @ self.dec_weight
        return out.swapaxes(-3, -1)

    def forward(self, x):
        return self.decode(self.encode(x))

    # ------------------------------------------------------------------
    # Hardware-facing metadata
    # ------------------------------------------------------------------
    @property
    def traffic_ratio(self):
        """Off-chip Q/K traffic relative to no compression (e.g. 0.5)."""
        return self.compressed_heads / self.num_heads

    def macs_per_token(self, head_dim):
        """Encoder + decoder MACs to process one token's Q (or K) vector."""
        return 2 * self.num_heads * self.compressed_heads * head_dim

    def weight_footprint(self):
        """Parameter count of the AE (pre-loaded on chip, §V-B.2)."""
        return self.enc_weight.size + self.dec_weight.size


def default_ae_factory(compression=0.5, seed=0):
    """Factory for :meth:`VisionTransformer.set_autoencoder` — one AE per
    layer, seeded deterministically."""
    counter = {"i": 0}

    def factory(num_heads, head_dim):
        rng = np.random.default_rng(seed + counter["i"])
        counter["i"] += 1
        return HeadAutoEncoder(num_heads, compression=compression, rng=rng)

    return factory
