"""Multi-head self-attention with the two ViTCoD hooks.

The paper modifies vanilla MHSA (Eq. 1) in two ways:

1. **Fixed sparse mask** — the split-and-conquer output ``m ⊙ A′`` is applied
   as a per-head binary mask on the attention scores, fixed during both
   finetuning and inference (§IV-B).
2. **Auto-encoder module** — Q and K are passed through a head-dimension
   encoder/decoder pair; the *reconstructed* Q′/K′ are what the attention
   actually consumes, and the discrepancy feeds the reconstruction loss
   (§IV-C, Eq. 2).

Both hooks are optional so the same class serves the dense baseline, the
pruned model, and the full ViTCoD pipeline.
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Module, Linear

__all__ = ["MultiHeadSelfAttention"]

_NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """MHSA over (batch, tokens, dim) with optional fixed mask and AE hook.

    Parameters
    ----------
    dim, num_heads:
        Embedding width and head count; ``dim`` must divide evenly.
    rng:
        numpy Generator for weight init.
    """

    def __init__(self, dim, num_heads, rng=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        #: per-head binary mask of shape (heads, tokens, tokens); None = dense.
        self.attention_mask = None
        #: optional auto-encoder module with encode/decode over head dim.
        self.autoencoder = None
        #: set True to record attention probabilities during forward.
        self.record_attention = False
        self.last_attention = None
        self.last_reconstruction_pairs = ()

    def set_mask(self, mask):
        """Install a fixed sparse attention mask.

        ``mask`` may be (tokens, tokens) shared across heads or
        (heads, tokens, tokens) per-head; entries are truthy where attention
        is *kept*.
        """
        if mask is None:
            self.attention_mask = None
            return
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim == 2:
            mask = np.broadcast_to(mask, (self.num_heads,) + mask.shape)
        if mask.ndim != 3 or mask.shape[0] != self.num_heads:
            raise ValueError(
                f"mask must be (tokens, tokens) or ({self.num_heads}, tokens, tokens); "
                f"got {mask.shape}"
            )
        if not mask.any(axis=-1).all():
            raise ValueError("mask has a fully-pruned row; softmax would be undefined")
        self.attention_mask = np.ascontiguousarray(mask)

    def forward(self, x):
        batch, tokens, _ = x.shape
        qkv = self.qkv(x)  # (B, N, 3D)
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, N, dk)
        q, k, v = qkv[0], qkv[1], qkv[2]

        self.last_reconstruction_pairs = ()
        if self.autoencoder is not None:
            q_rec = self.autoencoder(q)
            k_rec = self.autoencoder(k)
            self.last_reconstruction_pairs = ((q, q_rec), (k, k_rec))
            q, k = q_rec, k_rec

        scores = (q @ k.swapaxes(-1, -2)) * self.scale  # (B, H, N, N)
        if self.attention_mask is not None:
            if self.attention_mask.shape[-1] != tokens:
                raise ValueError(
                    f"mask is for {self.attention_mask.shape[-1]} tokens, "
                    f"input has {tokens}"
                )
            scores = scores.masked_fill(~self.attention_mask[None], _NEG_INF)
        attn = scores.softmax(axis=-1)

        if self.record_attention:
            self.last_attention = attn.data.copy()

        out = attn @ v  # (B, H, N, dk)
        out = out.transpose(0, 2, 1, 3).reshape(batch, tokens, self.dim)
        return self.proj(out)
