"""Attention-structure diagnostics (paper Fig. 2 / §IV-B observations).

The split-and-conquer design rests on two empirical properties of trained
ViT attention: (1) mass concentrates near the diagonal because "adjacent
input tokens/patches tend to have a higher correlation than others", and
(2) a few global tokens absorb mass from every query.  These functions
quantify both on any attention map so the properties can be *tested* on our
trained models rather than assumed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "distance_profile",
    "global_column_share",
    "head_agreement",
    "structure_report",
]


def _as_maps(attention_maps):
    maps = np.asarray(attention_maps, dtype=np.float64)
    if maps.ndim == 2:
        maps = maps[None]
    if maps.ndim != 3 or maps.shape[-1] != maps.shape[-2]:
        raise ValueError(f"expected (H, N, N) maps, got {maps.shape}")
    return maps


def distance_profile(attention_maps, max_distance=None):
    """Mean attention mass as a function of token distance |i − j|.

    Returns an array ``profile`` where ``profile[d]`` is the average
    attention probability between tokens ``d`` apart.  For ViT-like maps the
    profile is sharply decreasing near d=0 (the diagonal concentration the
    sparser engine's locality model relies on).
    """
    maps = _as_maps(attention_maps)
    n = maps.shape[-1]
    if max_distance is None:
        max_distance = n - 1
    max_distance = min(max_distance, n - 1)
    idx = np.arange(n)
    dist = np.abs(idx[:, None] - idx[None, :])
    profile = np.empty(max_distance + 1)
    for d in range(max_distance + 1):
        sel = dist == d
        profile[d] = maps[:, sel].mean()
    return profile


def global_column_share(attention_maps, top_k=None):
    """Fraction of total attention mass absorbed by the top-k columns.

    ``top_k`` defaults to ~6 % of tokens (the paper's typical global-token
    count at 197 tokens).  High values mean genuine global tokens exist.
    """
    maps = _as_maps(attention_maps)
    n = maps.shape[-1]
    if top_k is None:
        top_k = max(1, int(round(0.06 * n)))
    top_k = min(top_k, n)
    shares = []
    for head in maps:
        col_mass = head.sum(axis=0)
        top = np.sort(col_mass)[::-1][:top_k].sum()
        shares.append(top / col_mass.sum())
    return float(np.mean(shares))


def head_agreement(attention_maps, top_k=None):
    """Mean pairwise Jaccard overlap of per-head top-k global columns.

    The AE module's hypothesis is cross-head redundancy; heads whose global
    columns agree share Q/K structure the encoder can compress.
    """
    maps = _as_maps(attention_maps)
    num_heads, n, _ = maps.shape
    if num_heads < 2:
        return 1.0
    if top_k is None:
        top_k = max(1, int(round(0.06 * n)))
    tops = [
        set(np.argsort(head.sum(axis=0))[::-1][:top_k].tolist())
        for head in maps
    ]
    overlaps = []
    for i in range(num_heads):
        for j in range(i + 1, num_heads):
            union = tops[i] | tops[j]
            overlaps.append(len(tops[i] & tops[j]) / len(union))
    return float(np.mean(overlaps))


def structure_report(attention_maps):
    """All diagnostics in one dict (used by tests and the CLI)."""
    profile = distance_profile(attention_maps, max_distance=8)
    return {
        "near_mass_ratio": float(profile[:3].mean() / max(profile[3:].mean(),
                                                          1e-12)),
        "distance_profile": profile,
        "global_column_share": global_column_share(attention_maps),
        "head_agreement": head_agreement(attention_maps),
    }
