"""Attention-map extraction — the input side of Algorithm 1.

The paper "extract[s] averaged attention maps by forwarding the pretrained
models on all training samples" (§IV-B).  This module performs exactly that
over a numpy model: run the training set through the model with attention
recording enabled and return per-layer, per-head maps averaged over samples.
"""

from __future__ import annotations

import numpy as np

from ..nn.autograd import no_grad

__all__ = ["extract_average_attention", "normalize_rows"]


def extract_average_attention(model, inputs, batch_size=64):
    """Average attention probabilities over ``inputs``.

    Parameters
    ----------
    model:
        Any model exposing ``attention_modules()`` (ViT / LeViT / Strided).
    inputs:
        Array of shape (num_samples, tokens, patch_dim).
    batch_size:
        Forward-pass batch size.

    Returns
    -------
    list of ndarray
        One array per attention layer, shape (heads, N, N), where N is that
        layer's token count (LeViT stages differ).  Rows are probability
        distributions (softmax outputs averaged over samples).
    """
    attns = model.attention_modules()
    previous_flags = [a.record_attention for a in attns]
    for attn in attns:
        attn.record_attention = True

    sums = [None] * len(attns)
    count = 0
    try:
        with no_grad():
            for start in range(0, len(inputs), batch_size):
                batch = inputs[start : start + batch_size]
                model(batch)
                for i, attn in enumerate(attns):
                    layer_sum = attn.last_attention.sum(axis=0)  # over batch
                    if sums[i] is None:
                        sums[i] = layer_sum
                    else:
                        sums[i] += layer_sum
                count += len(batch)
    finally:
        for attn, flag in zip(attns, previous_flags):
            attn.record_attention = flag

    if count == 0:
        raise ValueError("no input samples provided")
    return [s / count for s in sums]


def normalize_rows(attention_map):
    """Renormalise each row of a (…, N, N) map to sum to 1."""
    attention_map = np.asarray(attention_map, dtype=np.float64)
    row_sums = attention_map.sum(axis=-1, keepdims=True)
    row_sums = np.where(row_sums <= 0, 1.0, row_sums)
    return attention_map / row_sums
