"""Model configurations for every ViT the paper evaluates (§VI-A).

Two scales coexist:

* **Paper scale** (``paper_*`` fields): the true architectural dimensions of
  DeiT-Tiny/Small/Base, LeViT-128/192/256 and the Strided Transformer.  These
  drive the hardware simulators and analytical platform models — workload
  sizes (tokens, heads, feature dims, layer counts) must match the paper for
  the speedup shapes to be meaningful.
* **Sim scale** (``sim_*`` fields): reduced dimensions used when actually
  *training* the numpy models on synthetic data (pure-Python training at
  paper scale would be prohibitively slow and is unnecessary: the algorithm
  operates on attention maps whose structure is scale-independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["StageSpec", "ModelConfig", "MODEL_REGISTRY", "get_config", "list_models"]


@dataclass(frozen=True)
class StageSpec:
    """One stage of a (possibly pyramidal) ViT.

    ``num_tokens`` includes the CLS token where the architecture has one.
    """

    depth: int
    num_heads: int
    embed_dim: int
    num_tokens: int

    @property
    def head_dim(self):
        return self.embed_dim // self.num_heads

    def __post_init__(self):
        if self.embed_dim % self.num_heads != 0:
            raise ValueError(
                f"embed_dim {self.embed_dim} not divisible by heads {self.num_heads}"
            )


@dataclass(frozen=True)
class ModelConfig:
    """Full description of one evaluated model."""

    name: str
    family: str  # "deit" | "levit" | "strided"
    task: str  # "classification" | "pose"
    paper_stages: Tuple[StageSpec, ...]
    sim_stages: Tuple[StageSpec, ...]
    mlp_ratio: float = 4.0
    # Fraction of end-to-end EdgeGPU latency in the self-attention module
    # (paper Fig. 4; LeViT-128 peaks at 69%).
    attention_latency_fraction: float = 0.5

    @property
    def paper_num_layers(self):
        return sum(s.depth for s in self.paper_stages)

    def paper_attention_workloads(self):
        """Per-layer (num_tokens, num_heads, head_dim) tuples at paper scale."""
        out = []
        for stage in self.paper_stages:
            out.extend(
                [(stage.num_tokens, stage.num_heads, stage.head_dim)] * stage.depth
            )
        return out

    def paper_attention_flops(self):
        """FLOPs of S=Q·Kᵀ and S·V across all layers (2 FLOPs per MAC)."""
        total = 0
        for n, h, dk in self.paper_attention_workloads():
            total += 2 * h * (n * n * dk) * 2  # QK^T and SV
        return total

    def paper_linear_flops(self):
        """FLOPs of QKV/output projections + MLP across all layers."""
        total = 0
        for stage in self.paper_stages:
            d = stage.embed_dim
            n = stage.num_tokens
            per_layer = 2 * n * d * (3 * d) + 2 * n * d * d  # QKV gen + out proj
            per_layer += 2 * 2 * n * d * int(d * self.mlp_ratio)  # MLP fc1+fc2
            total += per_layer * stage.depth
        return total


def _single_stage(depth, heads, dim, tokens):
    return (StageSpec(depth=depth, num_heads=heads, embed_dim=dim, num_tokens=tokens),)


_SIM_DEIT = _single_stage(depth=4, heads=4, dim=32, tokens=17)
_SIM_LEVIT = (
    StageSpec(depth=2, num_heads=4, embed_dim=32, num_tokens=16),
    StageSpec(depth=2, num_heads=4, embed_dim=32, num_tokens=4),
)
_SIM_STRIDED = _single_stage(depth=3, heads=4, dim=32, tokens=27)

MODEL_REGISTRY = {
    "deit-tiny": ModelConfig(
        name="deit-tiny",
        family="deit",
        task="classification",
        paper_stages=_single_stage(12, 3, 192, 197),
        sim_stages=_SIM_DEIT,
        attention_latency_fraction=0.54,
    ),
    "deit-small": ModelConfig(
        name="deit-small",
        family="deit",
        task="classification",
        paper_stages=_single_stage(12, 6, 384, 197),
        sim_stages=_SIM_DEIT,
        attention_latency_fraction=0.53,
    ),
    "deit-base": ModelConfig(
        name="deit-base",
        family="deit",
        task="classification",
        paper_stages=_single_stage(12, 12, 768, 197),
        sim_stages=_SIM_DEIT,
        attention_latency_fraction=0.51,
    ),
    "levit-128": ModelConfig(
        name="levit-128",
        family="levit",
        task="classification",
        paper_stages=(
            StageSpec(4, 4, 128, 196),
            StageSpec(4, 8, 256, 49),
            StageSpec(4, 12, 384, 16),
        ),
        sim_stages=_SIM_LEVIT,
        mlp_ratio=2.0,
        attention_latency_fraction=0.69,
    ),
    "levit-192": ModelConfig(
        name="levit-192",
        family="levit",
        task="classification",
        paper_stages=(
            StageSpec(4, 3, 192, 196),
            StageSpec(4, 6, 288, 49),
            StageSpec(4, 8, 384, 16),
        ),
        sim_stages=_SIM_LEVIT,
        mlp_ratio=2.0,
        attention_latency_fraction=0.62,
    ),
    "levit-256": ModelConfig(
        name="levit-256",
        family="levit",
        task="classification",
        paper_stages=(
            StageSpec(4, 4, 256, 196),
            StageSpec(4, 6, 384, 49),
            StageSpec(4, 8, 512, 16),
        ),
        sim_stages=_SIM_LEVIT,
        mlp_ratio=2.0,
        attention_latency_fraction=0.60,
    ),
    "strided-transformer": ModelConfig(
        name="strided-transformer",
        family="strided",
        task="pose",
        paper_stages=_single_stage(6, 8, 256, 351),
        sim_stages=_SIM_STRIDED,
        mlp_ratio=2.0,
        attention_latency_fraction=0.55,
    ),
}

#: BERT-Base-like NLP workload for the §VI-B NLP-model discussion.
NLP_BERT_BASE = ModelConfig(
    name="bert-base-nlp",
    family="nlp",
    task="classification",
    paper_stages=_single_stage(12, 12, 768, 512),
    sim_stages=_SIM_DEIT,
)


def get_config(name):
    """Look up a model config by name (raises ``KeyError`` with suggestions)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key]


def list_models():
    return sorted(MODEL_REGISTRY)
