"""DeiT-style Vision Transformer (paper Fig. 7) at simulation scale."""

from __future__ import annotations

import numpy as np

from ..nn.autograd import Tensor
from ..nn.modules import Module, Parameter, Linear, LayerNorm, Mlp
from .attention import MultiHeadSelfAttention
from .config import ModelConfig

__all__ = ["TransformerBlock", "VisionTransformer", "build_vit"]


class TransformerBlock(Module):
    """Pre-norm transformer block: LN → MHSA → +res, LN → MLP → +res."""

    def __init__(self, dim, num_heads, mlp_ratio=4.0, rng=None):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = Mlp(dim, int(dim * mlp_ratio), rng=rng)

    def forward(self, x):
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class VisionTransformer(Module):
    """Patch-token ViT with CLS token and classification head.

    Inputs are pre-extracted patch vectors of shape
    ``(batch, num_patches, patch_dim)`` — the linear patch-embedding step of
    the paper's pipeline is the ``embed`` layer here.
    """

    def __init__(
        self,
        patch_dim,
        num_patches,
        num_classes,
        depth,
        dim,
        num_heads,
        mlp_ratio=4.0,
        seed=0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_patches = num_patches
        self.num_tokens = num_patches + 1  # CLS prepended
        self.dim = dim
        self.embed = Linear(patch_dim, dim, rng=rng)
        self.cls_token = Parameter(rng.standard_normal((1, 1, dim)) * 0.02)
        self.pos_embed = Parameter(
            rng.standard_normal((1, self.num_tokens, dim)) * 0.02
        )
        self.blocks = [
            TransformerBlock(dim, num_heads, mlp_ratio, rng=rng) for _ in range(depth)
        ]
        for i, block in enumerate(self.blocks):
            setattr(self, f"block{i}", block)
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)

    def forward_features(self, x):
        if not isinstance(x, Tensor):
            x = Tensor(x)
        batch = x.shape[0]
        tokens = self.embed(x)
        cls = Tensor.concat(
            [self.cls_token] * batch, axis=0
        )  # (B, 1, D) broadcast of the learned token
        tokens = Tensor.concat([cls, tokens], axis=1)
        tokens = tokens + self.pos_embed
        for block in self.blocks:
            tokens = block(tokens)
        return self.norm(tokens)

    def forward(self, x):
        feats = self.forward_features(x)
        return self.head(feats[:, 0, :])

    # ------------------------------------------------------------------
    # ViTCoD hooks
    # ------------------------------------------------------------------
    def attention_modules(self):
        return [block.attn for block in self.blocks]

    def set_masks(self, masks):
        """Install per-layer fixed masks (list of (H,N,N) arrays or None)."""
        if len(masks) != len(self.blocks):
            raise ValueError(
                f"expected {len(self.blocks)} masks, got {len(masks)}"
            )
        for block, mask in zip(self.blocks, masks):
            block.attn.set_mask(mask)

    def set_autoencoder(self, factory):
        """Attach an AE module to every attention layer.

        ``factory(num_heads, head_dim) -> Module`` builds one AE per layer
        (the paper inserts one per attention head group, Fig. 10 Step 1).
        """
        for block in self.blocks:
            block.attn.autoencoder = factory(
                block.attn.num_heads, block.attn.head_dim
            )

    def reconstruction_pairs(self):
        """All (original, reconstructed) Q/K pairs from the last forward."""
        pairs = []
        for block in self.blocks:
            pairs.extend(block.attn.last_reconstruction_pairs)
        return pairs


def build_vit(config: ModelConfig, patch_dim, num_classes, seed=0):
    """Construct a sim-scale ViT matching ``config.sim_stages`` (single stage)."""
    if len(config.sim_stages) != 1:
        raise ValueError(f"{config.name} is multi-stage; use build_levit instead")
    stage = config.sim_stages[0]
    return VisionTransformer(
        patch_dim=patch_dim,
        num_patches=stage.num_tokens - 1,
        num_classes=num_classes,
        depth=stage.depth,
        dim=stage.embed_dim,
        num_heads=stage.num_heads,
        mlp_ratio=config.mlp_ratio,
        seed=seed,
    )
