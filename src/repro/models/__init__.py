"""ViT model zoo for the ViTCoD reproduction."""

from .config import (
    StageSpec,
    ModelConfig,
    MODEL_REGISTRY,
    NLP_BERT_BASE,
    get_config,
    list_models,
)
from .attention import MultiHeadSelfAttention
from .vit import TransformerBlock, VisionTransformer, build_vit
from .levit import TokenPool, LeViT, build_levit
from .strided import StridedTransformer, build_strided
from .extraction import extract_average_attention, normalize_rows
from .analysis import (
    distance_profile,
    global_column_share,
    head_agreement,
    structure_report,
)
from .zoo import (
    TrainResult,
    train_classifier,
    train_pose_model,
    pretrained,
    evaluate_classifier,
    evaluate_pose,
    clear_zoo_cache,
)

__all__ = [
    "StageSpec",
    "ModelConfig",
    "MODEL_REGISTRY",
    "NLP_BERT_BASE",
    "get_config",
    "list_models",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "VisionTransformer",
    "build_vit",
    "TokenPool",
    "LeViT",
    "build_levit",
    "StridedTransformer",
    "build_strided",
    "extract_average_attention",
    "normalize_rows",
    "distance_profile",
    "global_column_share",
    "head_agreement",
    "structure_report",
    "TrainResult",
    "train_classifier",
    "train_pose_model",
    "pretrained",
    "evaluate_classifier",
    "evaluate_pose",
    "clear_zoo_cache",
]
