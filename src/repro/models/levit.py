"""LeViT-style pyramidal ViT (multi-stage, shrinking token grid).

LeViT [Graham et al. 2021] interleaves transformer stages with spatial
subsampling.  At simulation scale we keep the defining property the paper's
workload analysis depends on — per-stage (tokens, heads, dim) — and model the
shrink step as average-pooling over 2×2 token neighbourhoods followed by a
linear width change.  Early convolutions are omitted per the paper (§IV-A:
"<7% of FLOPs").
"""

from __future__ import annotations

import numpy as np

from ..nn.autograd import Tensor
from ..nn.modules import Module, Parameter, Linear, LayerNorm
from .vit import TransformerBlock
from .config import ModelConfig

__all__ = ["TokenPool", "LeViT", "build_levit"]


class TokenPool(Module):
    """2×2 average pooling over a square token grid plus width projection."""

    def __init__(self, in_dim, out_dim, in_tokens, rng=None):
        super().__init__()
        side = int(round(np.sqrt(in_tokens)))
        if side * side != in_tokens or side % 2 != 0:
            raise ValueError(
                f"TokenPool needs an even square token count, got {in_tokens}"
            )
        self.in_side = side
        self.out_tokens = (side // 2) ** 2
        self.proj = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x):
        batch, tokens, dim = x.shape
        side = self.in_side
        grid = x.reshape(batch, side, side, dim)
        pooled = (
            grid[:, 0::2, 0::2, :]
            + grid[:, 0::2, 1::2, :]
            + grid[:, 1::2, 0::2, :]
            + grid[:, 1::2, 1::2, :]
        ) * 0.25
        pooled = pooled.reshape(batch, self.out_tokens, dim)
        return self.proj(pooled)


class LeViT(Module):
    """Multi-stage ViT with attention-based classification (mean pooling)."""

    def __init__(self, patch_dim, num_classes, stages, mlp_ratio=2.0, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stages_spec = tuple(stages)
        first = stages[0]
        self.embed = Linear(patch_dim, first.embed_dim, rng=rng)
        self.pos_embed = Parameter(
            rng.standard_normal((1, first.num_tokens, first.embed_dim)) * 0.02
        )
        self.blocks = []
        self.pools = []
        idx = 0
        for s, stage in enumerate(stages):
            for _ in range(stage.depth):
                block = TransformerBlock(
                    stage.embed_dim, stage.num_heads, mlp_ratio, rng=rng
                )
                setattr(self, f"block{idx}", block)
                self.blocks.append(block)
                idx += 1
            if s + 1 < len(stages):
                pool = TokenPool(
                    stage.embed_dim,
                    stages[s + 1].embed_dim,
                    stage.num_tokens,
                    rng=rng,
                )
                setattr(self, f"pool{s}", pool)
                self.pools.append(pool)
            else:
                self.pools.append(None)
        self.norm = LayerNorm(stages[-1].embed_dim)
        self.head = Linear(stages[-1].embed_dim, num_classes, rng=rng)

    def forward(self, x):
        if not isinstance(x, Tensor):
            x = Tensor(x)
        tokens = self.embed(x) + self.pos_embed
        block_iter = iter(self.blocks)
        for stage, pool in zip(self.stages_spec, self.pools):
            for _ in range(stage.depth):
                tokens = next(block_iter)(tokens)
            if pool is not None:
                tokens = pool(tokens)
        feats = self.norm(tokens).mean(axis=1)
        return self.head(feats)

    def attention_modules(self):
        return [block.attn for block in self.blocks]

    def set_masks(self, masks):
        if len(masks) != len(self.blocks):
            raise ValueError(f"expected {len(self.blocks)} masks, got {len(masks)}")
        for block, mask in zip(self.blocks, masks):
            block.attn.set_mask(mask)

    def set_autoencoder(self, factory):
        for block in self.blocks:
            block.attn.autoencoder = factory(block.attn.num_heads, block.attn.head_dim)

    def reconstruction_pairs(self):
        pairs = []
        for block in self.blocks:
            pairs.extend(block.attn.last_reconstruction_pairs)
        return pairs


def build_levit(config: ModelConfig, patch_dim, num_classes, seed=0):
    if len(config.sim_stages) < 2:
        raise ValueError(f"{config.name} is single-stage; use build_vit instead")
    return LeViT(
        patch_dim=patch_dim,
        num_classes=num_classes,
        stages=config.sim_stages,
        mlp_ratio=config.mlp_ratio,
        seed=seed,
    )
