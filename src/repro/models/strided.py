"""Strided Transformer for 3-D pose estimation (Li et al., TMM 2022).

The paper evaluates this model on Human3.6M for AR/VR workloads.  The
defining architectural feature for workload purposes is a vanilla transformer
encoder over a long frame sequence followed by strided token reduction;
at simulation scale we implement sequence-to-sequence regression with a
strided refinement head on our synthetic pose dataset.
"""

from __future__ import annotations

import numpy as np

from ..nn.autograd import Tensor
from ..nn.modules import Module, Parameter, Linear, LayerNorm
from .vit import TransformerBlock
from .config import ModelConfig

__all__ = ["StridedTransformer", "build_strided"]


class StridedTransformer(Module):
    """Transformer encoder + strided centre-frame refinement for pose."""

    def __init__(self, joint_dim, num_tokens, depth, dim, num_heads,
                 mlp_ratio=2.0, stride=3, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_tokens = num_tokens
        self.stride = stride
        self.embed = Linear(joint_dim, dim, rng=rng)
        self.pos_embed = Parameter(rng.standard_normal((1, num_tokens, dim)) * 0.02)
        self.blocks = []
        for i in range(depth):
            block = TransformerBlock(dim, num_heads, mlp_ratio, rng=rng)
            setattr(self, f"block{i}", block)
            self.blocks.append(block)
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, joint_dim, rng=rng)

    def forward(self, x):
        """Map (B, T, joint_dim) observations to (B, T, joint_dim) poses."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        tokens = self.embed(x) + self.pos_embed
        for block in self.blocks:
            tokens = block(tokens)
        return self.head(self.norm(tokens))

    def strided_summary(self, x):
        """Strided (every ``stride``-th frame) pose output — the model's
        reduced-rate prediction stream used by the downstream AR/VR consumer."""
        full = self.forward(x)
        return full[:, :: self.stride, :]

    def attention_modules(self):
        return [block.attn for block in self.blocks]

    def set_masks(self, masks):
        if len(masks) != len(self.blocks):
            raise ValueError(f"expected {len(self.blocks)} masks, got {len(masks)}")
        for block, mask in zip(self.blocks, masks):
            block.attn.set_mask(mask)

    def set_autoencoder(self, factory):
        for block in self.blocks:
            block.attn.autoencoder = factory(block.attn.num_heads, block.attn.head_dim)

    def reconstruction_pairs(self):
        pairs = []
        for block in self.blocks:
            pairs.extend(block.attn.last_reconstruction_pairs)
        return pairs


def build_strided(config: ModelConfig, joint_dim, seed=0):
    stage = config.sim_stages[0]
    return StridedTransformer(
        joint_dim=joint_dim,
        num_tokens=stage.num_tokens,
        depth=stage.depth,
        dim=stage.embed_dim,
        num_heads=stage.num_heads,
        mlp_ratio=config.mlp_ratio,
        seed=seed,
    )
