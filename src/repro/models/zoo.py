"""Model zoo: build and train "pretrained" sim-scale models.

The paper starts from ImageNet-pretrained DeiT/LeViT checkpoints.  Our
offline substitute trains the sim-scale models from scratch on the synthetic
datasets (deterministically, given a seed) and memoises the result so tests,
examples and benchmarks share one training run per model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..nn import functional as F
from ..nn.autograd import no_grad
from ..nn.data import SyntheticPatchDataset, SyntheticPoseDataset, iterate_minibatches
from ..nn.optim import Adam
from .config import ModelConfig, get_config
from .levit import build_levit
from .strided import build_strided
from .vit import build_vit

__all__ = [
    "TrainResult",
    "train_classifier",
    "train_pose_model",
    "pretrained",
    "evaluate_classifier",
    "evaluate_pose",
    "clear_zoo_cache",
]

_ZOO_CACHE: Dict[tuple, "TrainResult"] = {}


@dataclass
class TrainResult:
    """A trained model plus its data and training history."""

    model: object
    config: ModelConfig
    dataset: object
    history: List[dict] = field(default_factory=list)
    test_accuracy: float = 0.0
    test_loss: float = 0.0

    @property
    def final_train_loss(self):
        return self.history[-1]["loss"] if self.history else float("nan")


def evaluate_classifier(model, x, y, batch_size=128):
    """Return (mean CE loss, top-1 accuracy) on (x, y)."""
    losses, correct, total = [], 0, 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            xb, yb = x[start : start + batch_size], y[start : start + batch_size]
            logits = model(xb)
            losses.append(F.cross_entropy(logits, yb).item() * len(xb))
            correct += int((logits.data.argmax(axis=-1) == yb).sum())
            total += len(xb)
    return sum(losses) / total, correct / total


def evaluate_pose(model, x, y, batch_size=128):
    """Return mean per-joint error (MSE) on the pose task."""
    losses, total = [], 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            xb, yb = x[start : start + batch_size], y[start : start + batch_size]
            pred = model(xb)
            losses.append(float(((pred.data - yb) ** 2).mean()) * len(xb))
            total += len(xb)
    return sum(losses) / total


def train_classifier(
    model,
    dataset: SyntheticPatchDataset,
    epochs=8,
    lr=3e-3,
    batch_size=64,
    weight_decay=1e-4,
    seed=0,
    extra_loss_fn=None,
):
    """Train a classifier; returns a list of per-epoch history dicts.

    ``extra_loss_fn(model) -> Tensor`` adds an auxiliary term (used for the
    AE reconstruction loss in the joint finetuning of Eq. 2).
    """
    rng = np.random.default_rng(seed)
    x_tr, y_tr, x_te, y_te = dataset.split()
    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    history = []
    for epoch in range(epochs):
        model.train()
        epoch_losses = []
        recon_losses = []
        for xb, yb in iterate_minibatches(x_tr, y_tr, batch_size, rng=rng):
            logits = model(xb)
            loss = F.cross_entropy(logits, yb)
            if extra_loss_fn is not None:
                extra = extra_loss_fn(model)
                recon_losses.append(extra.item())
                loss = loss + extra
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        model.eval()
        test_loss, test_acc = evaluate_classifier(model, x_te, y_te)
        history.append(
            {
                "epoch": epoch,
                "loss": float(np.mean(epoch_losses)),
                "recon_loss": float(np.mean(recon_losses)) if recon_losses else 0.0,
                "test_loss": test_loss,
                "test_accuracy": test_acc,
            }
        )
    return history


def train_pose_model(model, dataset: SyntheticPoseDataset, epochs=8, lr=1e-3,
                     batch_size=32, seed=0):
    rng = np.random.default_rng(seed)
    x_tr, y_tr, x_te, y_te = dataset.split()
    optimizer = Adam(model.parameters(), lr=lr)
    history = []
    for epoch in range(epochs):
        model.train()
        epoch_losses = []
        for xb, yb in iterate_minibatches(x_tr, y_tr, batch_size, rng=rng):
            pred = model(xb)
            loss = F.mse_loss(pred, yb)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        model.eval()
        history.append(
            {
                "epoch": epoch,
                "loss": float(np.mean(epoch_losses)),
                "test_loss": evaluate_pose(model, x_te, y_te),
            }
        )
    return history


def _rebuild_like(result: TrainResult, seed):
    """Fresh model instance with the trained weights loaded."""
    config = result.config
    dataset = result.dataset
    if config.task == "pose":
        model = build_strided(config, joint_dim=dataset.joint_dim, seed=seed)
    elif config.family == "deit":
        model = build_vit(config, patch_dim=dataset.patch_dim,
                          num_classes=dataset.num_classes, seed=seed)
    else:
        model = build_levit(config, patch_dim=dataset.patch_dim,
                            num_classes=dataset.num_classes, seed=seed)
    model.load_state_dict(result.model.state_dict())
    return TrainResult(
        model=model,
        config=config,
        dataset=dataset,
        history=list(result.history),
        test_accuracy=result.test_accuracy,
        test_loss=result.test_loss,
    )


def pretrained(name, seed=0, epochs=8, dataset_kwargs=None, fresh_copy=True):
    """Return a trained :class:`TrainResult` for model ``name``.

    Training is memoised per (name, seed, epochs, dataset); by default each
    call returns a *fresh model copy* loaded with the cached weights so
    callers (e.g. the ViTCoD pipeline) can mutate their model freely.
    Pass ``fresh_copy=False`` to share the cached instance.
    """
    key = (name, seed, epochs, tuple(sorted((dataset_kwargs or {}).items())))
    if key in _ZOO_CACHE:
        cached = _ZOO_CACHE[key]
        return _rebuild_like(cached, seed) if fresh_copy else cached

    config = get_config(name)
    kwargs = dict(dataset_kwargs or {})
    if config.task == "pose":
        stage = config.sim_stages[0]
        dataset = SyntheticPoseDataset(
            num_tokens=stage.num_tokens, seed=seed, **kwargs
        )
        model = build_strided(config, joint_dim=dataset.joint_dim, seed=seed)
        history = train_pose_model(model, dataset, epochs=epochs, seed=seed)
        result = TrainResult(
            model=model,
            config=config,
            dataset=dataset,
            history=history,
            test_loss=history[-1]["test_loss"],
        )
    else:
        first = config.sim_stages[0]
        num_patches = (
            first.num_tokens - 1 if config.family == "deit" else first.num_tokens
        )
        dataset = SyntheticPatchDataset(num_tokens=num_patches, seed=seed, **kwargs)
        if config.family == "deit":
            model = build_vit(
                config, patch_dim=dataset.patch_dim,
                num_classes=dataset.num_classes, seed=seed,
            )
        else:
            model = build_levit(
                config, patch_dim=dataset.patch_dim,
                num_classes=dataset.num_classes, seed=seed,
            )
        history = train_classifier(model, dataset, epochs=epochs, seed=seed)
        _, _, x_te, y_te = dataset.split()
        test_loss, test_acc = evaluate_classifier(model, x_te, y_te)
        result = TrainResult(
            model=model,
            config=config,
            dataset=dataset,
            history=history,
            test_accuracy=test_acc,
            test_loss=test_loss,
        )

    _ZOO_CACHE[key] = result
    return _rebuild_like(result, seed) if fresh_copy else result


def clear_zoo_cache():
    _ZOO_CACHE.clear()
