"""Deterministic grid partitioning for multi-host DSE sweeps.

A DSE grid has one canonical linear order (the lexicographic cross-product
walked by :func:`repro.harness.dse.sweep_design_space`), so each point has
one integer index — and that index is a *partition key*: shard ``K/N``
owns exactly the indices ``K-1, K-1+N, K-1+2N, ...``.  The partition is

* **complete and disjoint** — the ``N`` shards tile ``range(size)``
  exactly once, whatever ``size`` is (property-tested);
* **stateless** — any host can compute its own index set from ``(K, N)``
  and the grid alone; no coordinator, queue, or shared lock is needed;
* **strided, not contiguous** — neighbouring grid indices differ in one
  swept value, so evaluation cost varies smoothly along the grid;
  striding deals every shard a representative cross-section instead of
  handing one shard the all-expensive corner of the grid.

Shards are written ``K/N`` with ``K`` in ``1..N`` (the CLI spelling:
``python -m repro dse-shard --shard 2/3``).

**Weighted partitions** let heterogeneous hosts own proportional slices:
with integer weights ``w_1..w_N`` (``--shard K/N@w1,...,wN``, or
``K/N@W`` as shorthand for "this shard weighs ``W``, everyone else 1"),
shard ``K`` owns the grid indices whose residue modulo ``sum(w)`` falls
in its contiguous block of ``w_K`` residues.  A 64-core box declared at
weight 4 owns four grid points for every one a laptop owns, the tiling
stays complete, disjoint and stateless (property-tested, including
zero-weight shards, which own nothing and act as pure work-stealers),
and all-equal weight vectors normalise to the unweighted strided layout
so uniform studies keep their historical partition byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ShardSpec", "shard_indices"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an ``N``-way partition: ``index`` is 1-based.

    ``weights`` — one non-negative integer share per shard — makes the
    partition weight-proportional (``None`` means uniform).  All-equal
    vectors are normalised to ``None`` at construction, so two specs
    that tile identically compare equal and serialise identically.
    """

    index: int
    count: int
    weights: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )
        if self.weights is not None:
            weights = tuple(self.weights)
            if len(weights) != self.count:
                raise ValueError(
                    f"weights must list one share per shard: got "
                    f"{len(weights)} weights for {self.count} shards"
                )
            for weight in weights:
                if not isinstance(weight, int) or isinstance(weight, bool):
                    raise ValueError(
                        f"shard weights must be integers, got {weight!r}"
                    )
                if weight < 0:
                    raise ValueError(
                        f"shard weights must be non-negative, got {weight}"
                    )
            if sum(weights) == 0:
                raise ValueError("at least one shard weight must be positive")
            # An all-equal vector tiles exactly like the uniform strided
            # partition modulo residue layout; canonicalise it to None so
            # uniform studies keep the historical (and manifest-compatible)
            # K-1 + j*N index sets.
            if len(set(weights)) == 1:
                weights = None
            object.__setattr__(self, "weights", weights)

    @property
    def weight(self) -> int:
        """This shard's share of the grid (1 under a uniform partition)."""
        return 1 if self.weights is None else self.weights[self.index - 1]

    @classmethod
    def parse(cls, text) -> "ShardSpec":
        """Parse the ``K/N[@weights]`` spelling.

        ``"2/3"`` -> shard 2 of 3 (uniform); ``"2/3@4,1,1"`` -> the full
        weight vector; ``"2/3@4"`` -> shorthand for "shard 2 weighs 4,
        the others weigh 1" (every shard of one study must resolve to the
        same vector — the store manifest enforces agreement).
        """
        if isinstance(text, ShardSpec):
            return text
        body, at, weight_spec = str(text).partition("@")
        head, sep, tail = body.partition("/")
        try:
            if not sep:
                raise ValueError
            index, count = int(head), int(tail)
            parts = None
            if at:
                parts = [int(token) for token in weight_spec.split(",")]
        except ValueError:
            raise ValueError(
                f"bad shard spec {text!r}; expected K/N with 1 <= K <= N, "
                "optionally @W (this shard's weight, peers weigh 1) or "
                "@w1,...,wN (the full weight vector), e.g. '2/3', '2/3@4' "
                "or '2/3@4,1,1'"
            ) from None
        weights = None
        if parts is not None:
            if len(parts) == 1 and count > 1:
                weights = tuple(
                    parts[0] if k == index else 1 for k in range(1, count + 1)
                )
            else:
                weights = tuple(parts)
        return cls(index=index, count=count, weights=weights)

    def indices(self, size: int):
        """This shard's grid indices in ``range(size)`` (ascending).

        Uniform shards return the historical stride ``range``; weighted
        shards return a sorted list — the indices whose residue modulo
        ``sum(weights)`` lies in this shard's block of ``weight``
        consecutive residues (so weighted slices stay strided
        cross-sections of the grid, just ``weight`` residues wide).
        """
        if size < 0:
            raise ValueError("grid size must be non-negative")
        if self.weights is None:
            return range(self.index - 1, size, self.count)
        total = sum(self.weights)
        first = sum(self.weights[: self.index - 1])
        own = []
        for residue in range(first, first + self.weight):
            own.extend(range(residue, size, total))
        own.sort()
        return own

    def __str__(self):
        base = f"{self.index}/{self.count}"
        if self.weights is None:
            return base
        return base + "@" + ",".join(str(weight) for weight in self.weights)


def shard_indices(size: int, shard) -> "range | list":
    """Convenience: :meth:`ShardSpec.indices` accepting ``"K/N[@w]"`` strings."""
    return ShardSpec.parse(shard).indices(size)
