"""Deterministic grid partitioning for multi-host DSE sweeps.

A DSE grid has one canonical linear order (the lexicographic cross-product
walked by :func:`repro.harness.dse.sweep_design_space`), so each point has
one integer index — and that index is a *partition key*: shard ``K/N``
owns exactly the indices ``K-1, K-1+N, K-1+2N, ...``.  The partition is

* **complete and disjoint** — the ``N`` shards tile ``range(size)``
  exactly once, whatever ``size`` is (property-tested);
* **stateless** — any host can compute its own index set from ``(K, N)``
  and the grid alone; no coordinator, queue, or shared lock is needed;
* **strided, not contiguous** — neighbouring grid indices differ in one
  swept value, so evaluation cost varies smoothly along the grid;
  striding deals every shard a representative cross-section instead of
  handing one shard the all-expensive corner of the grid.

Shards are written ``K/N`` with ``K`` in ``1..N`` (the CLI spelling:
``python -m repro dse-shard --shard 2/3``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShardSpec", "shard_indices"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an ``N``-way partition: ``index`` is 1-based."""

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    @classmethod
    def parse(cls, text) -> "ShardSpec":
        """Parse the ``K/N`` spelling (``"2/3"`` -> shard 2 of 3)."""
        if isinstance(text, ShardSpec):
            return text
        head, sep, tail = str(text).partition("/")
        try:
            if not sep:
                raise ValueError
            return cls(index=int(head), count=int(tail))
        except ValueError:
            raise ValueError(
                f"bad shard spec {text!r}; expected K/N with 1 <= K <= N "
                "(e.g. '2/3')"
            ) from None

    def indices(self, size: int) -> range:
        """This shard's grid indices in ``range(size)`` (ascending)."""
        if size < 0:
            raise ValueError("grid size must be non-negative")
        return range(self.index - 1, size, self.count)

    def __str__(self):
        return f"{self.index}/{self.count}"


def shard_indices(size: int, shard) -> range:
    """Convenience: :meth:`ShardSpec.indices` accepting ``"K/N"`` strings."""
    return ShardSpec.parse(shard).indices(size)
