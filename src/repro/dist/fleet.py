"""Shard fleet supervision: launch N shard subprocesses, keep them alive.

``run_fleet`` (CLI: ``python -m repro dse-fleet``) is the single-host
supervisor for a sharded study: it launches one ``dse-shard`` subprocess
per shard, each with a *heartbeat file* the runner touches once per
durable completion record, and then watches two failure signals:

* **crash** — the subprocess exits nonzero (evaluator bug, injected torn
  write, OOM kill, plain SIGKILL).  The shard is relaunched with capped
  jittered exponential backoff; its store records survive, so the relaunch
  resumes where the corpse stopped.
* **hang** — the heartbeat goes stale for longer than ``hang_after``
  seconds while the process still runs (an evaluator stuck inside a
  point, which no exit code will ever report).  The supervisor SIGKILLs
  the process and relaunches it through the same backoff path.

Each shard gets ``max_restarts`` relaunches before it is abandoned; when
the fleet runs with ``--steal``, the surviving shards absorb an abandoned
shard's missing indices, so the study can still complete.  The final
:class:`FleetResult` reports restarts, hang kills, abandoned shards and
whether the store ended complete (every grid index recorded).

Supervision is deliberately dumb and stateless — the durable store is the
only ledger, exactly like the shards themselves: killing the supervisor
and re-running the same command converges the same way.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from .runner import _recorded_indices
from .store import ResultStore

__all__ = ["FleetResult", "run_fleet"]

_log = obs.get_logger("dist.fleet")

#: Heartbeat staleness that counts as a hang (seconds).  Generous by
#: default: a false positive costs one SIGKILL plus a resume, never data.
_HANG_AFTER_S = 30.0

#: Supervisor poll cadence (seconds).
_POLL_S = 0.2

#: Relaunches per shard before the supervisor abandons it.
_MAX_RESTARTS = 3

_BACKOFF_BASE_S = 0.25
_BACKOFF_CAP_S = 5.0


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one :func:`run_fleet` call."""

    store: Path
    num_shards: int
    restarts: int  # total relaunches, crashes and hang kills together
    hang_kills: int  # processes SIGKILLed for a stale heartbeat
    abandoned: tuple  # 1-based shard indices that exhausted their budget
    complete: bool  # every grid index has a completion record

    @property
    def ok(self) -> bool:
        return self.complete and not self.abandoned


class _Shard:
    """Supervisor-side state of one shard subprocess."""

    def __init__(self, index, cmd, heartbeat, log_path):
        self.index = index
        self.cmd = cmd
        self.heartbeat = heartbeat
        self.log_path = log_path
        self.proc = None
        self.launched_at = None
        self.restarts = 0
        self.relaunch_at = 0.0  # monotonic deadline; 0 == launch now
        self.done = False
        self.abandoned = False

    @property
    def live(self) -> bool:
        return not (self.done or self.abandoned)

    def launch(self):
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.log_path, "ab") as log:
            self.proc = subprocess.Popen(
                self.cmd, stdout=log, stderr=subprocess.STDOUT
            )
        self.launched_at = time.monotonic()

    def heartbeat_age(self) -> float:
        """Seconds since the last progress signal (records, or launch)."""
        try:
            mtime_age = time.time() - self.heartbeat.stat().st_mtime
        except OSError:
            mtime_age = float("inf")
        return min(mtime_age, time.monotonic() - self.launched_at)


def run_fleet(
    store,
    num_shards,
    shard_args,
    *,
    hang_after=_HANG_AFTER_S,
    max_restarts=_MAX_RESTARTS,
    poll_s=_POLL_S,
    backoff_base_s=_BACKOFF_BASE_S,
    backoff_cap_s=_BACKOFF_CAP_S,
    python=None,
) -> FleetResult:
    """Supervise ``num_shards`` ``dse-shard`` subprocesses to completion.

    ``shard_args`` is the common CLI argument tail every shard shares
    (models, grid, evaluator, ``--steal``, ``--faults``, ...); the
    supervisor adds ``--shard K/N``, ``--out`` and ``--heartbeat`` per
    shard.  Subprocess output lands in ``<store>/logs/shard-K.log``.
    See the module docstring for the crash/hang/abandon semantics.
    """
    store = Path(store)
    num_shards = int(num_shards)
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    python = python or sys.executable
    rng = random.Random()
    shards = []
    for k in range(1, num_shards + 1):
        heartbeat = store / "heartbeats" / f"shard-{k:04d}.hb"
        cmd = [
            python,
            "-m",
            "repro",
            "dse-shard",
            "--shard",
            f"{k}/{num_shards}",
            "--out",
            str(store),
            "--heartbeat",
            str(heartbeat),
            *[str(arg) for arg in shard_args],
        ]
        shards.append(_Shard(k, cmd, heartbeat, store / "logs" / f"shard-{k}.log"))

    restarts = hang_kills = 0

    def _crashed(shard, why):
        nonlocal restarts
        shard.proc = None
        shard.restarts += 1
        if shard.restarts > max_restarts:
            shard.abandoned = True
            obs.counter("fleet_abandoned_shards").inc()
            _log.warning(
                "fleet: shard %d/%d abandoned after %d restarts (%s)",
                shard.index, num_shards, max_restarts, why,
            )
            return
        restarts += 1
        backoff = min(
            backoff_cap_s, backoff_base_s * 2 ** (shard.restarts - 1)
        ) * (0.5 + rng.random())
        shard.relaunch_at = time.monotonic() + backoff
        obs.counter("fleet_restarts").inc()
        _log.info(
            "fleet: shard %d/%d %s; relaunch %d/%d in %.2fs",
            shard.index, num_shards, why, shard.restarts, max_restarts, backoff,
        )

    try:
        while any(shard.live for shard in shards):
            for shard in shards:
                if not shard.live:
                    continue
                if shard.proc is None:
                    if time.monotonic() >= shard.relaunch_at:
                        shard.launch()
                    continue
                code = shard.proc.poll()
                if code is not None:
                    if code == 0:
                        shard.done = True
                        shard.proc = None
                    else:
                        _crashed(shard, f"exited with code {code}")
                    continue
                if hang_after > 0 and shard.heartbeat_age() > hang_after:
                    hang_kills += 1
                    obs.counter("fleet_hang_kills").inc()
                    os.kill(shard.proc.pid, signal.SIGKILL)
                    shard.proc.wait()
                    _crashed(
                        shard,
                        f"heartbeat stale for more than {hang_after:.1f}s",
                    )
            time.sleep(poll_s)
    finally:
        for shard in shards:
            if shard.proc is not None and shard.proc.poll() is None:
                shard.proc.kill()
                shard.proc.wait()

    complete = _store_complete(store)
    return FleetResult(
        store=store,
        num_shards=num_shards,
        restarts=restarts,
        hang_kills=hang_kills,
        abandoned=tuple(s.index for s in shards if s.abandoned),
        complete=complete,
    )


def _store_complete(root) -> bool:
    """Whether every grid index of the store's study has a record."""
    store = ResultStore(root)
    manifest = store.read_manifest(missing_ok=True)
    if manifest is None:
        return False
    return len(_recorded_indices(store)) >= int(manifest["grid_size"])
