"""Durable JSONL result store for sharded DSE sweeps.

A *store* is one directory shared by every shard of one study (locally, or
via a network filesystem across hosts):

.. code-block:: text

    store/
      MANIFEST.json              # grid, evaluator, config, workload spec
      shard-0001-of-0003.jsonl   # one completion record per grid point
      shard-0002-of-0003.jsonl
      shard-0003-of-0003.jsonl
      steal-0002-of-0003.jsonl   # records shard 2 stole from slower shards
      claims/                    # advisory steal-range claim files
      fine-rescore.jsonl         # hybrid studies: cycle re-scored survivors

Design rules, in order of importance:

* **append-only completion records** — every evaluated grid point becomes
  one JSON line carrying its grid index, parameters, objectives (or the
  evaluator's error) and completion timestamp; a record present in the
  file is a point that never needs re-evaluating, which is the whole
  resume story, and the timestamps give ``dse-status`` per-shard
  throughput and ETA for free;
* **atomic-enough writes** — each record is a single ``write`` of one
  line followed by a flush (an ``fsync`` every few dozen records and at
  close bounds what an OS crash can lose); a killed writer can leave at
  most one truncated final line, which loaders tolerate and resumers
  simply re-evaluate;
* **bit-exact round-trip** — objectives and parameters are written with
  Python's shortest-round-trip float repr (what :mod:`json` emits), so a
  decoded :class:`~repro.harness.dse.DesignPoint` compares equal to the
  in-memory one, field for field — merged shard stores reproduce a
  single-process sweep *bit for bit*;
* **self-describing** — ``MANIFEST.json`` pins the grid, shard count,
  evaluator spec, hardware base config, workload recipe and (when
  non-uniform) the shard weight vector; a shard launched against a store
  created for different settings fails loudly (:class:`StoreMismatchError`)
  instead of silently mixing studies;
* **duplicate records tolerated when bit-identical** — work-stealing
  means the same grid point may complete in a victim's shard file *and*
  a stealer's ``steal-*.jsonl`` file; evaluation is deterministic, so
  both records carry the same payload (everything but the ``t``
  timestamp — see :func:`record_payload`) and the merge keeps either,
  while genuinely conflicting duplicates raise.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List

from ..faults.errors import FaultInjectedError
from ..faults.plan import active_plan
from ..harness.dse import DesignPoint, PointFailure, grid_size
from ..hw.params import EnergyTable, HardwareConfig
from ..sim.evaluator import evaluator_spec

__all__ = [
    "SCHEMA",
    "StoreError",
    "StoreCorruptError",
    "StoreMismatchError",
    "IncompleteStoreError",
    "ResultStore",
    "JsonlAppender",
    "encode_record",
    "decode_record",
    "record_payload",
    "build_manifest",
    "config_to_dict",
    "config_from_dict",
]

#: Manifest/record schema tag; bump on incompatible layout changes.
SCHEMA = "repro-dist/1"

MANIFEST_NAME = "MANIFEST.json"
FINE_NAME = "fine-rescore.jsonl"
CLAIMS_DIR = "claims"
_SHARD_RE = re.compile(r"^shard-(\d{4})-of-(\d{4})\.jsonl$")
_STEAL_RE = re.compile(r"^steal-(\d{4})-of-(\d{4})\.jsonl$")

#: Records between ``fsync`` calls (every record is flushed; syncing each
#: one would gate cheap evaluators on disk latency for little extra
#: safety — a flush already survives process death, only an OS crash can
#: lose the unsynced tail).
_FSYNC_EVERY = 64


class StoreError(RuntimeError):
    """Base class for result-store failures."""


class StoreCorruptError(StoreError):
    """A store file violates the format (beyond a truncated final line)."""


class StoreMismatchError(StoreError):
    """A shard was pointed at a store created for different settings."""


class IncompleteStoreError(StoreError):
    """A merge was attempted before every grid point had a record."""


def _dump(data) -> str:
    """Canonical one-line JSON (sorted keys, no spaces, finite floats)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"), allow_nan=False)


# ----------------------------------------------------------------------
# Completion records
# ----------------------------------------------------------------------
def encode_record(index: int, result, timestamp=None, retries: int = 0) -> dict:
    """One completion record: a scored point or a captured failure.

    Keys are terse on purpose (one record per grid point adds up):
    ``i`` grid index, ``p`` parameters as ``[name, value]`` pairs, then
    either ``s``/``e``/``a`` (seconds, energy, area proxy) or ``err``,
    plus ``t`` — the unix completion time (``timestamp`` overrides the
    clock; progress metadata only, ignored by :func:`decode_record`, so
    :func:`repro.dist.store_status` can derive per-shard throughput and
    ETA without affecting the bit-exact merge).  ``retries`` > 0 adds an
    ``r`` key — how many transient-failure re-evaluations this point
    cost — which is execution metadata like ``t``: healthy records stay
    byte-identical and :func:`record_payload` ignores it.
    """
    if isinstance(result, PointFailure):
        record = {
            "i": int(index),
            "p": [[name, value] for name, value in result.parameters],
            "err": result.error,
        }
    elif isinstance(result, DesignPoint):
        record = {
            "i": int(index),
            "p": [[name, value] for name, value in result.parameters],
            "s": result.seconds,
            "e": result.energy_joules,
            "a": result.area_proxy,
        }
    else:
        raise TypeError(f"expected DesignPoint or PointFailure, got {type(result)!r}")
    if retries:
        record["r"] = int(retries)
    record["t"] = time.time() if timestamp is None else float(timestamp)
    return record


def decode_record(record: dict):
    """Inverse of :func:`encode_record`: ``(index, DesignPoint|PointFailure)``."""
    try:
        index = int(record["i"])
        parameters = tuple((str(name), value) for name, value in record["p"])
        if "err" in record:
            return index, PointFailure(parameters=parameters, error=str(record["err"]))
        return index, DesignPoint(
            parameters=parameters,
            seconds=record["s"],
            energy_joules=record["e"],
            area_proxy=record["a"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreCorruptError(
            f"malformed completion record {record!r}: {exc}"
        ) from None


def record_payload(record: dict) -> dict:
    """A completion record minus execution metadata (``t``/``r``).

    Two records are *the same completion* iff their payloads are equal:
    evaluation is deterministic, so a grid point redundantly evaluated by
    a victim shard and a work-stealer yields byte-identical parameters
    and objectives and differs only in when it finished (``t``) and how
    many transient hiccups each runner absorbed on the way (``r``).  The
    duplicate-tolerant merge compares payloads — identical payloads merge
    silently, conflicting ones raise :class:`StoreCorruptError`.
    """
    return {key: value for key, value in record.items() if key not in ("t", "r")}


# ----------------------------------------------------------------------
# Hardware-config round trip (manifests pin the swept base design point)
# ----------------------------------------------------------------------
def config_to_dict(config: HardwareConfig) -> dict:
    """JSON-safe :class:`~repro.hw.params.HardwareConfig` (nested energy)."""
    return asdict(config)


def config_from_dict(data: dict) -> HardwareConfig:
    """Inverse of :func:`config_to_dict`."""
    fields = dict(data)
    fields["energy"] = EnergyTable(**fields["energy"])
    return HardwareConfig(**fields)


def build_manifest(
    grid, num_shards: int, evaluator, base_config, workload_spec=None, weights=None
) -> dict:
    """The settings fingerprint every shard of one study must agree on.

    ``weights`` (the normalised :attr:`ShardSpec.weights` vector) is
    recorded only when non-uniform, so uniform studies keep their
    historical manifests byte for byte — and a shard launched with a
    different weight vector than the store was created for fails the
    field-by-field comparison loudly.
    """
    grid = {name: list(values) for name, values in grid.items()}
    manifest = {
        "schema": SCHEMA,
        "grid": grid,
        "grid_size": grid_size(grid),
        "num_shards": int(num_shards),
        "evaluator": evaluator_spec(evaluator),
        "base_config": config_to_dict(base_config),
        "workload": dict(workload_spec) if workload_spec else {"kind": "opaque"},
    }
    if weights is not None:
        manifest["weights"] = [int(weight) for weight in weights]
    return manifest


# ----------------------------------------------------------------------
# JSONL files
# ----------------------------------------------------------------------
class JsonlAppender:
    """Append-only JSONL writer with per-record flush and periodic fsync.

    Opening for append first *repairs a torn tail*: a writer killed
    mid-record leaves a final line without a newline, and appending after
    it would glue the next record onto the damaged line (turning a
    tolerated truncation into real mid-file corruption).  The repair
    mirrors :func:`load_jsonl`'s tolerance exactly — whatever the loader
    counted as a record must survive the repair, or a resumed shard would
    skip a point the store no longer holds: a tail that parses as JSON
    (the writer died between the record and its newline) is *terminated*
    with the missing newline; a tail that does not parse never formed a
    completion record and is truncated away, leaving its point owed to
    the store.  One writer per file at a time is the contract (each shard
    file has exactly one owning process).
    """

    def __init__(self, path):
        self._path = Path(path)
        self._repair_torn_tail()
        self._fh = open(self._path, "a", encoding="utf-8")
        self._unsynced = 0

    def _repair_torn_tail(self):
        if not self._path.exists():
            return
        data = self._path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        tail = data[data.rfind(b"\n") + 1:]
        try:
            json.loads(tail)
            complete = True
        except json.JSONDecodeError:
            complete = False
        with open(self._path, "r+b") as fh:
            if complete:
                fh.seek(0, os.SEEK_END)
                fh.write(b"\n")
            else:
                fh.truncate(data.rfind(b"\n") + 1)
            fh.flush()
            os.fsync(fh.fileno())

    def append(self, record: dict):
        line = _dump(record) + "\n"
        plan = active_plan()
        if plan is not None and plan.torn_write_fault(self._path):
            # Die exactly like a writer killed mid-append: half the line
            # reaches the file, the process never returns.  The next
            # opener's torn-tail repair is the recovery under test.
            self._fh.write(line[: len(line) // 2])
            self._fh.flush()
            raise FaultInjectedError(f"injected torn write in {self._path.name}")
        self._fh.write(line)
        self._fh.flush()
        self._unsynced += 1
        if self._unsynced >= _FSYNC_EVERY:
            self._sync()

    def _sync(self):
        plan = active_plan()
        if plan is not None:
            plan.fsync_fault(self._path)
        os.fsync(self._fh.fileno())
        self._unsynced = 0

    def close(self):
        if not self._fh.closed:
            self._sync()
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def load_jsonl(path) -> List[dict]:
    """Parse a JSONL file, tolerating a truncated final line.

    A writer killed mid-append leaves a partial last line; that is the
    *expected* crash artifact and is silently dropped (the resume path
    just re-evaluates the point).  Malformed JSON anywhere *before* the
    final line means the file was edited or the filesystem lied — that
    raises :class:`StoreCorruptError` rather than guessing.
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = path.read_bytes().split(b"\n")
    records = []
    for pos, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if b"".join(lines[pos + 1:]).strip():
                raise StoreCorruptError(
                    f"{path}: malformed record at line {pos + 1} "
                    "(not the final line, so not a truncated append)"
                ) from None
            break  # truncated tail from a killed writer
    return records


# ----------------------------------------------------------------------
# The store directory
# ----------------------------------------------------------------------
class ResultStore:
    """One sharded study's directory: manifest plus per-shard JSONL files."""

    def __init__(self, root):
        self.root = Path(root)

    @classmethod
    def create_or_attach(cls, root, manifest: dict) -> "ResultStore":
        """THE way to open a store for writing: create it, or attach to it.

        The shared entry point of every store-creating caller — shard
        launches (:func:`repro.dist.run_shard`) and the serve layer's job
        submissions — so concurrent creators of one directory cannot race
        manifest creation: exactly one writer publishes the manifest
        atomically (exclusive-create, the claim-file pattern), every
        other caller attaches and validates field by field, and a caller
        holding *different* settings gets :class:`StoreMismatchError`
        instead of silently clobbering the study that won.
        """
        store = cls(root)
        store.ensure_manifest(manifest)
        return store

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def read_manifest(self, missing_ok=False):
        if not self.manifest_path.exists():
            if missing_ok:
                return None
            raise StoreError(
                f"{self.root} is not a result store (no {MANIFEST_NAME}); "
                "run a shard into it first"
            )
        manifest = json.loads(self.manifest_path.read_text())
        if manifest.get("schema") != SCHEMA:
            raise StoreMismatchError(
                f"{self.manifest_path}: schema "
                f"{manifest.get('schema')!r} != {SCHEMA!r}"
            )
        return manifest

    def ensure_manifest(self, manifest: dict) -> dict:
        """Create the store for ``manifest``, or verify it already matches.

        The first caller to run creates the directory and *exclusively*
        publishes the manifest (see :meth:`_publish_manifest`); every
        later caller — another shard process, possibly on another host,
        or a concurrent job submission in the serve layer — compares
        field by field and refuses to write into a store whose
        grid/evaluator/config/workload differ.  Exactly one creator can
        win the publish, so two simultaneous creations with *different*
        settings resolve to one study plus one loud
        :class:`StoreMismatchError` — never to a silently mixed store.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        # JSON round-trip first so tuples/lists and int/float unify the
        # same way they will when read back.
        expected = json.loads(_dump(manifest))
        existing = self.read_manifest(missing_ok=True)
        if existing is None:
            existing = self._publish_manifest(expected)
        mismatched = sorted(
            key for key in set(expected) | set(existing)
            if expected.get(key) != existing.get(key)
        )
        if mismatched:
            raise StoreMismatchError(
                f"{self.root} was created for a different study "
                f"(mismatched manifest fields: {', '.join(mismatched)}); "
                "use a fresh --out directory per study"
            )
        return existing

    def _publish_manifest(self, expected: dict) -> dict:
        """Atomically create ``MANIFEST.json``, exclusive and complete.

        Mirrors the steal-claim pattern's exclusive creation with the
        content atomicity a manifest additionally needs: the payload is
        written to a uniquely-named temp file first and *hard-linked*
        into place — ``link`` fails with ``FileExistsError`` if the
        manifest already exists (the ``O_EXCL`` semantics) and publishes
        fully-written content when it succeeds, so a concurrent attacher
        can never observe a half-written manifest.  Losing the race is
        handled by reading back whatever the winner published (the
        caller validates it field by field).
        """
        payload = json.dumps(expected, sort_keys=True, indent=2, allow_nan=False)
        tmp = self.manifest_path.with_name(
            f"{MANIFEST_NAME}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(payload + "\n")
        try:
            os.link(tmp, self.manifest_path)
        except FileExistsError:
            return self.read_manifest()
        finally:
            tmp.unlink(missing_ok=True)
        return expected

    # -- shard files ---------------------------------------------------
    def shard_path(self, shard) -> Path:
        return self.root / f"shard-{shard.index:04d}-of-{shard.count:04d}.jsonl"

    def _matching_files(self, pattern) -> List[tuple]:
        files = []
        if self.root.is_dir():
            for entry in self.root.iterdir():
                match = pattern.match(entry.name)
                if match:
                    files.append((int(match.group(1)), int(match.group(2)), entry))
        return sorted(files)

    def shard_files(self) -> List[tuple]:
        """Present shard files as sorted ``(index, count, path)`` triples."""
        return self._matching_files(_SHARD_RE)

    # -- work-stealing artifacts ---------------------------------------
    def steal_path(self, shard) -> Path:
        """Where shard ``K/N`` appends records it stole from other shards.

        One writer per file still holds: each shard owns exactly one
        steal file, named after the *stealer* — the indices inside belong
        to other shards by definition.
        """
        return self.root / f"steal-{shard.index:04d}-of-{shard.count:04d}.jsonl"

    def steal_files(self) -> List[tuple]:
        """Present steal files as sorted ``(index, count, path)`` triples."""
        return self._matching_files(_STEAL_RE)

    @property
    def claims_dir(self) -> Path:
        """Directory of advisory steal-range claim files (see runner)."""
        return self.root / CLAIMS_DIR

    @property
    def fine_path(self) -> Path:
        return self.root / FINE_NAME

    def load_records(self, path) -> Dict[int, dict]:
        """Index every completion record of one JSONL file.

        First record wins per index: a record is immutable once written
        (the evaluation is deterministic), so later duplicates — e.g. a
        shard re-run racing its predecessor's unflushed tail — carry the
        same data and are dropped.
        """
        records: Dict[int, dict] = {}
        for record in load_jsonl(path):
            if not isinstance(record, dict) or "i" not in record:
                raise StoreCorruptError(
                    f"{path}: record without a grid index: {record!r}"
                )
            records.setdefault(int(record["i"]), record)
        return records
