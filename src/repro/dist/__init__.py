"""Sharded, resumable, multi-host design-space exploration.

Paper-scale cycle-accurate DSE studies outgrow one process: the grid is
embarrassingly parallel, but an in-memory sweep ties the whole study's
lifetime to one machine staying up.  This package turns a sweep into a
restartable *pipeline* over durable artifacts instead:

1. **shard** — the deterministic grid indexing of
   :mod:`repro.harness.dse` is the partition key: shard ``K/N`` owns a
   fixed, stateless index set (:mod:`repro.dist.sharding`), so any mix
   of hosts/processes can each run ``python -m repro dse-shard --shard
   K/N --out store/`` against a shared directory with no coordinator.
   Heterogeneous fleets weight the partition (``--shard K/N@w1,...,wN``
   — a 64-core box owns proportionally more of the grid than a laptop);
2. **persist** — every evaluated point becomes one JSONL completion
   record in the store (:mod:`repro.dist.store`): append-only, flushed
   per point, tolerant of a killed writer's truncated last line.
   Re-running a shard skips every index already recorded — checkpoint /
   resume for free;
3. **steal** — with ``--steal``, a shard that exhausts its own slice
   claims missing indices of slower shards (advisory per-range claim
   files, crash-safe: abandoned claims expire) and evaluates them into
   its own steal file, so the fleet's wall-clock tracks aggregate
   throughput instead of the slowest member (:mod:`repro.dist.runner`);
4. **merge** — ``dse-merge store/`` verifies the shards covered the
   grid (duplicates tolerated only when bit-identical, so stealing
   never compromises correctness) and reconstructs the single-process
   :func:`~repro.harness.dse.sweep_design_space` output **bit for bit**
   (points, grid ordering, Pareto frontier) for the analytical, cycle
   and hybrid evaluators — hybrid studies shard the cheap coarse phase
   and the merge host re-scores the surviving frontier, resumably
   (:mod:`repro.dist.merge`);
5. **observe** — ``dse-status store/`` reports per-shard progress
   (scored vs failed records, stolen-index counts, owed-after-stealing
   ETA, retry counts, ``--stall-after`` staleness flags) without
   touching an evaluator;
6. **supervise** — ``dse-fleet`` launches N shard subprocesses with
   heartbeat files and relaunches crashed or hung ones with backoff
   (:mod:`repro.dist.fleet`), so a seeded fault storm — or a real bad
   day — still converges to the same bit-identical merge.


The same machinery scales *down* to one box: N local processes sharding
one store are how the shard-scaling benchmark
(``benchmarks/perf/test_dist_perf.py``) and the CI smoke job exercise
the multi-host path.
"""

from .fleet import FleetResult, run_fleet
from .merge import (
    MergeResult,
    ShardStatus,
    StoreStatus,
    merge_store,
    store_status,
)
from .runner import (
    ShardRunResult,
    model_workload_spec,
    run_shard,
    workload_fingerprint,
    workload_from_spec,
)
from .sharding import ShardSpec, shard_indices
from .store import (
    IncompleteStoreError,
    JsonlAppender,
    ResultStore,
    StoreCorruptError,
    StoreError,
    StoreMismatchError,
    build_manifest,
    config_from_dict,
    config_to_dict,
    decode_record,
    encode_record,
)

__all__ = [
    "ShardSpec",
    "shard_indices",
    "ResultStore",
    "JsonlAppender",
    "StoreError",
    "StoreCorruptError",
    "StoreMismatchError",
    "IncompleteStoreError",
    "build_manifest",
    "config_to_dict",
    "config_from_dict",
    "encode_record",
    "decode_record",
    "ShardRunResult",
    "run_shard",
    "FleetResult",
    "run_fleet",
    "model_workload_spec",
    "workload_from_spec",
    "workload_fingerprint",
    "MergeResult",
    "merge_store",
    "ShardStatus",
    "StoreStatus",
    "store_status",
]
