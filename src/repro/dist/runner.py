"""Shard execution: evaluate one slice of a grid into a durable store.

:func:`run_shard` is the per-host entry point of a distributed study
(``python -m repro dse-shard`` wraps it): compute the shard's index set,
skip every index the store already holds a completion record for, stream
the rest through the shared DSE engine (any pluggable evaluator, optional
in-host ``n_jobs`` fan-out), and append one record per point as it
completes.  Batch-capable evaluators — the analytical default and the
batched cycle simulator ``"cycle"`` resolves to — score the shard's
strided index set in bounded whole-chunk numpy batches
(:mod:`repro.harness.dse`), still emitting one durable completion record
per point.  Killing the process at any moment loses at most the chunk in
flight (one point, for per-point evaluators); re-running the same command
finishes the shard.

Workload recipes (`workload spec` dicts) make stores portable across
hosts: instead of pickling a workload, the manifest records *how to build
it* (model name, sparsity, seed, ...), and every host reconstructs it
through the process-wide :mod:`repro.perf` cache — so N shards on one
machine share a single construction, and the merge host can rebuild the
exact workload for hybrid fine re-scoring.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from ..harness.dse import PointFailure, grid_size, iter_indexed_design_points
from ..hw.params import VITCOD_DEFAULT
from ..perf.cache import cached_model_workload, seeded_workload
from ..sim.evaluator import HybridEvaluator, resolve_evaluator
from .sharding import ShardSpec
from .store import JsonlAppender, ResultStore, build_manifest, encode_record

__all__ = [
    "ShardRunResult",
    "run_shard",
    "model_workload_spec",
    "workload_from_spec",
    "workload_fingerprint",
]


def workload_fingerprint(workload) -> str:
    """Digest of a workload's observable structure (shape + sparsity).

    The guard behind ``{"kind": "opaque"}`` manifests: a workload passed
    without a reconstruction recipe still pins the store to *this*
    workload's structure, so two shards run against different workloads
    cannot silently mix into one study (the manifest comparison fails
    loudly instead).  Covers everything the evaluators read — per-head
    polarization statistics and the dense GEMM walk — not Python
    identity, so equal workloads built on different hosts agree.
    """
    parts = [str(getattr(workload, "name", ""))]
    layers = getattr(workload, "attention_layers", workload)
    for layer in layers:
        parts.append(
            f"L{layer.num_tokens},{layer.num_heads},{layer.head_dim},"
            f"{int(layer.streaming_fallback)}"
        )
        parts.extend(
            f"h{head.num_global_tokens},{head.denser_nnz},"
            f"{head.sparser_nnz},{head.sparser_index_bytes},"
            f"{head.sparser_locality!r}"
            for head in layer.heads
        )
    for gemm in getattr(workload, "linear_layers", ()):
        parts.append(f"g{gemm.name},{gemm.m},{gemm.k},{gemm.n}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def model_workload_spec(
    model, sparsity=0.9, theta_d=0.25, seed=0, index_format="csc", reordered=True
) -> dict:
    """Recipe for a registry model's workload, for result-store manifests.

    Mirrors :func:`repro.perf.cached_model_workload`'s full parameter
    tuple — two hosts holding the same spec construct bit-identical
    workloads (synthetic attention maps are seeded).
    """
    return {
        "kind": "model",
        "model": str(model),
        "sparsity": sparsity,
        "theta_d": theta_d,
        "seed": seed,
        "index_format": index_format,
        "reordered": reordered,
    }


def workload_from_spec(spec):
    """Build the workload a manifest's spec describes (perf-cache backed).

    Construction routes through :func:`repro.perf.cached_model_workload`,
    so every shard/merge step in one process — and every evaluator call
    behind it — shares one workload object and its memoized geometry.
    """
    if not spec or spec.get("kind") != "model":
        raise ValueError(
            f"store manifest has no reconstructible workload spec "
            f"({spec!r}); pass workload= explicitly"
        )
    return cached_model_workload(
        spec["model"],
        sparsity=spec.get("sparsity", 0.9),
        theta_d=spec.get("theta_d", 0.25),
        seed=spec.get("seed", 0),
        index_format=spec.get("index_format", "csc"),
        reordered=spec.get("reordered", True),
    )


@dataclass(frozen=True)
class ShardRunResult:
    """Outcome of one :func:`run_shard` call."""

    shard: ShardSpec
    store: Path
    path: Path  # this shard's JSONL file
    total: int  # grid points owned by the shard
    evaluated: int  # scored by THIS run
    skipped: int  # already in the store (resume)
    failed: int  # failure records now in the shard file

    @property
    def complete(self) -> bool:
        return self.evaluated + self.skipped == self.total


def run_shard(
    workload,
    grid,
    shard,
    store,
    base_config=None,
    evaluator=None,
    n_jobs=1,
    chunksize=None,
    workload_spec=None,
) -> ShardRunResult:
    """Evaluate shard ``K/N`` of ``grid`` into a durable result store.

    Creates (or validates) the store's manifest, loads this shard's
    existing completion records, and evaluates **only the missing
    indices** — re-running after a crash, preemption or deliberate kill
    picks up where the file ends.  Each completed point (or captured
    evaluator failure) is appended and flushed immediately.

    ``workload=None`` uses the workload a pool initializer seeded into
    this process (:func:`repro.perf.seed_worker_workload`), mirroring the
    DSE engine's worker convention.  Hybrid evaluators shard their
    *coarse* phase here; the fine re-score belongs to the merge step
    (:func:`repro.dist.merge_store`), which needs the whole grid.
    ``workload_spec`` (see :func:`model_workload_spec`) is stored in the
    manifest so other hosts can verify — and the merge host rebuild —
    the workload.
    """
    shard = ShardSpec.parse(shard)
    grid = {name: tuple(values) for name, values in grid.items()}
    evaluator = resolve_evaluator(evaluator)
    point_evaluator = (
        evaluator.coarse if isinstance(evaluator, HybridEvaluator) else evaluator
    )
    base_config = base_config or VITCOD_DEFAULT
    if workload is None:
        workload = seeded_workload()
        if workload is None:
            raise ValueError(
                "workload is required (or seed the process "
                "with repro.perf.seed_worker_workload)"
            )

    # Pin the store to this workload's *structure*, recipe or not: two
    # shards run against different workloads then disagree on the
    # manifest and fail loudly instead of silently mixing — including a
    # caller-supplied recipe that does not describe the workload actually
    # evaluated (the merge host verifies its rebuilt workload against
    # this same fingerprint).
    if workload_spec is None:
        workload_spec = {"kind": "opaque"}
    workload_spec = {**workload_spec, "fingerprint": workload_fingerprint(workload)}
    store = ResultStore(store)
    store.ensure_manifest(
        build_manifest(grid, shard.count, evaluator, base_config, workload_spec)
    )
    path = store.shard_path(shard)
    done = store.load_records(path)
    owned = shard.indices(grid_size(grid))
    todo = [index for index in owned if index not in done]
    failed = sum(1 for record in done.values() if "err" in record)
    stream = iter_indexed_design_points(
        workload,
        grid,
        todo,
        base_config=base_config,
        n_jobs=n_jobs,
        chunksize=chunksize,
        evaluator=point_evaluator,
        keep_failures=True,
    )
    with JsonlAppender(path) as out:
        for index, result in stream:
            out.append(encode_record(index, result))
            if isinstance(result, PointFailure):
                failed += 1
    return ShardRunResult(
        shard=shard,
        store=store.root,
        path=path,
        total=len(owned),
        evaluated=len(todo),
        skipped=len(owned) - len(todo),
        failed=failed,
    )
