"""Shard execution: evaluate one slice of a grid into a durable store.

:func:`run_shard` is the per-host entry point of a distributed study
(``python -m repro dse-shard`` wraps it): compute the shard's index set,
skip every index the store already holds a completion record for, stream
the rest through the shared DSE engine (any pluggable evaluator, optional
in-host ``n_jobs`` fan-out), and append one record per point as it
completes.  Batch-capable evaluators — the analytical default and the
batched cycle simulator ``"cycle"`` resolves to — score the shard's
strided index set in bounded whole-chunk numpy batches
(:mod:`repro.harness.dse`), still emitting one durable completion record
per point.  Killing the process at any moment loses at most the chunk in
flight (one point, for per-point evaluators); re-running the same command
finishes the shard.

**Work-stealing** (``steal=True``) makes the fleet elastic: a shard that
exhausts its own index set computes which indices the store still owes —
the records themselves are the ledger, no coordinator needed — and
claims batches of a slower shard's missing work through advisory
per-range claim files (atomic ``O_EXCL`` creation; abandoned claims
expire after ``claim_ttl`` seconds).  Stolen completions append to the
stealer's own ``steal-K-of-N.jsonl`` file, so the one-writer-per-file
contract holds, and victims periodically re-scan steal coverage to skip
work someone else already finished.  Claims are *advisory*: two shards
racing on the same index at worst evaluate it twice, and because
evaluation is deterministic the duplicate records are bit-identical
(modulo timestamp) and the merge tolerates them.  A shard killed
mid-steal leaves at most a torn last line (repaired on resume) and an
unreleased claim (expired after the TTL) — the store stays mergeable
once any shard finishes the range.

Workload recipes (`workload spec` dicts) make stores portable across
hosts: instead of pickling a workload, the manifest records *how to build
it* (model name, sparsity, seed, ...), and every host reconstructs it
through the process-wide :mod:`repro.perf` cache — so N shards on one
machine share a single construction, and the merge host can rebuild the
exact workload for hybrid fine re-scoring.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..faults.evaluator import FaultyEvaluator
from ..faults.plan import activate, active_plan
from ..harness.dse import PointFailure, grid_size, iter_indexed_design_points
from ..hw.params import VITCOD_DEFAULT
from ..perf.cache import cached_model_workload, seeded_workload
from ..sim.evaluator import HybridEvaluator, resolve_evaluator
from .sharding import ShardSpec
from .store import JsonlAppender, ResultStore, build_manifest, encode_record

__all__ = [
    "ShardRunResult",
    "run_shard",
    "model_workload_spec",
    "workload_from_spec",
    "workload_fingerprint",
]

_log = obs.get_logger("dist.runner")

#: Grid indices claimed per steal batch: small enough that several
#: stealers share one straggler's backlog, large enough that
#: batch-capable evaluators still amortise their array walk.
_STEAL_CHUNK = 16

#: Seconds between re-scans of the store's steal files while a shard
#: works its own slice — the cadence at which a straggler notices that a
#: stealer already finished some of its indices and stops re-evaluating
#: them.
_COVERAGE_REFRESH_S = 0.5

#: Seconds before an unreleased claim file counts as abandoned (its
#: owner crashed or was preempted) and may be re-claimed.  ``<= 0``
#: disables the courtesy entirely: existing claims are ignored.
_CLAIM_TTL_S = 600.0

#: Default per-point budget of re-evaluations for *transient* failures
#: (``PointFailure.transient`` — see :mod:`repro.faults`), and the
#: jittered exponential backoff between retry rounds.  Deterministic
#: failures never retry: they persist exactly once, same as always.
_MAX_POINT_RETRIES = 4
_RETRY_BASE_S = 0.05
_RETRY_CAP_S = 2.0


def workload_fingerprint(workload) -> str:
    """Digest of a workload's observable structure (shape + sparsity).

    The guard behind ``{"kind": "opaque"}`` manifests: a workload passed
    without a reconstruction recipe still pins the store to *this*
    workload's structure, so two shards run against different workloads
    cannot silently mix into one study (the manifest comparison fails
    loudly instead).  Covers everything the evaluators read — per-head
    polarization statistics and the dense GEMM walk — not Python
    identity, so equal workloads built on different hosts agree.
    """
    parts = [str(getattr(workload, "name", ""))]
    layers = getattr(workload, "attention_layers", workload)
    for layer in layers:
        parts.append(
            f"L{layer.num_tokens},{layer.num_heads},{layer.head_dim},"
            f"{int(layer.streaming_fallback)}"
        )
        parts.extend(
            f"h{head.num_global_tokens},{head.denser_nnz},"
            f"{head.sparser_nnz},{head.sparser_index_bytes},"
            f"{head.sparser_locality!r}"
            for head in layer.heads
        )
    for gemm in getattr(workload, "linear_layers", ()):
        parts.append(f"g{gemm.name},{gemm.m},{gemm.k},{gemm.n}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def model_workload_spec(
    model, sparsity=0.9, theta_d=0.25, seed=0, index_format="csc", reordered=True
) -> dict:
    """Recipe for a registry model's workload, for result-store manifests.

    Mirrors :func:`repro.perf.cached_model_workload`'s full parameter
    tuple — two hosts holding the same spec construct bit-identical
    workloads (synthetic attention maps are seeded).
    """
    return {
        "kind": "model",
        "model": str(model),
        "sparsity": sparsity,
        "theta_d": theta_d,
        "seed": seed,
        "index_format": index_format,
        "reordered": reordered,
    }


def workload_from_spec(spec):
    """Build the workload a manifest's spec describes (perf-cache backed).

    Construction routes through :func:`repro.perf.cached_model_workload`,
    so every shard/merge step in one process — and every evaluator call
    behind it — shares one workload object and its memoized geometry.
    """
    if not spec or spec.get("kind") != "model":
        raise ValueError(
            f"store manifest has no reconstructible workload spec "
            f"({spec!r}); pass workload= explicitly"
        )
    return cached_model_workload(
        spec["model"],
        sparsity=spec.get("sparsity", 0.9),
        theta_d=spec.get("theta_d", 0.25),
        seed=spec.get("seed", 0),
        index_format=spec.get("index_format", "csc"),
        reordered=spec.get("reordered", True),
    )


@dataclass(frozen=True)
class ShardRunResult:
    """Outcome of one :func:`run_shard` call."""

    shard: ShardSpec
    store: Path
    path: Path  # this shard's JSONL file
    total: int  # grid points owned by the shard
    evaluated: int  # scored by THIS run
    skipped: int  # already recorded (resume, or stolen by another shard)
    failed: int  # failure records now in the shard file
    stolen: int = 0  # other shards' points THIS run claimed and recorded
    retried: int = 0  # transient-failure re-evaluations THIS run absorbed

    @property
    def complete(self) -> bool:
        return self.evaluated + self.skipped == self.total


# ----------------------------------------------------------------------
# Transient-failure retries and liveness heartbeats
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _RetryPolicy:
    """Capped, jittered exponential backoff for transient point failures."""

    budget: int = _MAX_POINT_RETRIES
    base_s: float = _RETRY_BASE_S
    cap_s: float = _RETRY_CAP_S

    def delay(self, attempt: int, rng) -> float:
        if self.base_s <= 0:
            return 0.0
        return min(self.cap_s, self.base_s * 2 ** (attempt - 1)) * (
            0.5 + rng.random()
        )


def _touch_heartbeat(path: Path):
    """Liveness signal tied to *progress*: touched once per durable record,
    so an evaluator hang (unlike mere slowness between records) shows up
    as a stale mtime a supervisor can act on.  A background thread would
    defeat the point — it keeps beating while the real work is stuck."""
    try:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a"):
            os.utime(path, None)
    except OSError:
        pass  # heartbeats are best-effort; never fail the shard for one


def _score_into(
    out,
    workload,
    grid,
    indices,
    *,
    base_config,
    n_jobs,
    chunksize,
    evaluator,
    handicap,
    retry,
    rng,
    counter,
    skip=None,
    heartbeat=None,
    plan=None,
):
    """Evaluate ``indices`` into appender ``out``, one record per point.

    The write path for both the owned slice and stolen batches.  A
    transient failure (``PointFailure.transient``) is *not* persisted on
    first sight: the point queues for re-evaluation in retry rounds with
    capped jittered exponential backoff, and only a success, a
    deterministic failure, or an exhausted budget becomes the durable
    completion record — carrying the retry count (``r``) it cost.
    Returns ``(recorded, failed, retried)``.
    """
    recorded = failed = retried = 0
    transient = {}  # grid index -> failed attempts so far

    def emit(index, result, retries=0):
        nonlocal recorded, failed
        if skip is not None and skip(index):
            return
        if handicap:
            time.sleep(handicap)
        out.append(encode_record(index, result, retries=retries))
        if heartbeat is not None:
            _touch_heartbeat(heartbeat)
        if plan is not None:
            plan.note_append()
        obs.counter(counter).inc()
        recorded += 1
        if isinstance(result, PointFailure):
            obs.counter("dist_failure_records").inc()
            failed += 1

    def evaluate(batch):
        return iter_indexed_design_points(
            workload,
            grid,
            batch,
            base_config=base_config,
            n_jobs=n_jobs,
            chunksize=chunksize,
            evaluator=evaluator,
            keep_failures=True,
        )

    for index, result in evaluate(indices):
        if retry.budget > 0 and getattr(result, "transient", False):
            transient[index] = 1
            obs.counter("dist_transient_failures").inc()
            continue
        emit(index, result)
    attempt = 1
    while transient and attempt <= retry.budget:
        time.sleep(retry.delay(attempt, rng))
        obs.counter("dist_point_retries").inc(len(transient))
        retried += len(transient)
        still = {}
        for index, result in evaluate(sorted(transient)):
            tries = transient[index]
            if getattr(result, "transient", False):
                if attempt < retry.budget:
                    still[index] = tries + 1
                    continue
                # Budget spent: the transient failure persists as the
                # point's completion record, tagged with what it cost.
                obs.counter("dist_retries_exhausted").inc()
            emit(index, result, retries=tries)
        transient = still
        attempt += 1
    return recorded, failed, retried


# ----------------------------------------------------------------------
# Work-stealing: owed indices, advisory claims, steal coverage
# ----------------------------------------------------------------------
def _recorded_indices(store: ResultStore) -> set:
    """Every grid index any shard or steal file holds a record for."""
    recorded = set()
    for _, _, path in store.shard_files():
        recorded.update(store.load_records(path))
    for _, _, path in store.steal_files():
        recorded.update(store.load_records(path))
    return recorded


def _owed_indices(size: int, shard: ShardSpec, recorded) -> list:
    """Grid indices still missing from the store that ``shard`` may steal.

    Pure set arithmetic so the invariant is property-testable: the owed
    set never overlaps the shard's own indices (a shard's own slice is
    its primary job, never "stolen" from itself) and together with the
    shard's own slice and the recorded set it covers the whole grid.
    """
    own = set(shard.indices(size))
    return [
        index
        for index in range(size)
        if index not in recorded and index not in own
    ]


def _steal_batches(owed, chunk):
    """Deterministic contiguous batches of the sorted owed index list.

    Determinism is what bounds redundancy: two stealers looking at the
    same store state compute the same batches, so the claim files (named
    after each batch's index range) serialise them instead of letting
    both evaluate everything.
    """
    for start in range(0, len(owed), chunk):
        yield owed[start : start + chunk]


def _claim_path(store: ResultStore, batch) -> Path:
    return store.claims_dir / f"steal-{batch[0]:08d}-{batch[-1]:08d}.claim"


def _try_claim(path: Path, shard, ttl: float) -> bool:
    """Atomically claim a steal range, honouring unexpired prior claims.

    ``O_CREAT | O_EXCL`` makes first-creation atomic on a shared
    directory; an existing claim younger than ``ttl`` seconds (by file
    mtime) is respected, an older one is considered abandoned and taken
    over (atomic replace, last writer wins).  Claims are *advisory*: a
    lost race means redundant — never wrong — work, because the merge
    tolerates bit-identical duplicates.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    plan = active_plan()
    if plan is not None:
        # Chaos hook: widen the window between computing the owed set
        # and claiming it, so claim races actually happen under test.
        plan.claim_fault()
    payload = json.dumps({"shard": str(shard), "t": time.time()})
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            # The owner released it between our open and stat: treat the
            # range as handled and move on.
            return False
        if ttl > 0 and age <= ttl:
            return False
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(payload + "\n")
        os.replace(tmp, path)
        obs.counter("dist_steal_claims").inc()
        obs.counter("dist_claim_takeovers").inc()
        _log.info(
            "shard %s took over abandoned claim %s (%.1fs old)",
            shard,
            path.name,
            age,
        )
        return True
    with os.fdopen(fd, "w") as fh:
        fh.write(payload + "\n")
    obs.counter("dist_steal_claims").inc()
    return True


def _release_claim(path: Path):
    try:
        path.unlink()
    except OSError:
        pass


class _StealCoverage:
    """Time-bounded view of the grid indices steal files already cover.

    A straggler consults this before recording each of its own points:
    if a stealer already persisted the index, the point is skipped (the
    record exists, re-recording it would only add a tolerated duplicate
    and waste the straggler's time).  Re-scanning the steal files on
    every point would hammer the (possibly networked) store, so scans
    are rate-limited to one per ``refresh_s`` seconds.
    """

    def __init__(self, store, shard, refresh_s=_COVERAGE_REFRESH_S):
        self._store = store
        self._own = (shard.index, shard.count)
        self._refresh_s = refresh_s
        self._covered = set()
        self._last = None

    def refresh(self) -> set:
        covered = set()
        for shard_index, shard_count, path in self._store.steal_files():
            if (shard_index, shard_count) == self._own:
                continue
            covered.update(self._store.load_records(path))
        self._covered = covered
        self._last = time.monotonic()
        return covered

    def covered(self, index) -> bool:
        if self._last is None or time.monotonic() - self._last >= self._refresh_s:
            self.refresh()
        return index in self._covered


def _steal_missing(
    workload,
    grid,
    shard,
    store,
    base_config,
    evaluator,
    n_jobs,
    chunksize,
    steal_chunk,
    claim_ttl,
    handicap,
    retry,
    rng,
    heartbeat=None,
    plan=None,
) -> tuple:
    """Claim and evaluate grid indices slower shards still owe.

    Loops until the store owes nothing this shard can claim: each round
    re-reads the ledger (other shards and stealers make progress
    concurrently), carves the owed indices into deterministic batches,
    and evaluates every batch it wins the claim for — batch-dispatched
    through the same chunk path as owned work, one durable record per
    point in this shard's steal file.  Exits without waiting when every
    remaining owed range is claimed by a live stealer; if that stealer
    dies, its claim expires and any later ``steal=True`` run finishes
    the range.
    """
    size = grid_size(grid)
    stolen = retried = 0
    with JsonlAppender(store.steal_path(shard)) as out:
        while True:
            owed = _owed_indices(size, shard, _recorded_indices(store))
            if not owed:
                break
            progressed = False
            for batch in _steal_batches(owed, steal_chunk):
                claim = _claim_path(store, batch)
                if not _try_claim(claim, shard, claim_ttl):
                    continue
                recorded, _, batch_retried = _score_into(
                    out,
                    workload,
                    grid,
                    batch,
                    base_config=base_config,
                    n_jobs=n_jobs,
                    chunksize=chunksize,
                    evaluator=evaluator,
                    handicap=handicap,
                    retry=retry,
                    rng=rng,
                    counter="dist_records_stolen",
                    heartbeat=heartbeat,
                    plan=plan,
                )
                stolen += recorded
                retried += batch_retried
                _release_claim(claim)
                progressed = True
            if not progressed:
                break
    return stolen, retried


def run_shard(
    workload,
    grid,
    shard,
    store,
    base_config=None,
    evaluator=None,
    n_jobs=1,
    chunksize=None,
    workload_spec=None,
    steal=False,
    steal_chunk=None,
    claim_ttl=_CLAIM_TTL_S,
    handicap=0.0,
    max_point_retries=_MAX_POINT_RETRIES,
    heartbeat=None,
) -> ShardRunResult:
    """Evaluate shard ``K/N`` of ``grid`` into a durable result store.

    Creates (or validates) the store's manifest, loads this shard's
    existing completion records, and evaluates **only the missing
    indices** — re-running after a crash, preemption or deliberate kill
    picks up where the file ends.  Each completed point (or captured
    evaluator failure) is appended and flushed immediately.  Indices a
    stealer's ``steal-*.jsonl`` file already covers are skipped too (and
    re-checked periodically while running), so a straggler stops
    re-evaluating work the fleet already finished.

    ``shard`` accepts weighted spellings (``"2/3@4,1,1"``, see
    :meth:`ShardSpec.parse`); a shard launched without weights against a
    weighted store adopts the manifest's vector, and a conflicting
    vector fails loudly.  ``steal=True`` adds a steal phase after the
    own slice completes: missing indices of slower shards are claimed in
    ``steal_chunk``-sized ranges (advisory claim files under
    ``claims/``, abandoned ones expire after ``claim_ttl`` seconds) and
    evaluated into this shard's steal file — see :func:`_steal_missing`.
    ``handicap`` sleeps that many seconds per recorded point (an
    artificial straggler for stealing tests and benchmarks).

    ``workload=None`` uses the workload a pool initializer seeded into
    this process (:func:`repro.perf.seed_worker_workload`), mirroring the
    DSE engine's worker convention.  Hybrid evaluators shard their
    *coarse* phase here; the fine re-score belongs to the merge step
    (:func:`repro.dist.merge_store`), which needs the whole grid.
    ``workload_spec`` (see :func:`model_workload_spec`) is stored in the
    manifest so other hosts can verify — and the merge host rebuild —
    the workload.

    Failures are classified: a *transient* one (the evaluator raised a
    :class:`repro.faults.TransientError` or ``OSError``) is re-evaluated
    up to ``max_point_retries`` times with jittered backoff before
    anything is persisted, and the completion record carries the retry
    count; a deterministic failure persists exactly once, as always.  A
    :class:`repro.faults.FaultyEvaluator` is recognised here: its plan is
    scoped to the store (one-shot faults survive process relaunches) and
    activated for the duration, arming the write-path and claim hooks.
    ``heartbeat`` names a file touched once per durable record — a
    supervisor (``dse-fleet``) reads its mtime to tell a hung shard from
    a slow one.
    """
    shard = ShardSpec.parse(shard)
    grid = {name: tuple(values) for name, values in grid.items()}
    evaluator = resolve_evaluator(evaluator)
    plan = getattr(evaluator, "fault_plan", None)
    scoring = evaluator.inner if plan is not None else evaluator
    point_evaluator = (
        scoring.coarse if isinstance(scoring, HybridEvaluator) else scoring
    )
    base_config = base_config or VITCOD_DEFAULT
    if workload is None:
        workload = seeded_workload()
        if workload is None:
            raise ValueError(
                "workload is required (or seed the process "
                "with repro.perf.seed_worker_workload)"
            )

    # Pin the store to this workload's *structure*, recipe or not: two
    # shards run against different workloads then disagree on the
    # manifest and fail loudly instead of silently mixing — including a
    # caller-supplied recipe that does not describe the workload actually
    # evaluated (the merge host verifies its rebuilt workload against
    # this same fingerprint).
    if workload_spec is None:
        workload_spec = {"kind": "opaque"}
    workload_spec = {**workload_spec, "fingerprint": workload_fingerprint(workload)}
    store = ResultStore(store)
    existing = store.read_manifest(missing_ok=True)
    if shard.weights is None and existing and existing.get("weights"):
        # A weighted store pins its vector: unweighted launch commands
        # inherit it, so only the host that creates the study needs the
        # full spelling.
        shard = ShardSpec(
            shard.index,
            shard.count,
            weights=tuple(int(weight) for weight in existing["weights"]),
        )
    store.ensure_manifest(
        build_manifest(
            grid,
            shard.count,
            evaluator,
            base_config,
            workload_spec,
            weights=shard.weights,
        )
    )
    path = store.shard_path(shard)
    size = grid_size(grid)
    done = store.load_records(path)
    coverage = _StealCoverage(store, shard)
    covered = coverage.refresh()
    owned = shard.indices(size)
    todo = [index for index in owned if index not in done and index not in covered]
    failed = sum(1 for record in done.values() if "err" in record)
    registry = obs.get_registry()
    if registry.enabled and len(owned) > len(todo):
        registry.counter("dist_resume_skips").inc(len(owned) - len(todo))

    if plan is not None:
        # Bind the plan's one-shot markers to the store directory (so a
        # relaunched shard does not re-fire a spent fault) and hand the
        # point evaluator a wrapper carrying the scoped plan.
        plan = plan.scoped(store.root)
        point_evaluator = FaultyEvaluator(point_evaluator, plan)
    retry = _RetryPolicy(budget=max(0, int(max_point_retries)))
    rng = random.Random()  # backoff jitter only — never affects results
    if heartbeat is not None:
        heartbeat = Path(heartbeat)
        _touch_heartbeat(heartbeat)

    def pending():
        for index in todo:
            if coverage.covered(index):
                continue
            yield index

    with obs.span("dist_shard", shard=str(shard)):
        with activate(plan) if plan is not None else nullcontext():
            with JsonlAppender(path) as out:
                evaluated, new_failed, retried = _score_into(
                    out,
                    workload,
                    grid,
                    pending(),
                    base_config=base_config,
                    n_jobs=n_jobs,
                    chunksize=chunksize,
                    evaluator=point_evaluator,
                    handicap=handicap,
                    retry=retry,
                    rng=rng,
                    counter="dist_records_written",
                    # A stealer may persist an index while its chunk is in
                    # flight; recording it again would only add a tolerated
                    # duplicate.
                    skip=coverage.covered,
                    heartbeat=heartbeat,
                    plan=plan,
                )
                failed += new_failed

            stolen = 0
            if steal:
                stolen, steal_retried = _steal_missing(
                    workload,
                    grid,
                    shard,
                    store,
                    base_config,
                    point_evaluator,
                    n_jobs,
                    chunksize,
                    steal_chunk or _STEAL_CHUNK,
                    claim_ttl,
                    handicap,
                    retry,
                    rng,
                    heartbeat=heartbeat,
                    plan=plan,
                )
                retried += steal_retried
    _log.info(
        "shard %s: %d evaluated, %d skipped, %d failed, %d stolen, %d retried",
        shard,
        evaluated,
        len(owned) - evaluated,
        failed,
        stolen,
        retried,
    )
    return ShardRunResult(
        shard=shard,
        store=store.root,
        path=path,
        total=len(owned),
        evaluated=evaluated,
        skipped=len(owned) - evaluated,
        failed=failed,
        stolen=stolen,
        retried=retried,
    )
