"""Fold sharded result stores back into single-process sweep output.

:func:`merge_store` reads every shard file of a store, verifies the
partition actually covered the grid (each index exactly once — a missing
or double-counted point is an error, not a silent gap), and reconstructs
the exact output of :func:`repro.harness.dse.sweep_design_space` on the
same grid: the full :class:`~repro.harness.dse.DesignPoint` table in
deterministic grid order and its Pareto frontier, **bit for bit** —
records round-trip through JSON's shortest-repr floats, failures are
dropped with the same :class:`RuntimeWarning` the in-memory sweep emits,
and frontier construction sees points in the same (grid) order.

Hybrid studies shard their cheap *coarse* phase; the expensive fine
re-score of the surviving frontier happens here, on the merge host, with
the same resume machinery shards use (survivor records accumulate in
``fine-rescore.jsonl``, so an interrupted merge re-scores only missing
survivors).

:func:`store_status` is the monitoring companion: per-shard completion
counts without touching any evaluator.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Tuple

from ..harness.dse import (
    DesignPoint,
    PointFailure,
    _batch_capable,
    _hybrid_survivors,
    iter_indexed_design_points,
    pareto_frontier,
)
from ..sim.evaluator import HybridEvaluator, evaluator_from_spec, resolve_evaluator
from .runner import workload_fingerprint, workload_from_spec
from .sharding import ShardSpec
from .store import (
    FINE_NAME,
    IncompleteStoreError,
    JsonlAppender,
    ResultStore,
    StoreCorruptError,
    StoreMismatchError,
    config_from_dict,
    decode_record,
    encode_record,
)

__all__ = [
    "MergeResult",
    "merge_store",
    "ShardStatus",
    "StoreStatus",
    "store_status",
]


@dataclass(frozen=True)
class MergeResult:
    """A merged study: the single-process sweep's output, reconstructed."""

    points: Tuple[DesignPoint, ...]  # deterministic grid order
    frontier: Tuple[DesignPoint, ...]  # pareto_frontier(points)
    manifest: dict
    dropped: int  # failure records dropped (mirrors the sweep's warns)


def _drop_failure(index, failure: PointFailure):
    """Mirror :func:`repro.harness.dse._filter_failures`' warning."""
    warnings.warn(
        f"DSE point {index} {dict(failure.parameters)!r} dropped: "
        f"evaluator raised {failure.error}",
        RuntimeWarning,
        stacklevel=3,
    )


def _load_merged_records(store: ResultStore, manifest: dict) -> dict:
    """Every shard's records as one ``index -> record`` map, verified.

    Checks the three partition invariants: all files belong to this
    store's ``N``-way partition, no index appears in two shards, and no
    index is missing — the definition of "the shards covered the grid
    exactly once".
    """
    num_shards = manifest["num_shards"]
    size = manifest["grid_size"]
    records: dict = {}
    for shard_index, shard_count, path in store.shard_files():
        if shard_count != num_shards:
            raise StoreMismatchError(
                f"{path.name} belongs to a /{shard_count} partition but "
                f"the store was created for /{num_shards}"
            )
        owned = set(ShardSpec(shard_index, shard_count).indices(size))
        for index, record in store.load_records(path).items():
            if index not in owned:
                raise StoreCorruptError(
                    f"{path.name} holds grid index {index}, which shard "
                    f"{shard_index}/{shard_count} does not own"
                )
            if index in records:
                raise StoreCorruptError(
                    f"grid index {index} appears in multiple shard files"
                )
            records[index] = record
    if len(records) < size:
        missing = size - len(records)
        raise IncompleteStoreError(
            f"store holds {len(records)} of {size} grid points "
            f"({missing} missing); run the remaining shards "
            "(see `python -m repro dse-status`)"
        )
    return records


def merge_store(store, workload=None, evaluator=None, n_jobs: int = 1) -> MergeResult:
    """Merge a complete sharded store into the single-process sweep result.

    For analytical/cycle studies this touches no evaluator: records are
    decoded in grid order and the frontier recomputed.  For hybrid
    studies the store holds the sharded *coarse* scores; the global
    coarse frontier is pruned here and its survivors re-scored with the
    fine evaluator (resumable via ``fine-rescore.jsonl``), reproducing
    ``sweep_design_space(..., evaluator="hybrid")`` exactly.

    ``workload`` / ``evaluator`` are only needed for hybrid studies, and
    only when the manifest cannot supply them (an opaque workload spec, a
    custom evaluator); built-in setups reconstruct both from the
    manifest.
    """
    store = ResultStore(store)
    manifest = store.read_manifest()
    records = _load_merged_records(store, manifest)

    pairs = []  # (grid_index, DesignPoint) with failures dropped
    dropped = 0
    for index in range(manifest["grid_size"]):
        record_index, result = decode_record(records[index])
        if record_index != index:
            raise StoreCorruptError(f"record indexed {index} decodes to {record_index}")
        if isinstance(result, PointFailure):
            _drop_failure(index, result)
            dropped += 1
            continue
        pairs.append((index, result))

    if manifest["evaluator"].get("name") == "hybrid":
        points, fine_dropped = _fine_rescore(
            store, manifest, pairs, workload, evaluator, n_jobs
        )
        dropped += fine_dropped
    else:
        points = [point for _, point in pairs]
    return MergeResult(
        points=tuple(points),
        frontier=tuple(pareto_frontier(points)),
        manifest=manifest,
        dropped=dropped,
    )


def _fine_rescore(store, manifest, pairs, workload, evaluator, n_jobs):
    """Hybrid phase 2 on the merge host: re-score the coarse frontier.

    Survivor selection is the shared
    :func:`repro.harness.dse._hybrid_survivors` rule over the merged
    coarse scores in grid order (the non-dominated set of a multiset is
    arrival-order independent, so sharded execution order cannot change
    it).  Fine scores append to the store like any shard file, so an
    interrupted merge resumes.
    """
    if evaluator is None:
        evaluator = evaluator_from_spec(manifest["evaluator"])
    else:
        evaluator = resolve_evaluator(evaluator)
    if not isinstance(evaluator, HybridEvaluator):
        raise ValueError(
            "merging a hybrid store needs a HybridEvaluator "
            f"(got {type(evaluator)!r})"
        )
    if getattr(evaluator, "adaptive", False):
        raise ValueError(
            "adaptive hybrid evaluators cannot drive a sharded merge: "
            "band pruning depends on in-memory scoring order, while the "
            "fine store must hold every coarse-frontier survivor so "
            "resumed merges reproduce the non-adaptive sweep exactly; "
            "merge with adaptive=False"
        )
    workload_spec = manifest.get("workload") or {}
    if workload is None:
        workload = workload_from_spec(workload_spec)
    expected = workload_spec.get("fingerprint")
    if expected is not None and workload_fingerprint(workload) != expected:
        raise StoreMismatchError(
            "the workload passed to merge_store does not match the "
            "structure fingerprint the store's shards were run against"
        )
    base_config = config_from_dict(manifest["base_config"])
    grid = {name: tuple(values) for name, values in manifest["grid"].items()}

    survivors = [index for index, _ in _hybrid_survivors(pairs)]

    done = store.load_records(store.fine_path)
    todo = [index for index in survivors if index not in done]
    if todo:
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        if _batch_capable(evaluator.fine):
            # A batch-capable fine evaluator (the default batched cycle
            # simulator) scores the survivor set as a few in-process
            # array walks, as the in-memory hybrid sweep does.
            fine_jobs, fine_chunk = 1, None
        else:
            # One survivor per task, as the in-memory hybrid sweep does:
            # survivor counts are small and each point is expensive.
            fine_jobs, fine_chunk = min(max(1, int(n_jobs)), len(todo)), 1
        with JsonlAppender(store.fine_path) as out:
            for index, result in iter_indexed_design_points(
                    workload, grid, todo, base_config=base_config,
                    n_jobs=fine_jobs, chunksize=fine_chunk,
                    evaluator=evaluator.fine, keep_failures=True):
                out.append(encode_record(index, result))
        done = store.load_records(store.fine_path)

    points = []
    dropped = 0
    for index in survivors:
        if index not in done:
            raise IncompleteStoreError(
                f"{FINE_NAME} is missing survivor {index} after re-score"
            )
        _, result = decode_record(done[index])
        if isinstance(result, PointFailure):
            _drop_failure(index, result)
            dropped += 1
            continue
        points.append(result)
    return points, dropped


# ----------------------------------------------------------------------
# Status
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardStatus:
    """Progress of one shard (a shard with no file yet reads all-pending)."""

    shard: ShardSpec
    total: int
    done: int  # completion records present (scored + failed)
    failed: int
    #: Seconds until this shard finishes at its observed throughput
    #: (record timestamps), ``0.0`` when complete, ``None`` when the
    #: shard has too few timestamped records to estimate a rate.
    eta_seconds: float = None

    @property
    def pending(self) -> int:
        return self.total - self.done

    @property
    def fraction_done(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def complete(self) -> bool:
        return self.done >= self.total


@dataclass(frozen=True)
class StoreStatus:
    """Whole-store progress: per-shard counts plus study totals."""

    manifest: dict
    shards: Tuple[ShardStatus, ...]
    fine_records: int  # hybrid re-score progress (0 for plain studies)

    @property
    def grid_size(self) -> int:
        return self.manifest["grid_size"]

    @property
    def done(self) -> int:
        return sum(s.done for s in self.shards)

    @property
    def failed(self) -> int:
        return sum(s.failed for s in self.shards)

    @property
    def fraction_done(self) -> float:
        return self.done / self.grid_size if self.grid_size else 1.0

    @property
    def complete(self) -> bool:
        return self.done >= self.grid_size

    @property
    def eta_seconds(self):
        """Seconds until the *slowest* shard finishes (a sharded study is
        done when its last shard is), ``None`` while any running shard's
        rate is still unknown."""
        etas = [s.eta_seconds for s in self.shards]
        if any(eta is None for eta in etas):
            return None
        return max(etas, default=0.0)


def _shard_eta(records, owned, pending) -> float:
    """ETA of one shard from its completion-record timestamps.

    The observed rate is ``(records - 1) / (newest - oldest)`` over this
    shard's timestamped records — resume-friendly (gaps between runs
    flatten the rate estimate rather than breaking it) and free of any
    clock-synchronisation assumption across hosts, since only one
    shard's own timestamps are ever compared.  Returns ``0.0`` for a
    complete shard and ``None`` below two distinct timestamps (no rate
    observable yet).
    """
    if pending <= 0:
        return 0.0
    stamps = sorted(
        float(record["t"]) for index, record in records.items()
        if index in owned and "t" in record
    )
    if len(stamps) < 2 or stamps[-1] <= stamps[0]:
        return None
    rate = (len(stamps) - 1) / (stamps[-1] - stamps[0])
    return pending / rate


def store_status(store) -> StoreStatus:
    """Inspect a store's progress without evaluating anything.

    Besides per-shard completion counts, each :class:`ShardStatus`
    carries an ``eta_seconds`` derived from its completion-record
    timestamps (see :func:`_shard_eta`); stores written before records
    carried timestamps simply report ``None``.
    """
    store = ResultStore(store)
    manifest = store.read_manifest()
    size = manifest["grid_size"]
    statuses = []
    for k in range(1, manifest["num_shards"] + 1):
        shard = ShardSpec(k, manifest["num_shards"])
        records = store.load_records(store.shard_path(shard))
        owned = set(shard.indices(size))
        done = sum(1 for index in records if index in owned)
        failed = sum(
            1
            for index, record in records.items()
            if index in owned and "err" in record
        )
        status = ShardStatus(
            shard=shard,
            total=len(owned),
            done=done,
            failed=failed,
            eta_seconds=_shard_eta(records, owned, len(owned) - done),
        )
        statuses.append(status)
    fine = len(store.load_records(store.fine_path))
    return StoreStatus(manifest=manifest, shards=tuple(statuses), fine_records=fine)
