"""Fold sharded result stores back into single-process sweep output.

:func:`merge_store` reads every shard file of a store — including the
``steal-*.jsonl`` files work-stealing shards write — verifies the
partition actually covered the grid (a missing point is an error, not a
silent gap), and reconstructs the exact output of
:func:`repro.harness.dse.sweep_design_space` on the same grid: the full
:class:`~repro.harness.dse.DesignPoint` table in deterministic grid
order and its Pareto frontier, **bit for bit** — records round-trip
through JSON's shortest-repr floats, failures are dropped with the same
:class:`RuntimeWarning` the in-memory sweep emits, and frontier
construction sees points in the same (grid) order.

Work-stealing makes duplicates possible (claims are advisory), so the
merge is *duplicate-tolerant rather than exactly-once*: an index may
appear in several files as long as every copy carries the same payload
(the record minus its wall-clock timestamp — all built-in evaluators are
deterministic, so honest duplicates are bit-identical).  Conflicting
copies mean a non-deterministic evaluator or mixed studies and fail
loudly.  Ownership stays checked: a shard file may only hold its own
indices, a steal file only *other* shards' indices.

Hybrid studies shard their cheap *coarse* phase; the expensive fine
re-score of the surviving frontier happens here, on the merge host, with
the same resume machinery shards use (survivor records accumulate in
``fine-rescore.jsonl``, so an interrupted merge re-scores only missing
survivors).

:func:`store_status` is the monitoring companion: per-shard completion
counts — scored vs persisted-failure records, stolen-index counts, and
an ETA over the work each shard still *owes after stealing* — without
touching any evaluator.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Tuple

from .. import obs
from ..harness.dse import (
    DesignPoint,
    PointFailure,
    _batch_capable,
    _hybrid_survivors,
    iter_indexed_design_points,
    pareto_frontier,
)
from ..sim.evaluator import HybridEvaluator, evaluator_from_spec, resolve_evaluator
from .runner import workload_fingerprint, workload_from_spec
from .sharding import ShardSpec
from .store import (
    FINE_NAME,
    IncompleteStoreError,
    JsonlAppender,
    ResultStore,
    StoreCorruptError,
    StoreMismatchError,
    config_from_dict,
    decode_record,
    encode_record,
    record_payload,
)

__all__ = [
    "MergeResult",
    "merge_store",
    "ShardStatus",
    "StoreStatus",
    "store_status",
]

_log = obs.get_logger("dist.merge")


@dataclass(frozen=True)
class MergeResult:
    """A merged study: the single-process sweep's output, reconstructed."""

    points: Tuple[DesignPoint, ...]  # deterministic grid order
    frontier: Tuple[DesignPoint, ...]  # pareto_frontier(points)
    manifest: dict
    dropped: int  # failure records dropped (mirrors the sweep's warns)
    duplicates: int = 0  # redundant payload-identical records tolerated


def _drop_failure(index, failure: PointFailure):
    """Mirror :func:`repro.harness.dse._filter_failures`' warning."""
    _log.warning(
        "DSE point %d %r dropped: evaluator raised %s",
        index,
        dict(failure.parameters),
        failure.error,
    )
    obs.counter("dse_points_failed").inc()
    warnings.warn(
        f"DSE point {index} {dict(failure.parameters)!r} dropped: "
        f"evaluator raised {failure.error}",
        RuntimeWarning,
        stacklevel=3,
    )


def _shard_spec(manifest: dict, shard_index: int) -> ShardSpec:
    """The store's shard ``shard_index``, honouring manifest weights."""
    weights = manifest.get("weights")
    return ShardSpec(
        shard_index,
        manifest["num_shards"],
        weights=tuple(int(weight) for weight in weights) if weights else None,
    )


def _load_merged_records(store: ResultStore, manifest: dict):
    """Every shard's records as one ``index -> record`` map, verified.

    Returns ``(records, duplicates)``.  Checks the partition invariants:
    all files belong to this store's ``N``-way partition, a shard file
    holds only indices the (possibly weighted) shard owns, a steal file
    holds only in-range indices its shard does *not* own, and no index
    is missing.  An index recorded more than once is tolerated when
    every copy has the same payload (timestamp aside) and counted in
    ``duplicates``; conflicting copies raise :class:`StoreCorruptError`.
    """
    num_shards = manifest["num_shards"]
    size = manifest["grid_size"]
    records: dict = {}
    duplicates = 0
    sources = [
        (index, count, path, False) for index, count, path in store.shard_files()
    ] + [(index, count, path, True) for index, count, path in store.steal_files()]
    for shard_index, shard_count, path, is_steal in sources:
        if shard_count != num_shards:
            raise StoreMismatchError(
                f"{path.name} belongs to a /{shard_count} partition but "
                f"the store was created for /{num_shards}"
            )
        owned = set(_shard_spec(manifest, shard_index).indices(size))
        for index, record in store.load_records(path).items():
            if is_steal and index in owned:
                raise StoreCorruptError(
                    f"{path.name} holds grid index {index}, which shard "
                    f"{shard_index}/{shard_count} owns outright — steal "
                    "files may only cover other shards' indices"
                )
            if is_steal and not 0 <= index < size:
                raise StoreCorruptError(
                    f"{path.name} holds grid index {index}, outside the "
                    f"{size}-point grid"
                )
            if not is_steal and index not in owned:
                raise StoreCorruptError(
                    f"{path.name} holds grid index {index}, which shard "
                    f"{shard_index}/{shard_count} does not own"
                )
            if index in records:
                if record_payload(records[index]) == record_payload(record):
                    duplicates += 1
                    continue
                raise StoreCorruptError(
                    f"grid index {index} appears in multiple files with "
                    "conflicting results — the evaluator is not "
                    "deterministic, or the store mixes studies"
                )
            records[index] = record
    if len(records) < size:
        missing = size - len(records)
        raise IncompleteStoreError(
            f"store holds {len(records)} of {size} grid points "
            f"({missing} missing); run the remaining shards "
            "(see `python -m repro dse-status`)"
        )
    return records, duplicates


def merge_store(store, workload=None, evaluator=None, n_jobs: int = 1) -> MergeResult:
    """Merge a complete sharded store into the single-process sweep result.

    For analytical/cycle studies this touches no evaluator: records are
    decoded in grid order and the frontier recomputed.  For hybrid
    studies the store holds the sharded *coarse* scores; the global
    coarse frontier is pruned here and its survivors re-scored with the
    fine evaluator (resumable via ``fine-rescore.jsonl``), reproducing
    ``sweep_design_space(..., evaluator="hybrid")`` exactly.

    ``workload`` / ``evaluator`` are only needed for hybrid studies, and
    only when the manifest cannot supply them (an opaque workload spec, a
    custom evaluator); built-in setups reconstruct both from the
    manifest.
    """
    store = ResultStore(store)
    manifest = store.read_manifest()
    with obs.span("dist_merge"):
        return _merge_loaded(store, manifest, workload, evaluator, n_jobs)


def _merge_loaded(store, manifest, workload, evaluator, n_jobs) -> MergeResult:
    records, duplicates = _load_merged_records(store, manifest)

    pairs = []  # (grid_index, DesignPoint) with failures dropped
    dropped = 0
    for index in range(manifest["grid_size"]):
        record_index, result = decode_record(records[index])
        if record_index != index:
            raise StoreCorruptError(f"record indexed {index} decodes to {record_index}")
        if isinstance(result, PointFailure):
            _drop_failure(index, result)
            dropped += 1
            continue
        pairs.append((index, result))

    if manifest["evaluator"].get("name") == "hybrid":
        points, fine_dropped = _fine_rescore(
            store, manifest, pairs, workload, evaluator, n_jobs
        )
        dropped += fine_dropped
    else:
        points = [point for _, point in pairs]
    obs.counter("dist_merges").inc()
    if duplicates:
        obs.counter("dist_duplicates_tolerated").inc(duplicates)
    return MergeResult(
        points=tuple(points),
        frontier=tuple(pareto_frontier(points)),
        manifest=manifest,
        dropped=dropped,
        duplicates=duplicates,
    )


def _fine_rescore(store, manifest, pairs, workload, evaluator, n_jobs):
    """Hybrid phase 2 on the merge host: re-score the coarse frontier.

    Survivor selection is the shared
    :func:`repro.harness.dse._hybrid_survivors` rule over the merged
    coarse scores in grid order (the non-dominated set of a multiset is
    arrival-order independent, so sharded execution order cannot change
    it).  Fine scores append to the store like any shard file, so an
    interrupted merge resumes.
    """
    if evaluator is None:
        # Strip any fault plan the study ran under: the merge host
        # re-scores survivors healthily, which is exactly the chaos
        # invariant (a faulty study merges bit-identical to the healthy
        # serial sweep).
        spec = {
            key: value
            for key, value in manifest["evaluator"].items()
            if key != "faults"
        }
        evaluator = evaluator_from_spec(spec)
    else:
        evaluator = resolve_evaluator(evaluator)
    if not isinstance(evaluator, HybridEvaluator):
        raise ValueError(
            "merging a hybrid store needs a HybridEvaluator "
            f"(got {type(evaluator)!r})"
        )
    if getattr(evaluator, "adaptive", False):
        raise ValueError(
            "adaptive hybrid evaluators cannot drive a sharded merge: "
            "band pruning depends on in-memory scoring order, while the "
            "fine store must hold every coarse-frontier survivor so "
            "resumed merges reproduce the non-adaptive sweep exactly; "
            "merge with adaptive=False"
        )
    workload_spec = manifest.get("workload") or {}
    if workload is None:
        workload = workload_from_spec(workload_spec)
    expected = workload_spec.get("fingerprint")
    if expected is not None and workload_fingerprint(workload) != expected:
        raise StoreMismatchError(
            "the workload passed to merge_store does not match the "
            "structure fingerprint the store's shards were run against"
        )
    base_config = config_from_dict(manifest["base_config"])
    grid = {name: tuple(values) for name, values in manifest["grid"].items()}

    survivors = [index for index, _ in _hybrid_survivors(pairs)]

    done = store.load_records(store.fine_path)
    todo = [index for index in survivors if index not in done]
    if todo:
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        if _batch_capable(evaluator.fine):
            # A batch-capable fine evaluator (the default batched cycle
            # simulator) scores the survivor set as a few in-process
            # array walks, as the in-memory hybrid sweep does.
            fine_jobs, fine_chunk = 1, None
        else:
            # One survivor per task, as the in-memory hybrid sweep does:
            # survivor counts are small and each point is expensive.
            fine_jobs, fine_chunk = min(max(1, int(n_jobs)), len(todo)), 1
        with JsonlAppender(store.fine_path) as out:
            for index, result in iter_indexed_design_points(
                    workload, grid, todo, base_config=base_config,
                    n_jobs=fine_jobs, chunksize=fine_chunk,
                    evaluator=evaluator.fine, keep_failures=True):
                out.append(encode_record(index, result))
        done = store.load_records(store.fine_path)

    points = []
    dropped = 0
    for index in survivors:
        if index not in done:
            raise IncompleteStoreError(
                f"{FINE_NAME} is missing survivor {index} after re-score"
            )
        _, result = decode_record(done[index])
        if isinstance(result, PointFailure):
            _drop_failure(index, result)
            dropped += 1
            continue
        points.append(result)
    return points, dropped


# ----------------------------------------------------------------------
# Status
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardStatus:
    """Progress of one shard (a shard with no file yet reads all-pending).

    ``done`` counts *owned indices recorded anywhere* — in this shard's
    own file or in another shard's steal file — because a stolen point
    is work this shard no longer owes.  ``failed`` splits out the
    persisted-failure records among them (``scored = done - failed``),
    so a shard full of deterministic evaluator failures no longer reads
    as healthy throughput.  ``stolen`` is how many of this shard's
    indices only a stealer covers; ``steals`` is how many records this
    shard stole *from others* (its own steal file).
    """

    shard: ShardSpec
    total: int
    done: int  # owned indices recorded anywhere (scored + failed)
    failed: int
    stolen: int = 0  # owned indices covered only by other shards' steal files
    steals: int = 0  # records this shard stole from other shards
    #: Seconds until this shard finishes at its observed throughput
    #: (record timestamps), ``0.0`` when complete, ``None`` when the
    #: shard has too few timestamped records to estimate a rate.
    eta_seconds: float = None
    #: Transient-failure re-evaluations recorded by this shard's files
    #: (the ``r`` keys of its own + steal records).
    retries: int = 0
    #: True when :func:`store_status` was given ``stall_after`` and this
    #: incomplete shard's newest record is older than that — the sign of
    #: a hung or dead shard process (see ``dse-status --stall-after``).
    stalled: bool = False

    @property
    def scored(self) -> int:
        return self.done - self.failed

    @property
    def pending(self) -> int:
        """Indices this shard still owes *after* stealing is netted out."""
        return self.total - self.done

    @property
    def fraction_done(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def fraction_scored(self) -> float:
        return self.scored / self.total if self.total else 1.0

    @property
    def complete(self) -> bool:
        return self.done >= self.total


@dataclass(frozen=True)
class StoreStatus:
    """Whole-store progress: per-shard counts plus study totals."""

    manifest: dict
    shards: Tuple[ShardStatus, ...]
    fine_records: int  # hybrid re-score progress (0 for plain studies)

    @property
    def grid_size(self) -> int:
        return self.manifest["grid_size"]

    @property
    def done(self) -> int:
        return sum(s.done for s in self.shards)

    @property
    def failed(self) -> int:
        return sum(s.failed for s in self.shards)

    @property
    def scored(self) -> int:
        return sum(s.scored for s in self.shards)

    @property
    def stolen(self) -> int:
        return sum(s.stolen for s in self.shards)

    @property
    def steals(self) -> int:
        return sum(s.steals for s in self.shards)

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.shards)

    @property
    def stalled_shards(self) -> Tuple[ShardStatus, ...]:
        return tuple(s for s in self.shards if s.stalled)

    @property
    def fraction_done(self) -> float:
        return self.done / self.grid_size if self.grid_size else 1.0

    @property
    def fraction_scored(self) -> float:
        return self.scored / self.grid_size if self.grid_size else 1.0

    @property
    def complete(self) -> bool:
        return self.done >= self.grid_size

    @property
    def eta_seconds(self):
        """Seconds until the *slowest* shard finishes (a sharded study is
        done when its last shard is), ``None`` while any running shard's
        rate is still unknown."""
        etas = [s.eta_seconds for s in self.shards]
        if any(eta is None for eta in etas):
            return None
        return max(etas, default=0.0)


def _shard_eta(stamps, pending) -> float:
    """ETA of one shard from its completion-record timestamps.

    The observed rate is ``(stamps - 1) / (newest - oldest)`` over the
    records this shard itself wrote (own file plus its steal file) —
    resume-friendly (gaps between runs flatten the rate estimate rather
    than breaking it) and free of any clock-synchronisation assumption
    across hosts, since only one host's timestamps are ever compared.
    ``pending`` is the work owed *after* stealing, so a straggler whose
    slice is being drained by the fleet sees its ETA fall accordingly.
    Returns ``0.0`` for a complete shard and ``None`` below two distinct
    timestamps (no rate observable yet).
    """
    if pending <= 0:
        return 0.0
    stamps = sorted(stamps)
    if len(stamps) < 2 or stamps[-1] <= stamps[0]:
        return None
    rate = (len(stamps) - 1) / (stamps[-1] - stamps[0])
    return pending / rate


def store_status(store, stall_after=None) -> StoreStatus:
    """Inspect a store's progress without evaluating anything.

    Besides per-shard completion counts (see :class:`ShardStatus` for
    the stolen/steals accounting), each shard carries an ``eta_seconds``
    derived from its completion-record timestamps (see
    :func:`_shard_eta`); stores written before records carried
    timestamps simply report ``None``.

    ``stall_after`` (seconds) arms stall detection: an *incomplete* shard
    whose newest record — in its own file or its steal file — is older
    than the threshold (or that never wrote a record at all) is flagged
    ``stalled``, the operator's cue that the process is hung or dead and
    a supervisor/steal pass should absorb its slice.
    """
    store = ResultStore(store)
    manifest = store.read_manifest()
    size = manifest["grid_size"]
    num_shards = manifest["num_shards"]
    own_records = {}
    steal_records = {}
    for k in range(1, num_shards + 1):
        shard = _shard_spec(manifest, k)
        own_records[k] = store.load_records(store.shard_path(shard))
        steal_records[k] = store.load_records(store.steal_path(shard))
    covered: dict = {}
    for records in list(own_records.values()) + list(steal_records.values()):
        for index, record in records.items():
            covered.setdefault(index, record)
    statuses = []
    for k in range(1, num_shards + 1):
        shard = _shard_spec(manifest, k)
        owned = set(shard.indices(size))
        done_records = {
            index: record for index, record in covered.items() if index in owned
        }
        done = len(done_records)
        stamps = [
            float(record["t"])
            for records in (own_records[k], steal_records[k])
            for record in records.values()
            if "t" in record
        ]
        pending = len(owned) - done
        stalled = (
            stall_after is not None
            and pending > 0
            and (not stamps or time.time() - max(stamps) > stall_after)
        )
        status = ShardStatus(
            shard=shard,
            total=len(owned),
            done=done,
            failed=sum(1 for record in done_records.values() if "err" in record),
            stolen=sum(1 for index in done_records if index not in own_records[k]),
            steals=len(steal_records[k]),
            eta_seconds=_shard_eta(stamps, pending),
            retries=sum(
                int(record.get("r", 0))
                for records in (own_records[k], steal_records[k])
                for record in records.values()
            ),
            stalled=stalled,
        )
        statuses.append(status)
    fine = len(store.load_records(store.fine_path))
    return StoreStatus(manifest=manifest, shards=tuple(statuses), fine_records=fine)
