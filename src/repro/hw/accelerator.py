"""Cycle-level simulator of the ViTCoD accelerator (paper §V, Fig. 12).

The simulator is analytical-event style: for each attention layer it derives
phase times (index preprocess → Q/K load + decode + SDDMM → softmax → SpMM)
from the workload's polarized statistics, models compute/memory overlap by
taking per-phase ``max(compute, memory)``, and attributes the excess memory
time to the ``data_movement`` latency category so Fig. 19's breakdown can be
regenerated.  Dense layers (QKV generation, projections, MLP) reuse the
reconfigured MAC array (§V-B.3).

Key modelled mechanisms, each traceable to the paper:

* K-stationary SDDMM with the denser/sparser two-pronged split and dynamic
  MAC-line allocation (§V-B.1);
* CSC index preloading for the sparser engine (§V-B.1);
* Q streaming per K-tile when the decoded working set exceeds the on-chip
  Q/K buffers, and the AE halving that stream's DRAM traffic (§V-A Opp. 2);
* on-chip encoder/decoder engines whose MAC lines are borrowed from the
  array while active and returned otherwise (§V-B.2);
* output-stationary SpMM keeping V′ in PE registers (Fig. 13b).

Whole-model simulation (the paper's headline Fig. 15/19 numbers) runs
through the :mod:`repro.sim` engine layer.  By default (``batched=True``)
``simulate_attention`` / ``simulate_model`` evaluate every layer and GEMM
as batched array geometry — per-layer statistics become parallel numpy
arrays and the phase algebra runs elementwise, mirroring the scalar
per-layer expressions operation for operation so the batched totals equal
the per-layer fold bit for bit.  ``batched=False`` keeps the per-layer
fold of :class:`~repro.sim.ModelSimulatorBase` as the executable reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..sim.engine import ModelSimulatorBase
from .allocator import allocate_mac_lines, allocate_mac_lines_batched
from .dataflow import (
    dense_gemm_cycles,
    k_stationary_sddmm_cycles,
    output_stationary_spmm_cycles,
    s_stationary_sddmm_cycles,
    softmax_cycles,
)
from .params import VITCOD_DEFAULT, HardwareConfig
from .trace import EnergyBreakdown, LatencyBreakdown, SimReport
from .workload import AttentionWorkload, GemmWorkload, ModelWorkload

__all__ = ["ViTCoDAccelerator"]


def _ordered_sum(values, init=0.0):
    """Left-to-right fold of ``values`` starting at ``init``.

    Merging per-layer reports folds each latency/energy component left to
    right; the batched paths reduce their per-layer arrays the same way so
    batched and per-layer results agree bit for bit (``np.sum``'s pairwise
    association would not).
    """
    total = init
    for value in values.tolist():
        total += value
    return total


def _fold_rows(values, points):
    """Per-point left-to-right fold over the trailing (layer) axis.

    The (points,)-shaped counterpart of :func:`_ordered_sum`: row ``p`` of
    the result is exactly ``_ordered_sum(values[p])`` (the same sequence
    of IEEE additions, performed as array ops), so grid-batched totals
    match the scalar-config fold bit for bit.  ``values`` may be a plain
    (layers,) array — config-independent components broadcast to every
    point.
    """
    total = np.zeros(points)
    for j in range(values.shape[-1]):
        total = total + values[..., j]
    return total


@dataclass
class ViTCoDAccelerator(ModelSimulatorBase):
    """Configurable ViTCoD design point.

    Parameters
    ----------
    config:
        Hardware resources (defaults to the paper's 512-MAC design).
    use_ae:
        Enable the auto-encoder datapath (encoder/decoder engines +
        compressed Q/K traffic).
    ae_compression:
        Compressed-to-original head ratio (paper: 0.5).
    two_pronged:
        Run denser and sparser engines in parallel with dynamic allocation;
        ``False`` serialises both workloads on the full array (ablation).
    dataflow:
        ``"k_stationary"`` (paper's choice) or ``"s_stationary"`` (ablation).
    batched:
        Evaluate whole models as batched array geometry (default); set
        ``False`` for the per-layer reference fold.  Both produce identical
        reports.
    enc_dec_lines:
        MAC lines reserved for the decoder while Q/K stream in.
    """

    config: HardwareConfig = None
    use_ae: bool = True
    ae_compression: float = 0.5
    two_pronged: bool = True
    dataflow: str = "k_stationary"
    #: hit rate of query-based Q forwarding: scattered sparser-engine Q
    #: fetches served from the denser engine's resident Q buffer (§V-B.1).
    q_forwarding_hit_rate: float = 0.3
    name: str = "ViTCoD"
    batched: bool = True
    #: DRAM row-miss amplification applied to scattered fetches when no
    #: streaming fallback exists (unreordered masks); see repro.hw.dram.
    _scatter_amplification: float = 1.0

    def __post_init__(self):
        if self.config is None:
            self.config = VITCOD_DEFAULT
        if self.dataflow not in ("k_stationary", "s_stationary"):
            raise ValueError(f"unknown dataflow {self.dataflow!r}")
        if not 0.0 < self.ae_compression <= 1.0:
            raise ValueError("ae_compression must be in (0, 1]")
        if not 0.0 <= self.q_forwarding_hit_rate < 1.0:
            raise ValueError("q_forwarding_hit_rate must be in [0, 1)")

    # ------------------------------------------------------------------
    # Attention layer
    # ------------------------------------------------------------------
    def simulate_attention_layer(self, layer: AttentionWorkload) -> SimReport:
        cfg = self.config
        b = cfg.bytes_per_element
        bpc = cfg.bytes_per_cycle
        n, d = layer.num_tokens, layer.embed_dim
        dk, H = layer.head_dim, layer.num_heads
        ratio = self.ae_compression if self.use_ae else 1.0

        latency = LatencyBreakdown()
        energy = EnergyBreakdown()
        mac_count = 0
        dram_bytes = 0

        # ---------------- preprocess: CSC/COO index preload ------------
        idx_bytes = layer.index_bytes()
        latency.preprocess += idx_bytes / bpc
        dram_bytes += idx_bytes

        # ---------------- SDDMM phase ----------------------------------
        # Memory model (see DESIGN.md §"hardware model"):
        #   * Q and K each stream through once, in head-sized chunks that fit
        #     the Q/V and K/S buffers (heads map to MAC-line chunks, §V-B.1),
        #     compressed by the AE ratio when the AE datapath is on;
        #   * sparser-region non-zeros lying off the diagonal band lose that
        #     streaming locality and trigger scattered per-token Q fetches,
        #     mitigated by query-based forwarding from the denser engine's
        #     buffer and by AE compression of the fetched token rows;
        #   * the decoder is sized to sustain DRAM line rate (the paper
        #     pipelines decode behind the stream), so it contributes energy
        #     and MAC work but does not throttle the stream.
        tensor_bytes = n * d * b  # one of Q / K / V, decoded
        # All heads process in parallel (head-per-MAC-line chunks), so the
        # K/S buffer holds a token window across every head; K is kept in
        # compressed form on chip when the AE is active (decoded at line
        # rate into the PE staging registers), which widens the window.
        k_window_bytes = cfg.act_buffer_bytes / 2
        k_tiles = max(1, ceil(tensor_bytes * ratio / k_window_bytes))
        stream_bytes = tensor_bytes * ratio * (1 + k_tiles)  # K once + Q/tile
        fwd = self.q_forwarding_hit_rate if self.two_pronged else 0.0
        # Scattered fetches: with the reordered (polarized) layout the
        # scheduler can fall back to one extra full (compressed) sequential
        # Q stream when scattering would cost more — at low sparsity the
        # "scattered" non-zeros cover most rows and streaming wins.  Without
        # reordering there is no streaming order to fall back to: the raw
        # per-token fetches stand, amplified by DRAM row misses.
        scatter_raw = layer.scattered_nnz * dk * b * ratio * (1.0 - fwd)
        if layer.streaming_fallback:
            scatter_bytes = min(scatter_raw, tensor_bytes * ratio)
        else:
            scatter_bytes = scatter_raw * self._scatter_amplification
        sddmm_dram = stream_bytes + scatter_bytes
        dram_bytes += sddmm_dram

        # Decoder work: every compressed element read back costs H MACs to
        # reconstruct the full head dimension (enc weight is Hc×H).
        decode_macs = int(sddmm_dram / b) * H if self.use_ae else 0
        memory_cycles = sddmm_dram / bpc

        compute_lines = cfg.num_mac_lines
        stats = layer.head_stats()
        denser_products = int((stats.global_tokens * stats.tokens).sum())
        sparser_products = int(stats.sparser_nnz.sum())
        denser_macs = denser_products * dk
        sparser_macs = sparser_products * dk

        if self.dataflow == "s_stationary":
            # Ablation: Sanger-style spatial mapping on the same workload.
            eff = self._s_stationary_pack_efficiency(layer)
            sddmm_compute = s_stationary_sddmm_cycles(
                denser_products + sparser_products,
                dk,
                compute_lines * cfg.macs_per_line,
                pack_efficiency=eff,
            )
        elif self.two_pronged:
            alloc = allocate_mac_lines(compute_lines, denser_macs, sparser_macs)
            denser_cycles = k_stationary_sddmm_cycles(
                denser_products, dk, max(alloc.denser_lines, 1), cfg.macs_per_line
            ) if denser_products else 0
            sparser_cycles = k_stationary_sddmm_cycles(
                sparser_products, dk, max(alloc.sparser_lines, 1), cfg.macs_per_line
            ) if sparser_products else 0
            sddmm_compute = max(denser_cycles, sparser_cycles)
        else:
            # Single-engine ablation: the mixed column population (full
            # global-token columns interleaved with nearly-empty sparse
            # ones) causes temporal load imbalance — MAC lines idle while a
            # heavy column drains.  Utilization degrades with the
            # coefficient of variation of per-column work (§III-A), which
            # the two-pronged split restores by giving each engine a
            # near-uniform population.
            single_util = 0.9 / (1.0 + 0.3 * layer.column_cv())
            sddmm_compute = ceil(
                (
                    k_stationary_sddmm_cycles(
                        denser_products, dk, compute_lines, cfg.macs_per_line
                    )
                    + k_stationary_sddmm_cycles(
                        sparser_products, dk, compute_lines, cfg.macs_per_line
                    )
                )
                / max(single_util, 0.1)
            )

        phase = max(sddmm_compute, memory_cycles)
        latency.compute += sddmm_compute
        latency.data_movement += phase - sddmm_compute
        mac_count += denser_macs + sparser_macs + decode_macs

        # ---------------- SpMM phase -----------------------------------
        # V streams in and V' writes back uncompressed (the AE covers Q/K
        # only); scattered S non-zeros outside the streaming window gather
        # their V rows individually, with the same fallback rule as above.
        spmm_scatter_raw = layer.scattered_nnz * dk * b
        if layer.streaming_fallback:
            spmm_scatter = min(spmm_scatter_raw, tensor_bytes)
        else:
            spmm_scatter = spmm_scatter_raw * self._scatter_amplification
        spmm_dram = 2 * tensor_bytes + spmm_scatter
        dram_bytes += spmm_dram
        total_nnz = layer.total_nnz
        spmm_products = total_nnz
        spmm_compute = output_stationary_spmm_cycles(
            spmm_products, dk, cfg.num_mac_lines, cfg.macs_per_line
        )
        spmm_phase = max(spmm_compute, spmm_dram / bpc)
        latency.compute += spmm_compute
        latency.data_movement += spmm_phase - spmm_compute
        mac_count += layer.spmm_macs

        # ---------------- softmax --------------------------------------
        # Dedicated per-engine softmax units consume completed attention-map
        # columns while SDDMM/SpMM continue (Fig. 12), so only the portion
        # exceeding the MAC-side busy time lands on the critical path.
        sm_cycles = softmax_cycles(total_nnz, n * H, lanes=cfg.softmax_lanes)
        latency.compute += max(0, sm_cycles - (phase + spmm_phase))
        energy.other += total_nnz * cfg.energy.softmax_op_pj

        self._charge_energy(energy, mac_count, dram_bytes, latency.total)
        return SimReport(
            platform=self.name,
            workload=f"attention(n={n}, H={H}, dk={dk})",
            latency=latency,
            energy=energy,
            frequency_hz=cfg.frequency_hz,
            details={
                "stream_bytes": stream_bytes,
                "scatter_bytes": scatter_bytes,
                "sddmm_compute": sddmm_compute,
                "sddmm_memory": memory_cycles,
                "spmm_compute": spmm_compute,
                "mac_count": mac_count,
                "dram_bytes": dram_bytes,
            },
        )

    def _s_stationary_pack_efficiency(self, layer):
        """Packing efficiency of a rigid spatial array on this mask (the
        fraction of PE slots holding real non-zeros after row packing)."""
        width = self.config.macs_per_line * 2
        stats = layer.head_stats()
        per_row = (stats.denser_nnz + stats.sparser_nnz) / stats.tokens
        slot_rows = np.ceil(np.maximum(per_row, 1) / width) * width
        slots = int((slot_rows * stats.tokens).sum())
        nnz = layer.total_nnz
        return min(1.0, max(nnz / slots, 0.05)) if slots else 1.0

    # ------------------------------------------------------------------
    # Dense layers (QKV generation, projection, MLP) — §V-B.3
    # ------------------------------------------------------------------
    def simulate_gemm(self, gemm: GemmWorkload, compress_output=False) -> SimReport:
        cfg = self.config
        b = cfg.bytes_per_element
        compute = dense_gemm_cycles(gemm.m, gemm.k, gemm.n, cfg.total_macs)

        out_ratio = 1.0
        encode_macs = 0
        if compress_output and self.use_ae:
            # QKV generation: Q and K (2/3 of the output) are encoded before
            # the off-chip writeback; the encoder engine is pipelined behind
            # the GEMM (§V-B.2) so only its energy is charged.
            out_ratio = (2 * self.ae_compression + 1) / 3
            encode_macs = int(gemm.m * gemm.n * (2 / 3) * self.ae_compression)

        traffic = (gemm.weight_bytes(b) + gemm.m * gemm.k * b
                   + gemm.m * gemm.n * b * out_ratio)
        phase = max(compute, traffic / cfg.bytes_per_cycle)

        latency = LatencyBreakdown(
            compute=compute, data_movement=phase - compute
        )
        energy = EnergyBreakdown()
        self._charge_energy(energy, gemm.macs + encode_macs, traffic, latency.total)
        return SimReport(
            platform=self.name,
            workload=gemm.name,
            latency=latency,
            energy=energy,
            frequency_hz=cfg.frequency_hz,
            details={"dram_bytes": traffic, "mac_count": gemm.macs + encode_macs},
        )

    # ------------------------------------------------------------------
    # Whole models (repro.sim surface)
    # ------------------------------------------------------------------
    def _attention_details(self, model):
        return {"layers": len(model.attention_layers)}

    def _model_details(self, model):
        return {
            "attention_layers": len(model.attention_layers),
            "linear_layers": len(model.linear_layers),
        }

    def _gemm_kwargs(self, gemm):
        return {"compress_output": gemm.name.endswith(".qkv")}

    def simulate_attention(self, model: ModelWorkload) -> SimReport:
        """Core attention workload only (paper Fig. 15a / Fig. 19)."""
        if not self.batched:
            return super().simulate_attention(model)
        layers = model.attention_layers
        if not layers:
            raise ValueError(
                f"{self.name}: model {model.name!r} has no attention layers"
            )
        latency, energy = self._attention_phase_arrays(layers)
        return SimReport(
            platform=self.name,
            workload=f"{model.name}:attention",
            latency=latency,
            energy=energy,
            frequency_hz=self.config.frequency_hz,
            details=self._attention_details(model),
        )

    def simulate_model(self, model: ModelWorkload) -> SimReport:
        """End-to-end simulation (attention + all dense layers, Fig. 15b)."""
        if not self.batched:
            return super().simulate_model(model)
        report = self.simulate_attention(model)
        latency, energy = self._gemm_phase_arrays(
            model.linear_layers, report.latency, report.energy
        )
        return SimReport(
            platform=self.name,
            workload=f"{model.name}:end2end",
            latency=latency,
            energy=energy,
            frequency_hz=self.config.frequency_hz,
            details=self._model_details(model),
        )

    # ------------------------------------------------------------------
    # Batched array geometry
    # ------------------------------------------------------------------
    #: Design-point knobs :meth:`simulate_attention_grid` accepts as
    #: per-point columns; anything else comes from this accelerator.
    _GRID_COLUMNS = ("num_mac_lines", "dram_bandwidth_bytes_per_s",
                     "act_buffer_bytes", "use_ae", "ae_compression",
                     "q_forwarding_hit_rate")

    def _resolve_grid_columns(self, columns):
        """Normalise per-point column arrays for the grid walk.

        ``columns`` maps a subset of :data:`_GRID_COLUMNS` to length-``P``
        arrays (already converted the way the design point would be built:
        ints for MAC lines and buffer bytes, bytes/s for bandwidth);
        missing knobs broadcast this accelerator's own value.  An empty
        dict is the degenerate ``P = 1`` walk of this design point itself.
        Values are validated like ``__post_init__`` — a grid holding one
        invalid point raises for the whole batch (the DSE engine then
        falls back to per-point scoring, which attributes the failure).
        """
        unknown = set(columns) - set(self._GRID_COLUMNS)
        if unknown:
            raise ValueError(
                f"unknown design-point column(s) {sorted(unknown)}; "
                f"choose from {list(self._GRID_COLUMNS)}"
            )
        lengths = {len(np.atleast_1d(v)) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"design-point columns disagree on length: {sorted(lengths)}"
            )
        points = lengths.pop() if lengths else 1
        cfg = self.config

        def column(name, default, dtype):
            if name in columns:
                return np.asarray(columns[name], dtype=dtype)
            return np.full(points, default, dtype=dtype)

        lines = column("num_mac_lines", cfg.num_mac_lines, np.int64)
        bandwidth = column("dram_bandwidth_bytes_per_s",
                           cfg.dram_bandwidth_bytes_per_s, np.float64)
        act_buffer = column("act_buffer_bytes", cfg.act_buffer_bytes,
                            np.int64)
        use_ae = column("use_ae", self.use_ae, bool)
        ae = column("ae_compression", self.ae_compression, np.float64)
        fwd = column("q_forwarding_hit_rate", self.q_forwarding_hit_rate,
                     np.float64)
        if not ((0.0 < ae) & (ae <= 1.0)).all():
            raise ValueError("ae_compression must be in (0, 1]")
        if not ((0.0 <= fwd) & (fwd < 1.0)).all():
            raise ValueError("q_forwarding_hit_rate must be in [0, 1)")
        # Column vectors broadcast against the (layers,) workload arrays;
        # every derived value mirrors the scalar config path op for op
        # (``bytes_per_cycle`` is the same division, ``ratio``/``fwd``
        # the same conditional selection).
        return {
            "points": points,
            "lines": lines[:, None],
            "bpc": bandwidth[:, None] / cfg.frequency_hz,
            "act_buffer": act_buffer[:, None],
            "use_ae": use_ae[:, None],
            "ratio": np.where(use_ae, ae, 1.0)[:, None],
            "fwd": (fwd if self.two_pronged else
                    np.zeros(points))[:, None],
        }

    def simulate_attention_grid(self, model, columns):
        """Score ``P`` design points on ``model`` as one (P × layers) walk.

        The batched array-geometry path of :meth:`simulate_attention`
        broadcast over a leading *design-point* axis: swept hardware knobs
        arrive as per-point columns (see :meth:`_resolve_grid_columns`)
        instead of per-point :class:`~repro.hw.params.HardwareConfig`
        clones, and the whole grid chunk is evaluated by the same
        elementwise phase algebra.  Returns ``(seconds, energy_joules)``
        float64 arrays of length ``P`` whose elements are **bit-for-bit**
        the ``report.seconds`` / ``report.energy_joules`` of ``P``
        separate :meth:`simulate_attention` calls at those design points
        (same IEEE ops on the same values, same left-to-right per-layer
        fold) — the guarantee the batched DSE engine is built on.
        """
        layers = model.attention_layers
        if not layers:
            raise ValueError(
                f"{self.name}: model {model.name!r} has no attention layers"
            )
        cols = self._resolve_grid_columns(columns)
        folded = self._attention_phase_grid(layers, cols)
        cycles = (folded["compute"] + folded["preprocess"]) \
            + folded["data_movement"]
        seconds = cycles / self.config.frequency_hz
        energy_pj = (folded["mac"] + folded["sram"] + folded["dram"]
                     + folded["other"] + folded["static"])
        return seconds, energy_pj * 1e-12

    def _attention_phase_arrays(self, layers):
        """Every attention layer's phase algebra as elementwise arrays.

        The ``P = 1`` case of :meth:`_attention_phase_grid` at this
        accelerator's own design point.  Each expression mirrors
        :meth:`simulate_attention_layer` operation for operation (same
        IEEE ops on the same values), and the per-layer arrays fold
        left-to-right like ``SimReport.merged`` — so the totals are
        bit-for-bit those of the per-layer loop.
        """
        folded = self._attention_phase_grid(
            layers, self._resolve_grid_columns({})
        )
        latency = LatencyBreakdown(
            compute=float(folded["compute"][0]),
            preprocess=float(folded["preprocess"][0]),
            data_movement=float(folded["data_movement"][0]),
        )
        energy = EnergyBreakdown(
            mac=float(folded["mac"][0]),
            sram=float(folded["sram"][0]),
            dram=float(folded["dram"][0]),
            other=float(folded["other"][0]),
            static=float(folded["static"][0]),
        )
        return latency, energy

    def _attention_phase_grid(self, layers, cols):
        """The (points × layers) attention walk behind both batched paths.

        Workload statistics are (layers,) rows, design-point knobs are
        (points, 1) columns, and every phase expression broadcasts to a
        (points × layers) array whose elements are exactly the scalar
        path's values; per-layer folds run left-to-right per point
        (:func:`_fold_rows`).  Returns the folded latency categories and
        energy components, each a (points,) array.
        """
        cfg = self.config
        b = cfg.bytes_per_element
        bpc = cols["bpc"]
        mpl = cfg.macs_per_line
        ratio = cols["ratio"]
        compute_lines = cols["lines"]
        points = cols["points"]

        n = np.array([l.num_tokens for l in layers], dtype=np.int64)
        H = np.array([l.num_heads for l in layers], dtype=np.int64)
        dk = np.array([l.head_dim for l in layers], dtype=np.int64)
        d = H * dk  # embed_dim
        idx_bytes = np.array([l.index_bytes() for l in layers], dtype=np.int64)
        scattered = np.array([l.scattered_nnz for l in layers], dtype=np.int64)
        total_nnz = np.array([l.total_nnz for l in layers], dtype=np.int64)
        spmm_macs = np.array([l.spmm_macs for l in layers], dtype=np.int64)
        fallback = np.array([l.streaming_fallback for l in layers], dtype=bool)
        denser_products = np.array(
            [int((s.global_tokens * s.tokens).sum())
             for s in (l.head_stats() for l in layers)], dtype=np.int64,
        )
        sparser_products = np.array(
            [int(l.head_stats().sparser_nnz.sum()) for l in layers],
            dtype=np.int64,
        )

        # ---------------- preprocess ------------------------------------
        preprocess = idx_bytes / bpc

        # ---------------- SDDMM phase -----------------------------------
        tensor_bytes = n * d * b
        k_window_bytes = cols["act_buffer"] / 2
        k_tiles = np.maximum(1, np.ceil(tensor_bytes * ratio / k_window_bytes))
        stream_bytes = tensor_bytes * ratio * (1 + k_tiles)
        fwd = cols["fwd"]
        scatter_raw = scattered * dk * b * ratio * (1.0 - fwd)
        scatter_bytes = np.where(
            fallback,
            np.minimum(scatter_raw, tensor_bytes * ratio),
            scatter_raw * self._scatter_amplification,
        )
        sddmm_dram = stream_bytes + scatter_bytes
        decode_macs = np.where(
            cols["use_ae"], np.trunc(sddmm_dram / b) * H, 0.0
        )
        memory_cycles = sddmm_dram / bpc

        denser_macs = denser_products * dk
        sparser_macs = sparser_products * dk
        cycles_per_wave = np.ceil(dk / mpl)

        if self.dataflow == "s_stationary":
            eff = np.array(
                [self._s_stationary_pack_efficiency(l) for l in layers]
            )
            effective = (compute_lines * mpl) * eff
            products = denser_products + sparser_products
            sddmm_compute = np.where(
                products > 0, np.ceil(products / effective) * dk, 0.0
            )
        elif self.two_pronged:
            d_lines, s_lines = allocate_mac_lines_batched(
                compute_lines, denser_macs, sparser_macs
            )
            denser_cycles = np.where(
                denser_products > 0,
                np.ceil(denser_products / np.maximum(d_lines, 1))
                * cycles_per_wave,
                0.0,
            )
            sparser_cycles = np.where(
                sparser_products > 0,
                np.ceil(sparser_products / np.maximum(s_lines, 1))
                * cycles_per_wave,
                0.0,
            )
            sddmm_compute = np.maximum(denser_cycles, sparser_cycles)
        else:
            cv = np.array([l.column_cv() for l in layers])
            single_util = 0.9 / (1.0 + 0.3 * cv)
            serial = (
                np.where(denser_products > 0,
                         np.ceil(denser_products / compute_lines)
                         * cycles_per_wave, 0.0)
                + np.where(sparser_products > 0,
                           np.ceil(sparser_products / compute_lines)
                           * cycles_per_wave, 0.0)
            )
            sddmm_compute = np.ceil(serial / np.maximum(single_util, 0.1))

        phase = np.maximum(sddmm_compute, memory_cycles)

        # ---------------- SpMM phase ------------------------------------
        spmm_scatter_raw = scattered * dk * b
        spmm_scatter = np.where(
            fallback,
            np.minimum(spmm_scatter_raw, tensor_bytes),
            spmm_scatter_raw * self._scatter_amplification,
        )
        spmm_dram = 2 * tensor_bytes + spmm_scatter
        spmm_compute = np.where(
            total_nnz > 0,
            np.ceil(total_nnz / compute_lines) * cycles_per_wave,
            0.0,
        )
        spmm_phase = np.maximum(spmm_compute, spmm_dram / bpc)

        # ---------------- softmax ---------------------------------------
        sm_cycles = np.ceil((total_nnz + 2 * (n * H)) / cfg.softmax_lanes)
        sm_extra = np.maximum(0.0, sm_cycles - (phase + spmm_phase))

        compute = sddmm_compute + spmm_compute + sm_extra
        data_movement = (phase - sddmm_compute) + (spmm_phase - spmm_compute)

        mac_count = denser_macs + sparser_macs + decode_macs + spmm_macs
        dram_bytes = idx_bytes + sddmm_dram + spmm_dram
        cycles = (compute + preprocess) + data_movement
        e = cfg.energy
        return {
            "compute": _fold_rows(compute, points),
            "preprocess": _fold_rows(preprocess, points),
            "data_movement": _fold_rows(data_movement, points),
            "mac": _fold_rows(mac_count * e.mac_pj, points),
            "sram": _fold_rows(
                (2 * dram_bytes + mac_count * b / 4) * e.sram_byte_pj, points
            ),
            "dram": _fold_rows(dram_bytes * e.dram_byte_pj, points),
            "other": _fold_rows(total_nnz * e.softmax_op_pj, points),
            "static": _fold_rows(cycles * e.static_pj_per_cycle, points),
        }

    def _gemm_phase_arrays(self, gemms, base_latency, base_energy):
        """The dense-layer walk as arrays, folded onto the attention totals
        exactly as the per-GEMM ``merged`` chain would."""
        cfg = self.config
        b = cfg.bytes_per_element
        if not gemms:
            return base_latency, base_energy
        m = np.array([g.m for g in gemms], dtype=np.int64)
        k = np.array([g.k for g in gemms], dtype=np.int64)
        nn = np.array([g.n for g in gemms], dtype=np.int64)
        compress = np.array(
            [self._gemm_kwargs(g).get("compress_output", False)
             for g in gemms], dtype=bool,
        )

        macs = m * k * nn
        compute = np.where(
            macs > 0, np.ceil(macs / (cfg.total_macs * 0.85)), 0.0
        )
        if self.use_ae:
            out_ratio = np.where(
                compress, (2 * self.ae_compression + 1) / 3, 1.0
            )
            encode_macs = np.where(
                compress, np.trunc(m * nn * (2 / 3) * self.ae_compression), 0.0
            )
        else:
            out_ratio = np.ones(len(gemms))
            encode_macs = np.zeros(len(gemms))

        traffic = k * nn * b + m * k * b + m * nn * b * out_ratio
        phase = np.maximum(compute, traffic / cfg.bytes_per_cycle)
        data_movement = phase - compute

        latency = LatencyBreakdown(
            compute=_ordered_sum(compute, base_latency.compute),
            preprocess=base_latency.preprocess,
            data_movement=_ordered_sum(data_movement, base_latency.data_movement),
        )
        total_macs = macs + encode_macs
        cycles = (compute + 0.0) + data_movement
        e = cfg.energy
        energy = EnergyBreakdown(
            mac=_ordered_sum(total_macs * e.mac_pj, base_energy.mac),
            sram=_ordered_sum(
                (2 * traffic + total_macs * b / 4) * e.sram_byte_pj,
                base_energy.sram,
            ),
            dram=_ordered_sum(traffic * e.dram_byte_pj, base_energy.dram),
            other=base_energy.other,
            static=_ordered_sum(
                cycles * e.static_pj_per_cycle, base_energy.static
            ),
        )
        return latency, energy

    # ------------------------------------------------------------------
    def _charge_energy(self, energy, macs, dram_bytes, cycles):
        e = self.config.energy
        energy.mac += macs * e.mac_pj
        energy.dram += dram_bytes * e.dram_byte_pj
        # SRAM: fills/drains mirror DRAM traffic; operand fetch is amortised
        # by MAC-line broadcast (one K vector feeds a whole line).
        sram_bytes = 2 * dram_bytes + macs * self.config.bytes_per_element / 4
        energy.sram += sram_bytes * e.sram_byte_pj
        energy.static += cycles * e.static_pj_per_cycle
