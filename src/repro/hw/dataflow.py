"""Dataflow cost models (paper §V-A, Fig. 11 and Fig. 13).

Three mappings matter:

* **K-stationary SDDMM** (ViTCoD's choice): a K vector stays resident while
  MAC lines compute its column of attention scores, one Q·K dot product per
  line, with the feature dimension spread over a line's MACs and reduced by
  inter-PE accumulation.  Only (q, k) pairs indexed by the mask are issued.
* **S-stationary SDDMM** (Sanger's choice): attention scores map spatially,
  one PE per score, features arriving sequentially with intra-PE
  accumulation.  Q/K are fully reused but sparse patterns must be packed
  into the array, costing utilization, and partial sums occupy PE registers.
* **Output-stationary SpMM** (both phases' second step): V′ rows stay in PE
  registers; S and V stream through.

All functions return cycle counts; they are pure so the ablation bench can
compare mappings on identical workloads.
"""

from __future__ import annotations

from math import ceil

__all__ = [
    "k_stationary_sddmm_cycles",
    "s_stationary_sddmm_cycles",
    "output_stationary_spmm_cycles",
    "dense_gemm_cycles",
    "softmax_cycles",
]


def k_stationary_sddmm_cycles(num_products, head_dim, mac_lines, macs_per_line=8):
    """Cycles for ``num_products`` masked Q·K dot products on ``mac_lines``.

    Each line computes one dot product in ``ceil(head_dim / macs_per_line)``
    cycles (feature dim mapped spatially, inter-PE accumulation — Fig. 12 ❶);
    lines work on different products in parallel.
    """
    if mac_lines <= 0:
        raise ValueError("mac_lines must be positive")
    if num_products == 0:
        return 0
    cycles_per_wave = ceil(head_dim / macs_per_line)
    waves = ceil(num_products / mac_lines)
    return waves * cycles_per_wave


def s_stationary_sddmm_cycles(num_products, head_dim, total_macs,
                              pack_efficiency=1.0):
    """Cycles for an S-stationary mapping of ``num_products`` scores.

    One PE per score; a batch of ``total_macs × pack_efficiency`` scores
    retires every ``head_dim`` cycles.  ``pack_efficiency`` < 1 models the
    slots wasted when sparse rows are packed into the rigid array (Sanger's
    pack-and-split).
    """
    if total_macs <= 0:
        raise ValueError("total_macs must be positive")
    if not 0.0 < pack_efficiency <= 1.0:
        raise ValueError(f"pack_efficiency must be in (0, 1], got {pack_efficiency}")
    if num_products == 0:
        return 0
    effective = total_macs * pack_efficiency
    waves = ceil(num_products / effective)
    return waves * head_dim


def output_stationary_spmm_cycles(nnz, head_dim, mac_lines, macs_per_line=8):
    """Cycles for S·V with V′ rows stationary (intra-PE accumulation, ❷).

    Every kept attention score drives a ``head_dim``-wide AXPY into its V′
    row; a line retires ``macs_per_line`` features per cycle.
    """
    if mac_lines <= 0:
        raise ValueError("mac_lines must be positive")
    if nnz == 0:
        return 0
    cycles_per_update = ceil(head_dim / macs_per_line)
    waves = ceil(nnz / mac_lines)
    return waves * cycles_per_update


def dense_gemm_cycles(m, k, n, total_macs, utilization=0.85):
    """Cycles for a dense (m×k)·(k×n) GEMM on the whole reconfigured array."""
    if total_macs <= 0:
        raise ValueError("total_macs must be positive")
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    macs = m * k * n
    if macs == 0:
        return 0
    return ceil(macs / (total_macs * utilization))


def softmax_cycles(num_scores, num_rows, lanes=8):
    """Cycles in the softmax unit: one exp per kept score plus a two-pass
    (max + normalise) touch per row, all retired ``lanes`` wide."""
    if lanes <= 0:
        raise ValueError("lanes must be positive")
    return ceil((num_scores + 2 * num_rows) / lanes)
