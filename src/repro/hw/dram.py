"""Banked DDR4 model: burst granularity and row-buffer locality.

The analytical simulator charges DRAM time as bytes/peak-bandwidth; this
model refines that for the event-driven simulator by accounting for the two
effects that matter to ViTCoD's access patterns:

* **burst granularity** — DDR transfers whole bursts (64 B); a scattered
  fetch of a 64-byte compressed Q row wastes nothing, but sub-burst requests
  round up;
* **row-buffer locality** — sequential streams hit the open row
  (tRCD amortised away); random single-burst requests pay an
  activate/precharge penalty, modelled as extra cycles per request.

Parameters follow DDR4-2400 with the paper's 76.8 GB/s aggregate (multiple
banks behind one controller, §VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = ["DramModel", "DramRequest"]


@dataclass(frozen=True)
class DramRequest:
    """One logical transfer."""

    bytes: int
    sequential: bool = True  # stream (row hits) vs scattered (row misses)
    tag: str = ""


@dataclass
class DramModel:
    """Effective-service-time model for a shared DRAM channel."""

    bytes_per_cycle: float = 153.6  # 76.8 GB/s at 500 MHz core clock
    burst_bytes: int = 64
    row_miss_penalty_cycles: float = 6.0  # tRP+tRCD at the core clock
    #: fraction of scattered requests that still hit an open row (bank
    #: interleaving plus the near-diagonal access order after reordering).
    scattered_row_hit_rate: float = 0.4

    def service_cycles(self, request: DramRequest) -> float:
        """Cycles the channel is occupied serving ``request``."""
        if request.bytes < 0:
            raise ValueError("request bytes must be non-negative")
        if request.bytes == 0:
            return 0.0
        bursts = ceil(request.bytes / self.burst_bytes)
        transfer = bursts * self.burst_bytes / self.bytes_per_cycle
        if request.sequential:
            return transfer
        misses = bursts * (1.0 - self.scattered_row_hit_rate)
        return transfer + misses * self.row_miss_penalty_cycles

    def effective_bandwidth(self, request_bytes, sequential=True):
        """Achieved bytes/cycle for a pattern of ``request_bytes`` requests."""
        if request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        cycles = self.service_cycles(
            DramRequest(bytes=request_bytes, sequential=sequential)
        )
        return request_bytes / cycles

    def amplification(self, request_bytes, sequential=True):
        """Ratio of charged time to ideal-bandwidth time (>= 1)."""
        ideal = request_bytes / self.bytes_per_cycle
        actual = self.service_cycles(
            DramRequest(bytes=request_bytes, sequential=sequential)
        )
        return actual / ideal
