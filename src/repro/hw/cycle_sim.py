"""Event-driven cycle simulator of the two-pronged ViTCoD pipeline.

The analytical model (:mod:`repro.hw.accelerator`) charges phase times in
closed form; this simulator *executes* the schedule instead: every (head,
column) of the polarized mask becomes a job, jobs flow through shared
resources (one DRAM channel via :class:`~repro.hw.dram.DramModel`, two
engine MAC-line groups, per-engine softmax units) with double-buffered K
loads, and the makespan/utilization emerge from resource contention rather
than from max() formulas.

It exists for two reasons, mirroring how the paper validates its simulator
against RTL:

* **validation** — the test suite checks that the event-driven makespan and
  the analytical phase model agree within a bounded factor and move
  together across sparsity levels;
* **schedule insight** — it reports per-resource busy time (denser engine,
  sparser engine, DRAM, softmax), exposing utilization effects the closed
  form can only assume.

It is deliberately column-granular (an event per K column, not per cycle):
fine enough to capture pipelining and contention, coarse enough to simulate
a 197-token, 12-head layer in microseconds of wall time.

Two interchangeable engines implement the same schedule:

* ``engine="vectorized"`` (default) expresses the per-column FCFS queue
  recurrences as numpy scans — the double-buffered compute recurrence
  ``compute_free[i] = max(compute_free[i-1], load_done[i]) + cycles[i]``
  is a max-plus scan, computed as
  ``cumsum(cycles) + maximum.accumulate(load_done - exclusive_cumsum(cycles))``
  — so a whole layer is a handful of array ops;
* ``engine="scalar"`` is the original per-:class:`ColumnJob` Python event
  loop, retained as the executable reference semantics.

To let tests assert *exact* (bitwise) agreement between the two, every
event duration is snapped to a ``2**-20``-cycle grid (:func:`_quantize`):
compute and softmax durations are integer cycle counts already, and DRAM
service times are quantized at the single point where they enter the event
algebra.  With all durations on that grid and makespans far below ``2**33``
cycles, every double-precision add/max in either engine is exact, so the
scan and the loop agree bit-for-bit regardless of association order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import ceil
from typing import List, Optional, Tuple

import numpy as np

from ..perf.memo import instance_memo
from ..sim.engine import AttentionSimulatorBase, merge_results
from .allocator import allocate_mac_lines, allocate_mac_lines_batched
from .dram import DramModel, DramRequest
from .params import VITCOD_DEFAULT, HardwareConfig
from .workload import AttentionWorkload, ModelWorkload, split_remainder

__all__ = ["Timeline", "EngineSchedule", "CycleSimResult",
           "CycleAccurateSimulator", "merge_cycle_results"]

#: Durations are quantized to multiples of ``1 / _TIME_SCALE`` cycles so the
#: event algebra is exact in double precision (see module docstring).
_TIME_SCALE = float(1 << 20)


def _quantize(cycles):
    """Snap a duration to the ``2**-20``-cycle grid."""
    return round(cycles * _TIME_SCALE) / _TIME_SCALE


def _queue_scan(request_times, durations, init=0.0):
    """Vectorized FCFS queue: ``f[i] = max(f[i-1], request_times[i]) + durations[i]``.

    ``f[-1] = init``.  Unrolling the recurrence gives
    ``f[i] = C[i] + max(init, max_{j<=i}(request_times[j] - C[j-1]))`` with
    ``C = cumsum(durations)`` — an associative max-plus scan.  Returns the
    array of completion times (empty input -> empty array).
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.size == 0:
        return durations
    total = np.cumsum(durations)
    slack = np.asarray(request_times, dtype=np.float64) - (total - durations)
    return total + np.maximum(np.maximum.accumulate(slack), init)


def _queue_scan_rows(request_times, durations, init):
    """Row-wise :func:`_queue_scan` along the last axis: one independent
    FCFS queue per row.

    Running the cumulative sums and maxima along ``axis=-1`` restarts the
    recurrence at every row — rows are the batched engines' reset points,
    whether the batch is 2-D ``(layers, jobs)`` (the whole-model scans)
    or 3-D ``(points, rows, jobs)`` (the grid-batched DSE walk).
    ``init`` and ``request_times`` broadcast against ``durations``: a
    per-row ``(rows, 1)`` init, a scalar ``0.0``, or config-independent
    ``(rows, jobs)`` durations under ``(points, rows, jobs)`` request
    times all mean the same recurrence on the same values.
    """
    if durations.shape[-1] == 0:
        return durations
    total = np.cumsum(durations, axis=-1)
    slack = request_times - (total - durations)
    return total + np.maximum(np.maximum.accumulate(slack, axis=-1), init)


def _pad_rows(arrays):
    """Stack variable-length int64 job arrays into a zero-padded matrix.

    Returns ``(matrix, lengths)``; zero products mean zero-duration jobs,
    so padded slots are inert in every duration computation.
    """
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    width = int(lengths.max()) if lengths.size else 0
    matrix = np.zeros((len(arrays), width), dtype=np.int64)
    for i, a in enumerate(arrays):
        matrix[i, : a.size] = a
    return matrix, lengths


def _masked_load_times(base, step, lengths, width):
    """Per-row load-completion ladders ``base + step * (1..width)``.

    Slots at or beyond a row's length get ``-inf`` request times: combined
    with their zero durations they can never raise a row's running
    max-plus state, so padding is invisible to the scans.
    """
    ladder = base[:, None] + step[:, None] * np.arange(1, width + 1)
    ladder[np.arange(width)[None, :] >= lengths[:, None]] = -np.inf
    return ladder


def _row_finals(values, lengths):
    """Last real (unpadded) value of each row; 0.0 for empty rows."""
    if values.shape[1] == 0:
        return np.zeros(lengths.size)
    picked = values[np.arange(lengths.size), np.maximum(lengths - 1, 0)]
    return np.where(lengths > 0, picked, 0.0)


#: float64 cells one grid-walk scan array may hold: the design-point axis
#: of :meth:`CycleAccurateSimulator.simulate_attention_grid` is walked in
#: sub-batches of ``budget // cells_per_point`` points, so peak memory is
#: bounded no matter how many points one ``evaluate_batch`` chunk holds.
#: 2**20 cells (8 MiB) measured fastest on DeiT-Base grids: the in-place
#: scans then run cache-resident instead of streaming from DRAM (1<<22
#: was ~2x slower wall-clock for identical results).
_GRID_CELL_BUDGET = 1 << 20


def _width_bands(widths):
    """Group row indices into power-of-two width bands.

    Rows whose job counts share a bit length land in one band, so each
    band's matrix is padded only to its own widest row and every row
    fills more than half of it (max/min width ratio < 2 within a band)
    — no row is ever padded to the width of a far-wider band.  This is
    the same economics that makes the ``"split"`` whole-model scan beat
    ``"fused"``: the denser engine's rows are ~15× narrower than the
    sparser engine's, so folding them into one matrix wastes most of its
    cells.  Zero-width rows are dropped (they have no events to scan).
    Returns int64 row-index arrays, one per band, narrowest band first.
    """
    bands = {}
    for i, width in enumerate(widths):
        width = int(width)
        if width <= 0:
            continue
        bands.setdefault(width.bit_length(), []).append(i)
    return [np.array(bands[bits], dtype=np.int64) for bits in sorted(bands)]


@dataclass
class Timeline:
    """A serially-shared resource: requests queue FCFS."""

    name: str
    free_at: float = 0.0
    busy: float = 0.0
    served: int = 0

    def acquire(self, earliest_start, duration):
        """Reserve the resource; returns (start, completion) times."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(earliest_start, self.free_at)
        self.free_at = start + duration
        self.busy += duration
        self.served += 1
        return start, start + duration

    def utilization(self, makespan):
        if makespan <= 0:
            return 0.0
        return min(1.0, self.busy / makespan)


@dataclass(frozen=True)
class ColumnJob:
    """One K column's worth of SDDMM work on one head."""

    head: int
    column: int
    products: int  # masked Q·K dot products in this column
    load_bytes: int
    sequential: bool


@dataclass
class EngineSchedule:
    """Execution state of one engine (denser or sparser)."""

    name: str
    mac_lines: int
    macs_per_line: int
    jobs: List[ColumnJob] = field(default_factory=list)
    finish_time: float = 0.0

    def compute_cycles(self, job, head_dim):
        if job.products == 0:
            return 0.0
        waves = ceil(job.products / max(self.mac_lines, 1))
        return waves * ceil(head_dim / self.macs_per_line)


@dataclass
class CycleSimResult:
    """Outcome of one event-driven simulation (a layer or a whole model).

    Whole-model results additionally carry the per-layer breakdown in
    ``per_layer`` (one single-layer :class:`CycleSimResult` per attention
    layer, in layer order) so figure runners can plot layer-resolved
    makespans/utilizations from one batched run.
    """

    makespan: float
    sddmm_makespan: float
    spmm_makespan: float
    denser_busy: float
    sparser_busy: float
    dram_busy: float
    softmax_busy: float
    jobs_executed: int
    per_layer: Tuple["CycleSimResult", ...] = ()

    @property
    def denser_utilization(self):
        return self.denser_busy / self.makespan if self.makespan else 0.0

    @property
    def sparser_utilization(self):
        return self.sparser_busy / self.makespan if self.makespan else 0.0

    @property
    def dram_utilization(self):
        return self.dram_busy / self.makespan if self.makespan else 0.0

    def _layers(self):
        """This result as a tuple of single-layer results."""
        return self.per_layer if self.per_layer else (self,)

    def merged(self, other: "CycleSimResult") -> "CycleSimResult":
        """Concatenate two sequential results (mirrors ``SimReport.merged``):
        totals add, ``per_layer`` chains both sides' layer breakdowns."""
        return CycleSimResult(
            makespan=self.makespan + other.makespan,
            sddmm_makespan=self.sddmm_makespan + other.sddmm_makespan,
            spmm_makespan=self.spmm_makespan + other.spmm_makespan,
            denser_busy=self.denser_busy + other.denser_busy,
            sparser_busy=self.sparser_busy + other.sparser_busy,
            dram_busy=self.dram_busy + other.dram_busy,
            softmax_busy=self.softmax_busy + other.softmax_busy,
            jobs_executed=self.jobs_executed + other.jobs_executed,
            per_layer=self._layers() + other._layers(),
        )


def merge_cycle_results(results) -> CycleSimResult:
    """Fold per-layer results into one whole-model :class:`CycleSimResult`.

    Raises :class:`ValueError` on an empty sequence; the merged result
    always exposes ``per_layer`` (even for a single layer).
    """
    results = list(results)
    total = merge_results(results, "no attention layers to simulate")
    if len(results) == 1:
        total = replace(total, per_layer=(results[0],))
    return total


class CycleAccurateSimulator(AttentionSimulatorBase):
    """Event-driven companion to :class:`ViTCoDAccelerator`.

    Parameters
    ----------
    config:
        Hardware design point (defaults to the paper's).
    use_ae:
        Compress Q/K streams/loads by ``ae_compression``.
    dram:
        Optional custom :class:`DramModel` (burst/row-buffer behaviour).
    engine:
        ``"vectorized"`` (default) runs the numpy scan scheduler; for
        whole-model runs it batches every layer into one 2-D scan (rows are
        the per-layer reset points).  ``"scalar"`` runs the reference
        per-job event loop, layer by layer.  Both produce identical
        :class:`CycleSimResult` values.
    scan:
        Batched whole-model scan strategy (vectorized engine only).
        ``"split"`` (default) runs per-engine scans — two compute + two
        softmax launches per model.  ``"fused"`` folds BOTH engines of
        every layer into one ``(2L × jobs)`` compute scan (denser rows
        stacked on sparser rows, each row its own max-plus reset) and both
        softmax queues into one ``(L × jobs)`` scan (a layer's softmax
        unit serves denser then sparser requests as ONE FCFS queue) —
        halving scan launches.  The two agree bit for bit (all durations
        live on the ``2**-20``-cycle grid, so every association of the
        event algebra is exact).  Measurement keeps ``"split"`` the
        default: polarized masks make the denser engine ~15× narrower
        than the sparser one, so padding both halves of the fused matrix
        to a common width costs more than the saved launches (0.75–1.0×
        across DeiT shapes; see the ``fused_scan`` benchmark) — the
        per-engine split IS the width-banded optimal fold.
    """

    _ENGINES = ("vectorized", "scalar")
    _SCANS = ("split", "fused")

    name = "CycleSim"

    def __init__(self, config: Optional[HardwareConfig] = None, use_ae=True,
                 ae_compression=0.5, dram: Optional[DramModel] = None,
                 engine="vectorized", scan="split"):
        self.config = config or VITCOD_DEFAULT
        self.use_ae = use_ae
        if not 0.0 < ae_compression <= 1.0:
            raise ValueError("ae_compression must be in (0, 1]")
        if engine not in self._ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {self._ENGINES}"
            )
        if scan not in self._SCANS:
            raise ValueError(
                f"unknown scan {scan!r}; choose from {self._SCANS}"
            )
        self.ae_compression = ae_compression
        self.engine = engine
        self.scan = scan
        self.dram = dram or DramModel(
            bytes_per_cycle=self.config.bytes_per_cycle
        )

    # ------------------------------------------------------------------
    def _service(self, nbytes, sequential=True, tag=""):
        """Grid-quantized DRAM service time for one request (see module doc)."""
        return _quantize(self.dram.service_cycles(
            DramRequest(bytes=nbytes, sequential=sequential, tag=tag)
        ))

    def _build_jobs(self, layer: AttentionWorkload):
        """Split the layer's columns into denser and sparser job lists."""
        b = self.config.bytes_per_element
        ratio = self.ae_compression if self.use_ae else 1.0
        k_col_bytes = int(layer.head_dim * b * ratio)
        denser, sparser = [], []
        for h, head in enumerate(layer.heads):
            for col in range(head.num_global_tokens):
                denser.append(ColumnJob(
                    head=h, column=col, products=head.num_tokens,
                    load_bytes=k_col_bytes, sequential=True,
                ))
            col_nnz = head.sparser_column_nnz
            if col_nnz is None:
                # Fall back to the mean density when per-column counts are
                # unavailable (e.g. dense workloads); the remainder lands on
                # the leading columns so no products are dropped.
                col_nnz = split_remainder(
                    head.sparser_nnz, head.num_tokens - head.num_global_tokens
                )
            for j, nnz in enumerate(col_nnz):
                if nnz == 0:
                    continue
                sparser.append(ColumnJob(
                    head=h, column=head.num_global_tokens + j,
                    products=int(nnz), load_bytes=k_col_bytes,
                    sequential=True,
                ))
        return denser, sparser

    def _column_products(self, layer: AttentionWorkload):
        """Per-column SDDMM products for both engines as int64 arrays.

        Mirrors :meth:`_build_jobs` (same job order, zero-product sparser
        columns dropped) without materialising per-job objects; the arrays
        are memoized on the (frozen) workload so repeated simulations of a
        cached workload — DSE sweeps, benchmark repeats — skip the
        per-head walk entirely.
        """
        return layer.denser_job_products(), layer.sparser_job_products()

    def _run_engine(self, engine: EngineSchedule, dram: Timeline,
                    softmax: Timeline, head_dim, start_time=0.0):
        """Run one engine's job list with double-buffered K loads."""
        cfg = self.config
        load_done = start_time
        compute_free = start_time
        for job in engine.jobs:
            service = self._service(job.load_bytes, sequential=job.sequential)
            # Double buffering: the next K load may proceed while the
            # previous column computes, but loads serialise on the channel.
            _, load_done = dram.acquire(load_done, service)
            compute_cycles = engine.compute_cycles(job, head_dim)
            begin = max(compute_free, load_done)
            compute_free = begin + compute_cycles
            engine.finish_time = compute_free
            # Softmax consumes the finished column asynchronously.
            softmax.acquire(
                compute_free,
                ceil(job.products / cfg.softmax_lanes),
            )
        return engine.finish_time

    # ------------------------------------------------------------------
    def _layer_geometry(self, layer: AttentionWorkload):
        """Byte/tile quantities shared by both engines."""
        cfg = self.config
        b = cfg.bytes_per_element
        ratio = self.ae_compression if self.use_ae else 1.0
        k_col_bytes = int(layer.head_dim * b * ratio)
        tensor_bytes = layer.num_tokens * layer.embed_dim * b
        # Q stream occupies the channel up front (in k-tile chunks that
        # interleave with the K column loads in the real machine; FCFS
        # serialisation is a faithful upper bound at this granularity).
        k_tiles = max(1, ceil(tensor_bytes * ratio / (cfg.act_buffer_bytes / 2)))
        q_stream = int(tensor_bytes * ratio * k_tiles)
        return k_col_bytes, tensor_bytes, q_stream

    # ------------------------------------------------------------------
    # Per-(workload, config) geometry, memoized on the (frozen) workload.
    #
    # DSE sweeps hold the workload fixed while configs change, so each
    # piece of derived geometry is keyed by exactly the configuration
    # fields it reads: MAC-line allocations survive a bandwidth sweep,
    # DRAM service times survive a mac_lines sweep, and repeat scoring of
    # any point is free.  The tables live on the workload instance (the
    # slot is stripped from pickles alongside the job-product caches) so
    # every simulator sharing a cached workload shares them.
    # ------------------------------------------------------------------
    _GEOMETRY_SLOT = "_cycle_geometry"

    def _dram_memo_key(self):
        """Hashable DRAM signature, or ``None`` when memoizing is unsafe
        (a custom :class:`DramModel` subclass may read state the key
        cannot see)."""
        dram = self.dram
        if type(dram) is not DramModel:
            return None
        return (dram.bytes_per_cycle, dram.burst_bytes,
                dram.row_miss_penalty_cycles, dram.scattered_row_hit_rate)

    def _layer_services(self, layer: AttentionWorkload):
        """Quantized DRAM service times ``(q_stream, k_column, v_stream)``."""
        dram_key = self._dram_memo_key()
        if dram_key is None:
            return self._build_layer_services(layer)
        cfg = self.config
        ratio = self.ae_compression if self.use_ae else 1.0
        key = ("services", cfg.bytes_per_element, cfg.act_buffer_bytes,
               ratio, dram_key)
        return instance_memo(layer, self._GEOMETRY_SLOT, key,
                             lambda: self._build_layer_services(layer))

    def _build_layer_services(self, layer):
        k_col_bytes, tensor_bytes, q_stream = self._layer_geometry(layer)
        return (self._service(q_stream, tag="q-stream"),
                self._service(k_col_bytes),
                self._service(2 * tensor_bytes, tag="v-stream"))

    def _layer_alloc(self, layer: AttentionWorkload):
        """Engine MAC-line split ``(denser_lines, sparser_lines)``, both
        floored at 1 as the schedulers require."""
        key = ("alloc", self.config.num_mac_lines)
        return instance_memo(layer, self._GEOMETRY_SLOT, key,
                             lambda: self._build_layer_alloc(layer))

    def _build_layer_alloc(self, layer):
        head_dim = layer.head_dim
        denser_products, sparser_products = self._column_products(layer)
        alloc = allocate_mac_lines(
            self.config.num_mac_lines,
            int(denser_products.sum()) * head_dim,
            int(sparser_products.sum()) * head_dim,
        )
        return max(alloc.denser_lines, 1), max(alloc.sparser_lines, 1)

    def simulate_layer(self, layer: AttentionWorkload) -> CycleSimResult:
        if self.engine == "scalar":
            return self._simulate_layer_scalar(layer)
        return self._simulate_layer_vectorized(layer)

    def _simulate_layer_scalar(self, layer: AttentionWorkload) -> CycleSimResult:
        """Reference event loop: one :class:`Timeline` acquire per event."""
        cfg = self.config
        k_col_bytes, tensor_bytes, q_stream = self._layer_geometry(layer)

        denser_jobs, sparser_jobs = self._build_jobs(layer)
        denser_macs = sum(j.products for j in denser_jobs) * layer.head_dim
        sparser_macs = sum(j.products for j in sparser_jobs) * layer.head_dim
        alloc = allocate_mac_lines(cfg.num_mac_lines, denser_macs, sparser_macs)

        denser = EngineSchedule("denser", max(alloc.denser_lines, 1),
                                cfg.macs_per_line, denser_jobs)
        sparser = EngineSchedule("sparser", max(alloc.sparser_lines, 1),
                                 cfg.macs_per_line, sparser_jobs)
        dram = Timeline("dram")
        softmax = Timeline("softmax")

        dram.acquire(0.0, self._service(q_stream, tag="q-stream"))

        t_denser = self._run_engine(denser, dram, softmax, layer.head_dim)
        t_sparser = self._run_engine(sparser, dram, softmax, layer.head_dim)
        sddmm_done = max(t_denser, t_sparser, softmax.free_at)

        # SpMM phase: output-stationary on the full array; V streams and the
        # engines' lines are reunited.
        spmm_products = layer.total_nnz
        spmm_compute = (
            ceil(spmm_products / cfg.num_mac_lines)
            * ceil(layer.head_dim / cfg.macs_per_line)
        )
        v_bytes = 2 * tensor_bytes
        _, v_done = dram.acquire(
            sddmm_done, self._service(v_bytes, tag="v-stream")
        )
        spmm_done = max(sddmm_done + spmm_compute, v_done)

        denser_busy = sum(
            denser.compute_cycles(j, layer.head_dim) for j in denser_jobs
        )
        sparser_busy = sum(
            sparser.compute_cycles(j, layer.head_dim) for j in sparser_jobs
        )
        return CycleSimResult(
            makespan=spmm_done,
            sddmm_makespan=sddmm_done,
            spmm_makespan=spmm_done - sddmm_done,
            denser_busy=denser_busy,
            sparser_busy=sparser_busy,
            dram_busy=dram.busy,
            softmax_busy=softmax.busy,
            jobs_executed=len(denser_jobs) + len(sparser_jobs) + 2,
        )

    def _simulate_layer_vectorized(self, layer: AttentionWorkload) -> CycleSimResult:
        """Scan scheduler: the same schedule as array pipelines.

        Event order matches the scalar loop exactly: the Q stream holds the
        DRAM channel first, then the denser engine's column loads, then the
        sparser engine's, then the V stream; softmax requests arrive in
        engine completion order.
        """
        cfg = self.config
        head_dim = layer.head_dim

        denser_products, sparser_products = self._column_products(layer)
        n_d, n_s = denser_products.size, sparser_products.size
        d_lines, s_lines = self._layer_alloc(layer)

        # Integer durations (exact doubles): ceil-divisions in int64.
        per_wave = ceil(head_dim / cfg.macs_per_line)
        d_cycles = (-(-denser_products // d_lines) * per_wave).astype(np.float64)
        s_cycles = (-(-sparser_products // s_lines) * per_wave).astype(np.float64)
        lanes = cfg.softmax_lanes
        sm_d = (-(-denser_products // lanes)).astype(np.float64)
        sm_s = (-(-sparser_products // lanes)).astype(np.float64)

        # DRAM channel: q-stream, then one identical K-column load per job.
        q_service, s_col, v_service = self._layer_services(layer)
        load_done_d = q_service + s_col * np.arange(1, n_d + 1)
        load_done_s = (q_service + s_col * n_d
                       + s_col * np.arange(1, n_s + 1))

        # Double-buffered compute on each engine, then the shared softmax
        # queue (denser's requests precede sparser's, as in the event loop).
        free_d = _queue_scan(load_done_d, d_cycles)
        free_s = _queue_scan(load_done_s, s_cycles)
        t_denser = float(free_d[-1]) if n_d else 0.0
        t_sparser = float(free_s[-1]) if n_s else 0.0
        sm_after_d = _queue_scan(free_d, sm_d)
        sm_free = float(sm_after_d[-1]) if n_d else 0.0
        sm_after_s = _queue_scan(free_s, sm_s, init=sm_free)
        if n_s:
            sm_free = float(sm_after_s[-1])
        sddmm_done = max(t_denser, t_sparser, sm_free)

        spmm_products = layer.total_nnz
        spmm_compute = (
            ceil(spmm_products / cfg.num_mac_lines)
            * ceil(head_dim / cfg.macs_per_line)
        )
        dram_free = q_service + s_col * (n_d + n_s)
        v_done = max(sddmm_done, dram_free) + v_service
        spmm_done = max(sddmm_done + spmm_compute, v_done)

        return CycleSimResult(
            makespan=spmm_done,
            sddmm_makespan=sddmm_done,
            spmm_makespan=spmm_done - sddmm_done,
            denser_busy=float(d_cycles.sum()),
            sparser_busy=float(s_cycles.sum()),
            dram_busy=q_service + s_col * (n_d + n_s) + v_service,
            softmax_busy=float(sm_d.sum() + sm_s.sum()),
            jobs_executed=n_d + n_s + 2,
        )

    # Conform to the :mod:`repro.sim` per-layer naming.
    simulate_attention_layer = simulate_layer

    def simulate_attention(self, model) -> CycleSimResult:
        """Simulate a whole model's attention stack.

        Accepts a :class:`~repro.hw.workload.ModelWorkload` or any sequence
        of :class:`~repro.hw.workload.AttentionWorkload` layers.  With the
        vectorized engine, all layers run as ONE batched 2-D max-plus scan
        (see :meth:`_simulate_attention_batched`); the scalar engine loops
        layer by layer.  Either way the result's ``per_layer`` tuple holds
        the single-layer breakdowns and the totals are their field sums —
        the two engines agree bit-for-bit.
        """
        if isinstance(model, ModelWorkload):
            layers = list(model.attention_layers)
        else:
            layers = list(model)
        if not layers:
            raise ValueError("no attention layers to simulate")
        if self.engine == "scalar":
            return merge_cycle_results(
                self._simulate_layer_scalar(layer) for layer in layers
            )
        return self._simulate_attention_batched(layers)

    @staticmethod
    def _scan_split(load_done_d, load_done_s, d_cycles, s_cycles,
                    sm_d, sm_s, n_d, n_s):
        """Per-engine reference scans: two compute + two softmax launches.

        Returns per-layer ``(t_denser, t_sparser, sm_free)`` finish times.
        """
        zeros = np.zeros((n_d.size, 1))
        free_d = _queue_scan_rows(load_done_d, d_cycles, zeros)
        free_s = _queue_scan_rows(load_done_s, s_cycles, zeros)
        t_denser = _row_finals(free_d, n_d)
        t_sparser = _row_finals(free_s, n_s)
        sm_after_d = _queue_scan_rows(free_d, sm_d, zeros)
        sm_free_d = _row_finals(sm_after_d, n_d)
        sm_after_s = _queue_scan_rows(free_s, sm_s, sm_free_d[:, None])
        sm_free = np.where(n_s > 0, _row_finals(sm_after_s, n_s), sm_free_d)
        return t_denser, t_sparser, sm_free

    @staticmethod
    def _scan_fused(load_done_d, load_done_s, d_cycles, s_cycles,
                    sm_d, sm_s, n_d, n_s):
        """Both engines of every layer in ONE (2L × jobs) compute scan and
        ONE (L × jobs) softmax scan — half the launches of the split path.

        Rows stay independent max-plus resets, so stacking the denser rows
        on the sparser rows changes nothing about any row's event algebra;
        and a layer's softmax unit is ONE FCFS queue that serves all denser
        requests before the sparser ones (exactly the event-loop order), so
        concatenating the two request streams along the job axis replaces
        the split path's carried ``init`` with the same running state.
        Padded slots (zero duration, ``-inf`` request) are inert and carry
        each row's completion to the final column, which therefore IS the
        row's finish time.  All durations live on the ``2**-20``-cycle
        grid, so every value here is produced by exact double-precision
        ops and the fused and split scans agree bit for bit.
        """
        L = n_d.size
        w_d, w_s = d_cycles.shape[1], s_cycles.shape[1]
        width = max(w_d, w_s)
        if width == 0:
            return np.zeros(L), np.zeros(L), np.zeros(L)

        durations = np.zeros((2 * L, width))
        durations[:L, :w_d] = d_cycles
        durations[L:, :w_s] = s_cycles
        requests = np.full((2 * L, width), -np.inf)
        requests[:L, :w_d] = load_done_d
        requests[L:, :w_s] = load_done_s
        free = _queue_scan_rows(requests, durations, np.zeros((2 * L, 1)))
        t_denser = free[:L, -1]
        t_sparser = free[L:, -1]

        sm_requests = np.full((L, w_d + w_s), -np.inf)
        mask_d = np.arange(w_d)[None, :] < n_d[:, None]
        mask_s = np.arange(w_s)[None, :] < n_s[:, None]
        sm_requests[:, :w_d][mask_d] = free[:L, :w_d][mask_d]
        sm_requests[:, w_d:][mask_s] = free[L:, :w_s][mask_s]
        sm_durations = np.concatenate([sm_d, sm_s], axis=1)
        sm_after = _queue_scan_rows(sm_requests, sm_durations,
                                    np.zeros((L, 1)))
        return t_denser, t_sparser, sm_after[:, -1]

    def _simulate_attention_batched(self, layers) -> CycleSimResult:
        """All layers as one (layer × job) array pipeline.

        Per-layer job streams are padded into 2-D matrices whose rows are
        the layers; running every scan along ``axis=1`` restarts the
        max-plus recurrences at each row boundary, which IS the per-layer
        reset semantics of the layer loop.  Padding uses zero durations and
        ``-inf`` request times, so padded slots never influence a row's
        event algebra, and all real values are produced by the exact same
        IEEE operations as the single-layer scans — whole-model results
        therefore match the per-layer loop bit for bit.
        """
        cfg = self.config
        L = len(layers)
        lanes = cfg.softmax_lanes

        # Per-layer scalar geometry (identical expressions to the
        # single-layer path; cheap Python over L layers, with the service
        # times and line allocations memoized per (workload, config)).
        q_service = np.empty(L)
        s_col = np.empty(L)
        v_service = np.empty(L)
        per_wave = np.empty(L, dtype=np.int64)
        d_lines = np.empty(L, dtype=np.int64)
        s_lines = np.empty(L, dtype=np.int64)
        spmm_compute = np.empty(L, dtype=np.int64)
        products_d, products_s = [], []
        for i, layer in enumerate(layers):
            head_dim = layer.head_dim
            q_service[i], s_col[i], v_service[i] = self._layer_services(layer)
            d_prod, s_prod = self._column_products(layer)
            products_d.append(d_prod)
            products_s.append(s_prod)
            d_lines[i], s_lines[i] = self._layer_alloc(layer)
            per_wave[i] = ceil(head_dim / cfg.macs_per_line)
            spmm_compute[i] = (
                ceil(layer.total_nnz / cfg.num_mac_lines)
                * ceil(head_dim / cfg.macs_per_line)
            )

        pad_d, n_d = _pad_rows(products_d)
        pad_s, n_s = _pad_rows(products_s)

        # Integer durations (exact doubles), zero in the padded slots.
        d_cycles = (-(-pad_d // d_lines[:, None]) * per_wave[:, None]
                    ).astype(np.float64)
        s_cycles = (-(-pad_s // s_lines[:, None]) * per_wave[:, None]
                    ).astype(np.float64)
        sm_d = (-(-pad_d // lanes)).astype(np.float64)
        sm_s = (-(-pad_s // lanes)).astype(np.float64)

        # DRAM channel per layer: q-stream, denser K loads, sparser K loads.
        load_done_d = _masked_load_times(q_service, s_col, n_d, pad_d.shape[1])
        base_s = q_service + s_col * n_d
        load_done_s = _masked_load_times(base_s, s_col, n_s, pad_s.shape[1])

        # Double-buffered compute, then the shared per-layer softmax queue:
        # either one fused (2L × jobs) + (L × jobs) scan pair, or the
        # per-engine reference scans — bit-identical by construction.
        scan = (self._scan_fused if self.scan == "fused"
                else self._scan_split)
        t_denser, t_sparser, sm_free = scan(
            load_done_d, load_done_s, d_cycles, s_cycles, sm_d, sm_s,
            n_d, n_s,
        )
        sddmm_done = np.maximum(np.maximum(t_denser, t_sparser), sm_free)

        dram_free = q_service + s_col * (n_d + n_s)
        v_done = np.maximum(sddmm_done, dram_free) + v_service
        spmm_done = np.maximum(sddmm_done + spmm_compute, v_done)

        denser_busy = d_cycles.sum(axis=1)
        sparser_busy = s_cycles.sum(axis=1)
        dram_busy = q_service + s_col * (n_d + n_s) + v_service
        softmax_busy = sm_d.sum(axis=1) + sm_s.sum(axis=1)

        return merge_cycle_results(
            CycleSimResult(
                makespan=float(spmm_done[i]),
                sddmm_makespan=float(sddmm_done[i]),
                spmm_makespan=float(spmm_done[i] - sddmm_done[i]),
                denser_busy=float(denser_busy[i]),
                sparser_busy=float(sparser_busy[i]),
                dram_busy=float(dram_busy[i]),
                softmax_busy=float(softmax_busy[i]),
                jobs_executed=int(n_d[i] + n_s[i]) + 2,
            )
            for i in range(L)
        )

    # ------------------------------------------------------------------
    # Grid-batched DSE walk: a (points × rows × jobs) max-plus scan
    # ------------------------------------------------------------------
    #: Design-point knobs :meth:`simulate_attention_grid` accepts as
    #: per-point columns; anything else comes from this simulator.
    _GRID_COLUMNS = ("num_mac_lines", "dram_bandwidth_bytes_per_s",
                     "act_buffer_bytes", "use_ae", "ae_compression")

    def _resolve_grid_columns(self, columns):
        """Normalise per-point column arrays for the grid walk.

        Mirrors ``ViTCoDAccelerator._resolve_grid_columns``: ``columns``
        maps a subset of :data:`_GRID_COLUMNS` to length-``P`` arrays
        (already converted the way the design point would be built: ints
        for MAC lines and buffer bytes, bytes/s for bandwidth); missing
        knobs broadcast this simulator's own value.  Values are
        validated like ``__init__`` — a chunk holding one invalid point
        raises for the whole batch (the DSE engine then falls back to
        per-point scoring, which attributes the failure).  A bandwidth
        column overrides the DRAM channel rate exactly as a per-point
        config clone would (``bandwidth / frequency``); without one the
        channel keeps this simulator's own ``dram.bytes_per_cycle``.
        """
        unknown = set(columns) - set(self._GRID_COLUMNS)
        if unknown:
            raise ValueError(
                f"unknown design-point column(s) {sorted(unknown)}; "
                f"choose from {list(self._GRID_COLUMNS)}"
            )
        lengths = {len(np.atleast_1d(v)) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"design-point columns disagree on length: {sorted(lengths)}"
            )
        points = lengths.pop() if lengths else 1
        cfg = self.config

        def column(name, default, dtype):
            if name in columns:
                return np.asarray(columns[name], dtype=dtype)
            return np.full(points, default, dtype=dtype)

        lines = column("num_mac_lines", cfg.num_mac_lines, np.int64)
        bandwidth = column("dram_bandwidth_bytes_per_s",
                           cfg.dram_bandwidth_bytes_per_s, np.float64)
        act_buffer = column("act_buffer_bytes", cfg.act_buffer_bytes,
                            np.int64)
        use_ae = column("use_ae", self.use_ae, bool)
        ae = column("ae_compression", self.ae_compression, np.float64)
        if not ((0.0 < ae) & (ae <= 1.0)).all():
            raise ValueError("ae_compression must be in (0, 1]")
        if "dram_bandwidth_bytes_per_s" in columns:
            bpc = bandwidth / cfg.frequency_hz
        else:
            bpc = np.full(points, self.dram.bytes_per_cycle)
        return {
            "points": points,
            "lines": lines,
            "bpc": bpc,
            "act_buffer": act_buffer,
            "ratio": np.where(use_ae, ae, 1.0),
        }

    def _grid_service(self, nbytes, bpc):
        """Vectorized :meth:`_service` for sequential DRAM requests.

        The same op sequence as :meth:`DramModel.service_cycles` for a
        sequential request followed by :func:`_quantize` — burst-aligned
        bytes over the channel rate, snapped to the event grid, zero
        bytes costing zero — elementwise over a (points × layers)
        broadcast with per-point ``bpc`` channel rates.
        """
        burst = self.dram.burst_bytes
        bursts = np.ceil(nbytes / burst)
        cycles = np.round(bursts * burst / bpc * _TIME_SCALE) / _TIME_SCALE
        return np.where(nbytes == 0, 0.0, cycles)

    def _grid_geometry(self, layers):
        """Config-independent geometry of the grid walk, built once per
        :meth:`simulate_attention_grid` call.

        Job widths are a property of the workload alone — design points
        change event *durations*, never the job list — so the width-band
        row grouping, the padded product matrices, their padding masks,
        and the softmax durations (the lane count is never swept) are
        shared by every design point in the batch.  The per-layer job
        products themselves come memoized off the workload
        (:meth:`_column_products`), so repeated batches on a cached
        workload skip the per-head walks.
        """
        cfg = self.config
        lanes = cfg.softmax_lanes
        b = cfg.bytes_per_element
        L = len(layers)

        per_wave = np.empty(L, dtype=np.int64)
        n_d = np.empty(L, dtype=np.int64)
        n_s = np.empty(L, dtype=np.int64)
        denser_macs = np.empty(L, dtype=np.int64)
        sparser_macs = np.empty(L, dtype=np.int64)
        tensor_bytes = np.empty(L, dtype=np.int64)
        k_bytes_full = np.empty(L, dtype=np.int64)
        total_nnz = np.empty(L, dtype=np.int64)
        softmax_busy = 0.0
        products, softmax_cols = [], []
        for i, layer in enumerate(layers):
            head_dim = layer.head_dim
            d_prod, s_prod = self._column_products(layer)
            products.append((d_prod, s_prod))
            per_wave[i] = ceil(head_dim / cfg.macs_per_line)
            n_d[i], n_s[i] = d_prod.size, s_prod.size
            denser_macs[i] = int(d_prod.sum()) * head_dim
            sparser_macs[i] = int(s_prod.sum()) * head_dim
            tensor_bytes[i] = layer.num_tokens * layer.embed_dim * b
            k_bytes_full[i] = head_dim * b
            total_nnz[i] = layer.total_nnz
            sm_d = (-(-d_prod // lanes)).astype(np.float64)
            sm_s = (-(-s_prod // lanes)).astype(np.float64)
            softmax_cols.append((sm_d, sm_s))
            softmax_busy += float(sm_d.sum() + sm_s.sum())

        # A layer's softmax unit is ONE FCFS queue serving all denser
        # compute completions before the sparser ones; only its FINAL
        # state is ever consumed (its busy time is config-independent).
        # The final of a max-plus queue is ``S_W + max(0, max_j(r_j -
        # S_excl_j))`` with ``S = cumsum(durations)`` — a plain max
        # reduce, no scan — so per layer we keep the total ``S_W`` and
        # per compute row the concatenated-queue exclusive cumsums
        # (denser rows: ``S_excl``; sparser rows: the full denser sum
        # plus their own ``S_excl``), ``+inf`` in padded slots so padding
        # can never win the max.  All values live on the 2**-20 grid, so
        # regrouping the concatenated queue this way is exact (the same
        # argument that makes the fused and split whole-model scans agree
        # bit for bit).
        sm_total = np.empty(L)
        sm_denser_total = np.empty(L)
        for i, (sm_d, sm_s) in enumerate(softmax_cols):
            sm_denser_total[i] = sm_d.sum()
            sm_total[i] = sm_denser_total[i] + sm_s.sum()

        # Compute rows: 2L independent max-plus resets (denser engine of
        # layer i is row i, sparser engine is row L + i), width-banded so
        # no row pads to a far-wider engine's job count.
        compute_bands = []
        for rows in _width_bands(np.concatenate([n_d, n_s])):
            is_d = rows < L
            layer_idx = np.where(is_d, rows, rows - L)
            pad, lengths = _pad_rows([
                products[r][0] if r < L else products[r - L][1]
                for r in rows.tolist()
            ])
            sm_off = np.full(pad.shape, np.inf)
            for j, r in enumerate(rows.tolist()):
                sm = softmax_cols[r][0] if r < L else softmax_cols[r - L][1]
                excl = np.cumsum(sm) - sm
                if r >= L:
                    excl = sm_denser_total[r - L] + excl
                sm_off[j, : sm.size] = excl
            compute_bands.append({
                "layer": layer_idx,
                "is_d": is_d,
                "pad": pad,
                "lengths": lengths,
                "mask": np.arange(pad.shape[1])[None, :] >= lengths[:, None],
                "sm_off": sm_off,
            })

        cells = sum(band["pad"].size for band in compute_bands)
        return {
            "layers": L,
            "per_wave": per_wave,
            "n_d": n_d,
            "n_s": n_s,
            "denser_macs": denser_macs,
            "sparser_macs": sparser_macs,
            "tensor_bytes": tensor_bytes,
            "k_bytes_full": k_bytes_full,
            "total_nnz": total_nnz,
            "softmax_busy": softmax_busy,
            "sm_total": sm_total,
            "compute_bands": compute_bands,
            "cells": cells,
            "jobs_executed": int(n_d.sum() + n_s.sum()) + 2 * L,
        }

    def simulate_attention_grid(self, model, columns):
        """Simulate ``P`` design points' whole attention stacks at once.

        The grid-batched DSE path of :meth:`simulate_attention`: swept
        hardware knobs arrive as per-point columns (see
        :meth:`_resolve_grid_columns`) instead of ``P`` simulator
        instances, and every (point, layer, job) event is scheduled by
        the same max-plus scans broadcast over a leading design-point
        axis — mirroring
        :meth:`~repro.hw.accelerator.ViTCoDAccelerator.simulate_attention_grid`
        one abstraction level down, at event granularity.

        Returns a dict of length-``P`` float64 arrays — ``makespan``,
        ``sddmm_makespan``, ``spmm_makespan``, ``denser_busy``,
        ``sparser_busy``, ``dram_busy``, ``softmax_busy`` — plus the
        config-independent scalar ``jobs_executed``.  Element ``i`` of
        every array is **bit-for-bit** the corresponding
        :class:`CycleSimResult` total of a per-point
        :meth:`simulate_attention` call at design point ``i``: all event
        durations live on the ``2**-20``-cycle grid, so every sum and
        max here is exact and association-free, and every non-grid
        expression (byte counts, tile counts, service times) repeats the
        per-point path's IEEE ops operand for operand.

        Rows are grouped into width-band sub-batches
        (:func:`_width_bands`) so neither engine's rows pad to the
        other's width.  The design-point axis is walked grouped by the
        (MAC lines, bytes/cycle, AE ratio) triple — the scan tables
        those columns determine are shared across each group
        (:meth:`_grid_group_tables`) — in sub-batches sized to
        :data:`_GRID_CELL_BUDGET` cells so peak memory stays bounded
        regardless of batch size.
        """
        if isinstance(model, ModelWorkload):
            layers = list(model.attention_layers)
        else:
            layers = list(model)
        if not layers:
            raise ValueError("no attention layers to simulate")
        if type(self.dram) is not DramModel:
            raise ValueError(
                "simulate_attention_grid requires a plain DramModel: a "
                "custom subclass may carry per-request state the batched "
                "walk cannot replay (simulate per point instead)"
            )
        cols = self._resolve_grid_columns(columns)
        geometry = self._grid_geometry(layers)
        points = cols["points"]
        totals = {
            name: np.empty(points)
            for name in ("makespan", "sddmm_makespan", "spmm_makespan",
                         "denser_busy", "sparser_busy", "dram_busy",
                         "softmax_busy")
        }

        # Engine MAC-line split per (point, layer); the batched allocator
        # is elementwise-exact against the scalar one, floored at 1 as
        # the schedulers require.  Lines below the allocator's minimum
        # raise here for the whole batch, before any totals are written.
        d_lines, s_lines = allocate_mac_lines_batched(
            cols["lines"][:, None], geometry["denser_macs"],
            geometry["sparser_macs"]
        )
        alloc = {
            "d_lines": np.maximum(d_lines, 1),
            "s_lines": np.maximum(s_lines, 1),
        }

        # Points sharing a (MAC lines, bytes/cycle, AE ratio) triple
        # share their entire scan geometry -- durations, cumsums, and
        # the running max of the arithmetic request ladder -- so the
        # point axis is walked one such group at a time: the heavy
        # tables collapse from the point axis onto the handful of
        # distinct column triples (_grid_group_tables), and the
        # full-size per-point arrays only ever see elementwise SIMD
        # passes (_grid_walk_group).  Totals are scattered straight back
        # through the original indices, so the ordering is unobservable.
        order = np.lexsort(
            (cols["act_buffer"], cols["ratio"], cols["bpc"], cols["lines"])
        )
        key = np.stack([cols["lines"][order], cols["bpc"][order],
                        cols["ratio"][order]])
        cuts = np.flatnonzero(np.any(key[:, 1:] != key[:, :-1], axis=0)) + 1
        starts = np.concatenate(([0], cuts))
        stops = np.concatenate((cuts, [points]))
        step = max(1, _GRID_CELL_BUDGET // max(geometry["cells"], 1))
        line_cache = {}
        for ga, gb in zip(starts.tolist(), stops.tolist()):
            shared = self._grid_group_tables(
                geometry, cols, alloc, order[ga], line_cache
            )
            for start in range(ga, gb, step):
                idx = order[start:min(start + step, gb)]
                self._grid_walk_group(geometry, cols, shared, idx, totals)
        totals["jobs_executed"] = geometry["jobs_executed"]
        return totals

    def _grid_group_tables(self, geometry, cols, alloc, rep, line_cache):
        """Scan tables shared by one (MAC lines, bytes/cycle, AE) group.

        ``rep`` indexes any design point of the group (all points of a
        group agree on every column the tables read).  Compute durations
        depend only on the MAC-line column, so the duration tables --
        per band: the inclusive cumsum ``total``, its exclusive form
        ``offset``, per-row ``busy`` sums, the ``last`` cumsum column,
        and the softmax slack ``addend`` -- are cached per distinct line
        count across groups.

        The per-group work is the request-ladder running max: requests
        are *arithmetic* in the job index (``base + step * j``, the
        double-buffered K-column loads), so the scanned slack splits as
        ``base + (step * j - offset_j)`` and its running max as
        ``base + M_j`` with ``M = maximum.accumulate(step * j - offset)``
        -- a pure function of this group's columns, independent of the
        point axis.  Every operand lives on the ``2**-20`` grid with
        magnitude far below ``2**32``, so both sums are exact and the
        regrouping is bitwise-neutral; padded slots keep their ``-inf``
        request times through ``M``, exactly as in the direct scan.
        """
        g = geometry
        lines_key = int(cols["lines"][rep])
        tables = line_cache.get(lines_key)
        if tables is None:
            tables = []
            d_row = alloc["d_lines"][rep]
            s_row = alloc["s_lines"][rep]
            for band in g["compute_bands"]:
                layer_idx = band["layer"]
                eng_lines = np.where(
                    band["is_d"], d_row[layer_idx], s_row[layer_idx]
                )
                durations = (
                    -(-band["pad"] // eng_lines[:, None])
                    * g["per_wave"][layer_idx][:, None]
                ).astype(np.float64)
                total = np.cumsum(durations, axis=-1)
                tables.append({
                    "total": total,
                    "offset": total - durations,
                    "busy": durations.sum(axis=-1),
                    "last": total[:, -1],
                    "addend": total - band["sm_off"],
                })
            line_cache[lines_key] = tables

        # The ladder step is the sparser K-column service time, computed
        # from this group's scalar bandwidth/ratio with the exact
        # per-point expressions (IEEE ops are elementwise, so scalar and
        # column evaluation agree bitwise).
        bpc = cols["bpc"][rep]
        ratio = cols["ratio"][rep]
        step_vec = self._grid_service(np.trunc(g["k_bytes_full"] * ratio), bpc)
        bands = []
        for band, t in zip(g["compute_bands"], tables):
            width = band["pad"].shape[1]
            h = step_vec[band["layer"]][:, None] * np.arange(1, width + 1)
            h -= t["offset"]
            h[band["mask"]] = -np.inf
            bands.append({**t, "M": np.maximum.accumulate(h, axis=-1)})
        return bands

    def _grid_walk_group(self, geometry, cols, shared, idx, totals):
        """One design-point sub-batch within a (lines, bpc, ratio) group.

        Every expression mirrors :meth:`_simulate_attention_batched`
        (and through it the per-point scans) with a leading point axis;
        comments mark the correspondence.  The compute scans themselves
        are prefactored into ``shared`` (see :meth:`_grid_group_tables`):
        a row's job completions are ``total_j + max(base + M_j, 0)``,
        so the per-point work is broadcast adds and maxima only.

        The softmax queues need no scan at all: only each queue's
        *final* completion is consumed downstream, and unrolling the
        FCFS recurrence gives ``S_total + max(0, max_j(r_j - S_excl_j))``
        -- a plain max-reduce.  With ``r_j = total_j + max0_j`` the
        reduced term is ``max0_j + (total_j - S_excl_j)``, whose second
        summand is the precomputed ``addend``; denser requests precede
        sparser ones exactly as in the event loop (the sparser rows'
        ``S_excl`` starts past the denser jobs' total softmax time), and
        the concatenated queue equals the split path's carried-init
        scans bit for bit (see :meth:`_scan_fused`).  Padded slots carry
        ``addend = -inf`` and layers without a denser (or sparser) row
        keep that side's running max at ``-inf``, reproducing the split
        path's empty-segment branches.
        """
        g = geometry
        L = g["layers"]
        p = idx.size
        bpc = cols["bpc"][idx][:, None]
        act_buffer = cols["act_buffer"][idx][:, None]
        ratio = cols["ratio"][idx][:, None]
        lines = cols["lines"][idx][:, None]

        # Byte/tile geometry and quantized DRAM service times: the exact
        # `_layer_geometry` / `_build_layer_services` expressions with
        # ratio/buffer/bandwidth as (points, 1) columns.
        k_col_bytes = np.trunc(g["k_bytes_full"] * ratio)
        k_tiles = np.maximum(
            1.0, np.ceil(g["tensor_bytes"] * ratio / (act_buffer / 2))
        )
        q_stream = np.trunc(g["tensor_bytes"] * ratio * k_tiles)
        q_service = self._grid_service(q_stream, bpc)
        s_col = self._grid_service(k_col_bytes, bpc)
        v_service = self._grid_service(2 * g["tensor_bytes"], bpc)

        spmm_compute = np.ceil(g["total_nnz"] / lines) * g["per_wave"]

        t_denser = np.zeros((p, L))
        t_sparser = np.zeros((p, L))
        denser_busy = np.zeros((p, L))
        sparser_busy = np.zeros((p, L))
        md = np.full((p, L), -np.inf)
        ms = np.full((p, L), -np.inf)
        for band, t in zip(g["compute_bands"], shared):
            layer_idx = band["layer"]
            is_d = band["is_d"]
            base = np.where(
                is_d,
                q_service[:, layer_idx],
                q_service[:, layer_idx]
                + s_col[:, layer_idx] * g["n_d"][layer_idx],
            )
            buf = base[:, :, None] + t["M"]
            np.maximum(buf, 0.0, out=buf)
            finish = buf[:, :, -1] + t["last"]
            d_rows = np.flatnonzero(is_d)
            s_rows = np.flatnonzero(~is_d)
            t_denser[:, layer_idx[d_rows]] = finish[:, d_rows]
            t_sparser[:, layer_idx[s_rows]] = finish[:, s_rows]
            denser_busy[:, layer_idx[d_rows]] = t["busy"][d_rows]
            sparser_busy[:, layer_idx[s_rows]] = t["busy"][s_rows]
            buf += t["addend"]
            band_max = buf.max(axis=-1)
            md[:, layer_idx[d_rows]] = band_max[:, d_rows]
            ms[:, layer_idx[s_rows]] = band_max[:, s_rows]
        sm_free = g["sm_total"] + np.maximum(np.maximum(md, ms), 0.0)

        sddmm_done = np.maximum(np.maximum(t_denser, t_sparser), sm_free)
        dram_free = q_service + s_col * (g["n_d"] + g["n_s"])
        v_done = np.maximum(sddmm_done, dram_free) + v_service
        spmm_done = np.maximum(sddmm_done + spmm_compute, v_done)
        dram_busy = q_service + s_col * (g["n_d"] + g["n_s"]) + v_service

        # Whole-model totals: every summand lives on the 2**-20 grid, so
        # the axis sums equal the per-layer merge fold bit for bit.
        totals["makespan"][idx] = spmm_done.sum(axis=1)
        totals["sddmm_makespan"][idx] = sddmm_done.sum(axis=1)
        totals["spmm_makespan"][idx] = (spmm_done - sddmm_done).sum(axis=1)
        totals["denser_busy"][idx] = denser_busy.sum(axis=1)
        totals["sparser_busy"][idx] = sparser_busy.sum(axis=1)
        totals["dram_busy"][idx] = dram_busy.sum(axis=1)
        totals["softmax_busy"][idx] = g["softmax_busy"]
